//! # awake — sub-logarithmic awake complexity for sequential greedy problems
//!
//! Umbrella crate re-exporting the whole workspace. See the README for a
//! tour and `DESIGN.md` for the paper-to-module map.

#![forbid(unsafe_code)]

pub use awake_core as core;
pub use awake_graphs as graphs;
pub use awake_olocal as olocal;
pub use awake_sleeping as sleeping;
