//! Property tests on the Theorem 13 clustering across random graphs, and
//! invariants of the clustering machinery.

use awake::core::clustering::{synthesize, Clustering};
use awake::core::params::Params;
use awake::core::theorem13;
use awake::graphs::generators;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn theorem13_always_produces_valid_colored_clusterings(
        n in 4usize..40,
        p in 0.05f64..0.5,
        seed in 0u64..1000,
    ) {
        let g = generators::gnp(n, p, seed);
        let params = Params::for_graph(&g);
        let res = theorem13::compute(&g, &params).expect("pipeline runs");
        prop_assert_eq!(res.clustering.assigned(), g.n());
        prop_assert!(res.clustering.validate_colored(&g).is_ok());
        prop_assert!(res.clustering.max_label() <= params.color_bound());
        for s in &res.iteration_stats {
            prop_assert!((s.clusters_after as u64) * params.b <= s.clusters_before as u64);
        }
    }

    #[test]
    fn synthesize_always_valid(
        n in 2usize..50,
        clusters in 1usize..20,
        seed in 0u64..1000,
    ) {
        let g = generators::gnp(n, 0.15, seed);
        let c = synthesize(&g, clusters, seed);
        prop_assert!(c.validate_colored(&g).is_ok());
        prop_assert_eq!(c.assigned(), g.n());
    }

    #[test]
    fn root_overlay_of_synthesized_is_uniquely_labeled(
        n in 2usize..40,
        clusters in 1usize..10,
        seed in 0u64..100,
    ) {
        let g = generators::gnp(n, 0.2, seed);
        let c = synthesize(&g, clusters, seed);
        let u = c.root_ident_overlay(&g);
        prop_assert!(u.validate_uniquely_labeled(&g).is_ok());
        // Overlay preserves depths.
        for v in g.nodes() {
            prop_assert_eq!(
                c.assign[v.index()].unwrap().depth,
                u.assign[v.index()].unwrap().depth
            );
        }
    }
}

#[test]
fn singleton_clustering_round_trips_through_virtual_graph() {
    let g = generators::grid(4, 4);
    let c = Clustering::singletons(&g);
    let q = c.virtual_graph(&g);
    assert_eq!(q.graph.n(), g.n());
    assert_eq!(q.graph.m(), g.m());
}

#[test]
fn theorem13_on_structured_families() {
    for g in [
        generators::caterpillar(8, 3),
        generators::barbell(6, 3),
        generators::lollipop(7, 5),
        generators::torus(4, 5),
        generators::hypercube(5),
    ] {
        let params = Params::for_graph(&g);
        let res = theorem13::compute(&g, &params).unwrap();
        res.clustering
            .validate_colored(&g)
            .unwrap_or_else(|e| panic!("{g:?}: {e}"));
    }
}
