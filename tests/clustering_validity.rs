//! Property tests on the Theorem 13 clustering across random graphs, and
//! invariants of the clustering machinery. Seeded loops stand in for a
//! property-testing framework; failures reproduce from the printed case.

use awake::core::clustering::{synthesize, Clustering};
use awake::core::params::Params;
use awake::core::theorem13;
use awake::graphs::generators;
use awake::graphs::rng::Rng;

#[test]
fn theorem13_always_produces_valid_colored_clusterings() {
    let mut rng = Rng::seed_from_u64(0x7e13);
    for case in 0..12 {
        let n = rng.gen_range(4..40);
        let p = 0.05 + rng.gen_f64() * 0.45;
        let seed = rng.bounded_u64(1000);
        let g = generators::gnp(n, p, seed);
        let params = Params::for_graph(&g);
        let res = theorem13::compute(&g, &params).expect("pipeline runs");
        assert_eq!(res.clustering.assigned(), g.n(), "case {case}");
        assert!(res.clustering.validate_colored(&g).is_ok(), "case {case}");
        assert!(
            res.clustering.max_label() <= params.color_bound(),
            "case {case}"
        );
        for s in &res.iteration_stats {
            assert!(
                (s.clusters_after as u64) * params.b <= s.clusters_before as u64,
                "case {case}"
            );
        }
    }
}

#[test]
fn synthesize_always_valid() {
    let mut rng = Rng::seed_from_u64(0x5a11d);
    for case in 0..12 {
        let n = rng.gen_range(2..50);
        let clusters = rng.gen_range(1..20);
        let seed = rng.bounded_u64(1000);
        let g = generators::gnp(n, 0.15, seed);
        let c = synthesize(&g, clusters, seed);
        assert!(c.validate_colored(&g).is_ok(), "case {case}");
        assert_eq!(c.assigned(), g.n(), "case {case}");
    }
}

#[test]
fn root_overlay_of_synthesized_is_uniquely_labeled() {
    let mut rng = Rng::seed_from_u64(0x0e1a);
    for case in 0..12 {
        let n = rng.gen_range(2..40);
        let clusters = rng.gen_range(1..10);
        let seed = rng.bounded_u64(100);
        let g = generators::gnp(n, 0.2, seed);
        let c = synthesize(&g, clusters, seed);
        let u = c.root_ident_overlay(&g);
        assert!(u.validate_uniquely_labeled(&g).is_ok(), "case {case}");
        // Overlay preserves depths.
        for v in g.nodes() {
            assert_eq!(
                c.assign[v.index()].unwrap().depth,
                u.assign[v.index()].unwrap().depth,
                "case {case}"
            );
        }
    }
}

#[test]
fn singleton_clustering_round_trips_through_virtual_graph() {
    let g = generators::grid(4, 4);
    let c = Clustering::singletons(&g);
    let q = c.virtual_graph(&g);
    assert_eq!(q.graph.n(), g.n());
    assert_eq!(q.graph.m(), g.m());
}

#[test]
fn theorem13_on_structured_families() {
    for g in [
        generators::caterpillar(8, 3),
        generators::barbell(6, 3),
        generators::lollipop(7, 5),
        generators::torus(4, 5),
        generators::hypercube(5),
    ] {
        let params = Params::for_graph(&g);
        let res = theorem13::compute(&g, &params).unwrap();
        res.clustering
            .validate_colored(&g)
            .unwrap_or_else(|e| panic!("{g:?}: {e}"));
    }
}
