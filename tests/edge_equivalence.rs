//! Executor equivalence for the **line-graph virtualization adapter**:
//! adapted edge programs must produce bit-for-bit identical outputs *and*
//! [`Metrics`] on the serial engine and the worker-pool executor at
//! 1/2/4/8 workers — on Erdős–Rényi graphs, random trees, and the
//! hub-heavy families (star, caterpillar, lollipop) whose dominant-degree
//! nodes stress the degree-weighted chunking — and engine errors raised
//! through adapted edge nodes must respect serial error precedence across
//! chunks.

use awake::core::linegraph::{self, hosts, EdgeGreedy, LineGraphHost};
use awake::core::virt::{VEnvelope, VOutgoing, VirtualProgram};
use awake::graphs::{generators, Graph, NodeId};
use awake::olocal::edge::{
    solve_edges_sequentially, EdgeColoring, EdgeIndex, EdgeProblem, MaximalMatching,
};
use awake::sleeping::{threaded, Action, Config, Engine, Metrics, Round, SimError};

/// Run the adapter for `problem` serially and under 1, 2, 4 and 8
/// workers; assert full equivalence and validator acceptance.
fn assert_edge_equivalent<P>(g: &Graph, problem: &P)
where
    P: EdgeProblem + Clone + Send + Sync,
    P::Input: Clone,
{
    let idx = EdgeIndex::new(g);
    let inputs = problem.trivial_inputs(g);
    let serial = linegraph::solve_edges(g, problem, &inputs, Config::default()).unwrap();
    problem.validate(g, &inputs, &serial.outputs).unwrap();
    // ... and the distributed outputs are the sequential greedy's.
    assert_eq!(
        serial.outputs,
        solve_edges_sequentially(problem, g, &idx, &inputs),
        "adapter must realize the by-label sequential greedy"
    );
    for workers in [1usize, 2, 4, 8] {
        let par = linegraph::solve_edges_threaded(g, problem, &inputs, Config::default(), workers)
            .unwrap();
        assert_eq!(
            serial.outputs, par.outputs,
            "edge outputs diverge at workers = {workers}"
        );
        let (s, p): (&Metrics, &Metrics) = (&serial.metrics, &par.metrics);
        assert_eq!(s.awake, p.awake, "awake vectors, workers = {workers}");
        assert_eq!(s.rounds, p.rounds, "rounds, workers = {workers}");
        assert_eq!(
            s.messages_sent, p.messages_sent,
            "sent, workers = {workers}"
        );
        assert_eq!(
            s.messages_delivered, p.messages_delivered,
            "delivered, workers = {workers}"
        );
        assert_eq!(
            s.messages_lost, p.messages_lost,
            "lost, workers = {workers}"
        );
        assert_eq!(
            s.span_summary(),
            p.span_summary(),
            "span summaries, workers = {workers}"
        );
        assert_eq!(s, p, "full Metrics equality, workers = {workers}");
    }
}

#[test]
fn matching_agrees_on_erdos_renyi() {
    assert_edge_equivalent(&generators::gnp(64, 0.1, 17), &MaximalMatching);
}

#[test]
fn edge_coloring_agrees_on_erdos_renyi() {
    assert_edge_equivalent(&generators::gnp(64, 0.1, 17), &EdgeColoring);
}

#[test]
fn matching_agrees_on_random_tree() {
    assert_edge_equivalent(&generators::random_tree(96, 23), &MaximalMatching);
}

#[test]
fn edge_coloring_agrees_on_random_tree() {
    assert_edge_equivalent(&generators::random_tree(96, 23), &EdgeColoring);
}

#[test]
fn edge_problems_agree_on_hub_heavy_families() {
    // A dominant hub puts nearly every edge replica on one node: the
    // degree-weighted partitioner gives it a chunk of its own, and the
    // line graph of a star is a clique — the densest L(G) there is.
    for g in [
        generators::star(48),
        generators::caterpillar(10, 4),
        generators::lollipop(9, 12),
    ] {
        assert_edge_equivalent(&g, &MaximalMatching);
        assert_edge_equivalent(&g, &EdgeColoring);
    }
}

#[test]
fn edge_problems_agree_with_remapped_idents() {
    // Reversed identifiers flip every edge's owner and the whole label
    // order; equivalence and validity must be preserved.
    let g = generators::gnp(48, 0.12, 31);
    let n = g.n() as u64;
    let g = g.with_idents((1..=n).rev().collect());
    assert_edge_equivalent(&g, &MaximalMatching);
    assert_edge_equivalent(&g, &EdgeColoring);
}

/// An inner edge program that behaves (announce-free single wake) unless
/// marked bad, in which case it requests a non-future wake round at
/// virtual round 1 — which the host forwards to the engine as this node's
/// `InvalidSleep`.
struct MaybeBad {
    bad: bool,
}

impl VirtualProgram for MaybeBad {
    type Msg = ();
    type Output = ();
    type Payload = ();
    fn send(&mut self, _vround: Round, _out: &mut Vec<VOutgoing<()>>) {}
    fn receive(&mut self, vround: Round, _inbox: &[VEnvelope<()>]) -> Action {
        if self.bad {
            Action::SleepUntil(vround) // not strictly in the future
        } else {
            Action::Halt
        }
    }
    fn output(&self) -> Option<()> {
        Some(())
    }
}

fn bad_hosts(g: &Graph, idx: &EdgeIndex, bad_labels: &[u64]) -> Vec<LineGraphHost<MaybeBad>> {
    hosts(g, idx, |ctx| MaybeBad {
        bad: bad_labels.contains(&ctx.label),
    })
}

#[test]
fn error_precedence_matches_serial_across_chunks() {
    // Two adapted edge nodes fail in the same round, far apart on a long
    // path — with several workers they land in different chunks, and the
    // merged error must still be the serial one: the lowest NodeId.
    let g = generators::path(160);
    let idx = EdgeIndex::new(&g);
    // default idents are 1..=n, so canonical edge i has its lower
    // endpoint at node i; mark edges near both ends bad
    let bad = [idx.label(3), idx.label(150)];
    let serial_err = Engine::new(&g, Config::default())
        .run(bad_hosts(&g, &idx, &bad))
        .unwrap_err();
    assert_eq!(
        serial_err,
        SimError::InvalidSleep {
            node: NodeId(3),
            round: 1,
            until: 1
        }
    );
    for workers in [1usize, 2, 4, 8] {
        let par_err =
            threaded::run_threaded(&g, bad_hosts(&g, &idx, &bad), Config::default(), workers)
                .unwrap_err();
        assert_eq!(
            par_err, serial_err,
            "error precedence diverges at workers = {workers}"
        );
    }
}

#[test]
fn single_edge_and_disconnected_graphs_agree() {
    // K_2 (one edge, one virtual node) and a forest with isolated
    // bystander nodes.
    assert_edge_equivalent(&generators::path(2), &MaximalMatching);
    let mut b = awake::graphs::GraphBuilder::new(9);
    b.edge(0, 1).edge(1, 2).edge(5, 6).edge(6, 7).edge(7, 8);
    let g = b.build().unwrap();
    assert_edge_equivalent(&g, &MaximalMatching);
    assert_edge_equivalent(&g, &EdgeColoring);
}

#[test]
fn adapter_rides_the_engine_unchanged_for_custom_inner_programs() {
    // The EdgeGreedy inner program is not special-cased anywhere: a
    // hand-rolled host set over EdgeGreedy equals the packaged driver.
    let g = generators::gnp(40, 0.15, 7);
    let idx = EdgeIndex::new(&g);
    let inputs = vec![(); idx.m()];
    let programs: Vec<LineGraphHost<EdgeGreedy<MaximalMatching>>> =
        linegraph::greedy_hosts(&g, &idx, &MaximalMatching, &inputs);
    let raw = Engine::new(&g, Config::default()).run(programs).unwrap();
    let packaged =
        linegraph::solve_edges(&g, &MaximalMatching, &inputs, Config::default()).unwrap();
    assert_eq!(raw.metrics, packaged.metrics);
    let mut from_raw: Vec<Option<bool>> = vec![None; idx.m()];
    for owned in &raw.outputs {
        for (label, out) in owned {
            from_raw[idx.index_of_label(*label)] = Some(*out);
        }
    }
    let from_raw: Vec<bool> = from_raw.into_iter().map(Option::unwrap).collect();
    assert_eq!(from_raw, packaged.outputs);
}
