//! The serial skip-ahead engine and the persistent worker-pool executor
//! must agree **bit for bit** on deterministic programs: equal outputs and
//! equal [`Metrics`] — awake vectors, message counters, round counts, and
//! span attribution — across worker counts.

use awake::core::linial::ColorReduction;
use awake::core::trivial::TrivialGreedy;
use awake::graphs::{generators, Graph};
use awake::olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
use awake::sleeping::{
    threaded, Action, Config, Engine, Envelope, Metrics, Outbox, Program, Round, Run, TraceMode,
    View,
};

/// Run serially and under 1, 2, 4 and 8 workers; assert full equivalence —
/// outputs, every `Metrics` component, and (in a second, traced pass) the
/// recorded event sequence, bit for bit.
fn assert_equivalent<P, F>(g: &Graph, mk: F)
where
    P: Program + Send,
    P::Output: PartialEq,
    F: Fn() -> Vec<P>,
{
    let serial: Run<P::Output> = Engine::new(g, Config::default()).run(mk()).unwrap();
    for workers in [1usize, 2, 4, 8] {
        let par = threaded::run_threaded(g, mk(), Config::default(), workers).unwrap();
        assert!(
            serial.outputs == par.outputs,
            "outputs diverge at workers = {workers}"
        );
        let (s, p): (&Metrics, &Metrics) = (&serial.metrics, &par.metrics);
        assert_eq!(s.awake, p.awake, "awake vectors, workers = {workers}");
        assert_eq!(s.rounds, p.rounds, "rounds, workers = {workers}");
        assert_eq!(
            s.messages_sent, p.messages_sent,
            "sent, workers = {workers}"
        );
        assert_eq!(
            s.messages_delivered, p.messages_delivered,
            "delivered, workers = {workers}"
        );
        assert_eq!(
            s.messages_lost, p.messages_lost,
            "lost, workers = {workers}"
        );
        assert_eq!(
            s.span_summary(),
            p.span_summary(),
            "span summaries, workers = {workers}"
        );
        assert_eq!(s, p, "full Metrics equality, workers = {workers}");
    }
    assert_traces_equivalent(g, &mk);
}

/// The traced pass of [`assert_equivalent`]: the threaded executor used to
/// ignore [`Config::trace`] and return an empty `Run::trace` — it now
/// stages events per worker and merges them in chunk order, so serial and
/// threaded traces must be bit-identical at any worker count. Run once
/// uncapped (full sequences compare equal, nothing dropped) and once under
/// a biting cap (the kept prefix *and* the drop counter must agree).
fn assert_traces_equivalent<P, F>(g: &Graph, mk: &F)
where
    P: Program + Send,
    P::Output: PartialEq,
    F: Fn() -> Vec<P>,
{
    for cap in [usize::MAX, 100] {
        let cfg = Config {
            trace: TraceMode::Capped(cap),
            ..Config::default()
        };
        let serial = Engine::new(g, cfg).run(mk()).unwrap();
        assert!(
            !serial.trace.is_empty(),
            "traced workloads must record events"
        );
        for workers in [1usize, 2, 4, 8] {
            let par = threaded::run_threaded(g, mk(), cfg, workers).unwrap();
            assert_eq!(
                serial.trace, par.trace,
                "trace diverges at workers = {workers}, cap = {cap}"
            );
            assert_eq!(
                serial.trace_dropped, par.trace_dropped,
                "trace_dropped diverges at workers = {workers}, cap = {cap}"
            );
        }
    }
}

#[test]
fn linial_agrees_on_erdos_renyi() {
    let g = generators::gnp(120, 0.07, 13);
    let delta = g.max_degree() as u64;
    assert_equivalent(&g, || -> Vec<ColorReduction> {
        g.nodes()
            .map(|v| ColorReduction::from_ident(g.ident(v), g.ident_bound(), delta))
            .collect()
    });
}

#[test]
fn linial_agrees_on_random_tree() {
    let g = generators::random_tree(90, 21);
    let delta = g.max_degree() as u64;
    assert_equivalent(&g, || -> Vec<ColorReduction> {
        g.nodes()
            .map(|v| ColorReduction::from_ident(g.ident(v), g.ident_bound(), delta))
            .collect()
    });
}

#[test]
fn trivial_greedy_agrees_on_erdos_renyi() {
    // The trivial baseline exercises long sleeps and message loss, so this
    // covers the wheel (not just the stay lane).
    let g = generators::gnp(80, 0.1, 29);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    });
}

#[test]
fn trivial_greedy_agrees_on_random_tree() {
    let g = generators::random_tree(110, 5);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    });
}

#[test]
fn trivial_greedy_agrees_on_bounded_degree_graph() {
    let g = generators::random_with_max_degree(150, 12, 3);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    });
}

/// Wakes at `initial`, broadcasts its ident, stays until `halt_at`.
struct BlockBoundary {
    initial: Round,
    halt_at: Round,
    heard: Vec<(Round, u64)>,
}

impl Program for BlockBoundary {
    type Msg = u64;
    type Output = Vec<(Round, u64)>;
    fn initial_wake(&self) -> Option<Round> {
        Some(self.initial)
    }
    fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
        out.broadcast(view.ident);
    }
    fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
        for e in inbox {
            self.heard.push((view.round, e.msg));
        }
        if view.round >= self.halt_at {
            Action::Halt
        } else {
            Action::Stay
        }
    }
    fn output(&self) -> Option<Self::Output> {
        Some(self.heard.clone())
    }
}

/// A wheel wake (node 1 at round 66) coinciding with a stay-lane round
/// after the seed events cascade across the first 64-round block boundary.
/// Equivalence alone is blind to scheduler bugs both executors share, so
/// this asserts the *absolute* expected exchange on both of them.
#[test]
fn stay_lane_meets_wheel_wake_across_block_boundary() {
    let g = generators::path(2);
    let mk = || {
        vec![
            BlockBoundary {
                initial: 65,
                halt_at: 70,
                heard: vec![],
            },
            BlockBoundary {
                initial: 66,
                halt_at: 66,
                heard: vec![],
            },
        ]
    };
    assert_equivalent(&g, mk);
    for run in [
        Engine::new(&g, Config::default()).run(mk()).unwrap(),
        threaded::run_threaded(&g, mk(), Config::default(), 2).unwrap(),
    ] {
        assert_eq!(run.outputs[0], vec![(66, 2)], "node 0 must hear node 1");
        assert_eq!(run.outputs[1], vec![(66, 1)], "node 1 must hear node 0");
        assert_eq!(run.metrics.rounds, 70);
        assert_eq!(run.metrics.awake, vec![6, 1]);
    }
}

#[test]
fn trivial_greedy_agrees_on_hub_heavy_star() {
    // One hub owning half the endpoint degree mass: the degree-weighted
    // splitter isolates it in a chunk of its own, and the owner-sharded
    // delivery must still reassemble every leaf inbox in sender order.
    let g = generators::star(120);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    });
}

#[test]
fn linial_agrees_on_hub_heavy_caterpillar() {
    // Heavy hubs on a spine: degree mass concentrates in a few nodes while
    // the awake set stays wide — chunk boundaries land mid-leaf-run.
    let g = generators::caterpillar(8, 14);
    let delta = g.max_degree() as u64;
    assert_equivalent(&g, || -> Vec<ColorReduction> {
        g.nodes()
            .map(|v| ColorReduction::from_ident(g.ident(v), g.ident_bound(), delta))
            .collect()
    });
}

#[test]
fn coloring_program_agrees_across_executors() {
    let g = generators::cycle(64);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<DeltaPlusOneColoring>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(DeltaPlusOneColoring, ()))
            .collect()
    });
}
