//! The serial skip-ahead engine and the crossbeam worker-pool executor
//! must agree bit for bit on deterministic programs.

use awake::core::linial::ColorReduction;
use awake::core::trivial::TrivialGreedy;
use awake::graphs::generators;
use awake::olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
use awake::sleeping::{threaded, Config, Engine};

#[test]
fn linial_agrees_across_executors() {
    let g = generators::gnp(120, 0.07, 13);
    let delta = g.max_degree() as u64;
    let mk = || -> Vec<ColorReduction> {
        g.nodes()
            .map(|v| ColorReduction::from_ident(g.ident(v), g.ident_bound(), delta))
            .collect()
    };
    let serial = Engine::new(&g, Config::default()).run(mk()).unwrap();
    for workers in [1, 2, 8] {
        let par = threaded::run_threaded(&g, mk(), Config::default(), workers).unwrap();
        assert_eq!(serial.outputs, par.outputs, "workers = {workers}");
        assert_eq!(serial.metrics.awake, par.metrics.awake);
        assert_eq!(serial.metrics.rounds, par.metrics.rounds);
        assert_eq!(serial.metrics.messages_sent, par.metrics.messages_sent);
        assert_eq!(serial.metrics.messages_lost, par.metrics.messages_lost);
    }
}

#[test]
fn trivial_greedy_agrees_across_executors() {
    let g = generators::random_with_max_degree(150, 12, 3);
    let mk = || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    };
    let serial = Engine::new(&g, Config::default()).run(mk()).unwrap();
    let par = threaded::run_threaded(&g, mk(), Config::default(), 4).unwrap();
    assert_eq!(serial.outputs, par.outputs);
    assert_eq!(serial.metrics.awake, par.metrics.awake);
}

#[test]
fn coloring_program_agrees_across_executors() {
    let g = generators::cycle(64);
    let mk = || -> Vec<TrivialGreedy<DeltaPlusOneColoring>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(DeltaPlusOneColoring, ()))
            .collect()
    };
    let serial = Engine::new(&g, Config::default()).run(mk()).unwrap();
    let par = threaded::run_threaded(&g, mk(), Config::default(), 3).unwrap();
    assert_eq!(serial.outputs, par.outputs);
}
