//! The serial skip-ahead engine and the persistent worker-pool executor
//! must agree **bit for bit** on deterministic programs: equal outputs and
//! equal [`Metrics`] — awake vectors, message counters, round counts, and
//! span attribution — across worker counts.

use awake::core::linial::ColorReduction;
use awake::core::trivial::TrivialGreedy;
use awake::graphs::{generators, Graph};
use awake::olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
use awake::sleeping::{threaded, Config, Engine, Metrics, Program, Run};

/// Run serially and under 1, 2 and 8 workers; assert full equivalence.
fn assert_equivalent<P, F>(g: &Graph, mk: F)
where
    P: Program + Send,
    P::Output: PartialEq,
    F: Fn() -> Vec<P>,
{
    let serial: Run<P::Output> = Engine::new(g, Config::default()).run(mk()).unwrap();
    for workers in [1usize, 2, 8] {
        let par = threaded::run_threaded(g, mk(), Config::default(), workers).unwrap();
        assert!(
            serial.outputs == par.outputs,
            "outputs diverge at workers = {workers}"
        );
        let (s, p): (&Metrics, &Metrics) = (&serial.metrics, &par.metrics);
        assert_eq!(s.awake, p.awake, "awake vectors, workers = {workers}");
        assert_eq!(s.rounds, p.rounds, "rounds, workers = {workers}");
        assert_eq!(
            s.messages_sent, p.messages_sent,
            "sent, workers = {workers}"
        );
        assert_eq!(
            s.messages_delivered, p.messages_delivered,
            "delivered, workers = {workers}"
        );
        assert_eq!(
            s.messages_lost, p.messages_lost,
            "lost, workers = {workers}"
        );
        assert_eq!(
            s.span_summary(),
            p.span_summary(),
            "span summaries, workers = {workers}"
        );
        assert_eq!(s, p, "full Metrics equality, workers = {workers}");
    }
}

#[test]
fn linial_agrees_on_erdos_renyi() {
    let g = generators::gnp(120, 0.07, 13);
    let delta = g.max_degree() as u64;
    assert_equivalent(&g, || -> Vec<ColorReduction> {
        g.nodes()
            .map(|v| ColorReduction::from_ident(g.ident(v), g.ident_bound(), delta))
            .collect()
    });
}

#[test]
fn linial_agrees_on_random_tree() {
    let g = generators::random_tree(90, 21);
    let delta = g.max_degree() as u64;
    assert_equivalent(&g, || -> Vec<ColorReduction> {
        g.nodes()
            .map(|v| ColorReduction::from_ident(g.ident(v), g.ident_bound(), delta))
            .collect()
    });
}

#[test]
fn trivial_greedy_agrees_on_erdos_renyi() {
    // The trivial baseline exercises long sleeps and message loss, so this
    // covers the wheel (not just the stay lane).
    let g = generators::gnp(80, 0.1, 29);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    });
}

#[test]
fn trivial_greedy_agrees_on_random_tree() {
    let g = generators::random_tree(110, 5);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    });
}

#[test]
fn trivial_greedy_agrees_on_bounded_degree_graph() {
    let g = generators::random_with_max_degree(150, 12, 3);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
            .collect()
    });
}

#[test]
fn coloring_program_agrees_across_executors() {
    let g = generators::cycle(64);
    assert_equivalent(&g, || -> Vec<TrivialGreedy<DeltaPlusOneColoring>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(DeltaPlusOneColoring, ()))
            .collect()
    });
}
