//! The O-LOCAL membership obligation, property-tested: every bundled
//! problem's greedy must succeed under *every* acyclic orientation — and
//! the distance-2 counterexample must fail as the paper argues.

use awake::graphs::rng::Rng;
use awake::graphs::{generators, AcyclicOrientation, NodeId};
use awake::olocal::greedy::solve_sequentially;
use awake::olocal::not_olocal;
use awake::olocal::problems::{
    DegreePlusOneListColoring, DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover,
};
use awake::olocal::OLocalProblem;

#[test]
fn every_orientation_works_for_every_problem() {
    let mut rng = Rng::seed_from_u64(0x010ca1);
    for case in 0..40 {
        let n = rng.gen_range(2..30);
        let p = 0.05 + rng.gen_f64() * 0.55;
        let gseed = rng.bounded_u64(500);
        let oseed = rng.bounded_u64(500);
        let g = generators::gnp(n, p, gseed);
        let mu = AcyclicOrientation::random(&g, oseed);

        let prob = DeltaPlusOneColoring;
        let out = solve_sequentially(&prob, &g, &mu, &prob.trivial_inputs(&g));
        assert!(
            prob.validate(&g, &prob.trivial_inputs(&g), &out).is_ok(),
            "case {case}"
        );

        let prob = MaximalIndependentSet;
        let out = solve_sequentially(&prob, &g, &mu, &prob.trivial_inputs(&g));
        assert!(
            prob.validate(&g, &prob.trivial_inputs(&g), &out).is_ok(),
            "case {case}"
        );

        let prob = MinimalVertexCover;
        let out = solve_sequentially(&prob, &g, &mu, &prob.trivial_inputs(&g));
        assert!(
            prob.validate(&g, &prob.trivial_inputs(&g), &out).is_ok(),
            "case {case}"
        );

        let prob = DegreePlusOneListColoring;
        let inputs = prob.trivial_inputs(&g);
        let out = solve_sequentially(&prob, &g, &mu, &inputs);
        assert!(prob.validate(&g, &inputs, &out).is_ok(), "case {case}");
    }
}

#[test]
fn distance2_coloring_is_defeated_on_the_paper_path() {
    // Any sink rule with the (Δ²+1) = 5 palette is beaten by pigeonhole on
    // the alternating-orientation path (§2.2 of the paper).
    let rule = |ident: u64| ident % 5;
    let (g, s0, s1) =
        not_olocal::defeat_distance2_rule(10, 5, rule).expect("pigeonhole collision exists");
    assert_eq!(s1 - s0, 2, "colliding sinks at distance 2");
    let c0 = rule(g.ident(NodeId(s0 as u32)));
    let c1 = rule(g.ident(NodeId(s1 as u32)));
    assert_eq!(c0, c1, "the rule colors two distance-2 sinks alike");
}
