//! Model-semantics checks across crates: exact awake counts for Lemma 6,
//! message loss to sleeping nodes, and Lemma 8 composition accounting.

use awake::core::lemma6::{Broadcast, Convergecast, TreeInput};
use awake::graphs::{generators, traversal, Graph, NodeId};
use awake::sleeping::{Action, Config, Engine, Envelope, Outbox, Program, View};

fn bfs_tree_inputs(g: &Graph) -> Vec<TreeInput> {
    let dist = traversal::bfs_distances(g, NodeId(0));
    (0..g.n())
        .map(|v| TreeInput {
            parent: if v == 0 {
                None
            } else {
                let dv = dist[v].unwrap();
                g.neighbors(NodeId(v as u32))
                    .iter()
                    .copied()
                    .find(|u| dist[u.index()] == Some(dv - 1))
            },
            label: dist[v].unwrap() as u64 + 1,
            label_bound: g.n() as u64 + 1,
        })
        .collect()
}

#[test]
fn lemma6_awake_is_exactly_three_on_many_trees() {
    for seed in 0..10 {
        let g = generators::random_tree(37, seed);
        let inputs = bfs_tree_inputs(&g);
        let programs: Vec<Broadcast<u64>> = inputs
            .iter()
            .map(|i| Broadcast::new(i.clone(), i.parent.is_none().then_some(99)))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        assert!(run.outputs.iter().all(|&m| m == 99));
        for v in g.nodes() {
            let expect = if inputs[v.index()].parent.is_none() {
                2
            } else {
                3
            };
            assert_eq!(run.metrics.awake[v.index()], expect);
        }

        let programs: Vec<Convergecast<u64>> = inputs
            .iter()
            .enumerate()
            .map(|(v, i)| Convergecast::new(i.clone(), v as u64))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        assert_eq!(run.outputs[0].len(), g.n(), "root gathers everything");
        assert_eq!(run.metrics.max_awake(), 3);
    }
}

/// A probe program: node 0 broadcasts at every round 1..=5 then halts;
/// node 1 sleeps through rounds 2..=4.
struct Probe {
    is_sender: bool,
    heard: Vec<u64>,
}

impl Program for Probe {
    type Msg = u64;
    type Output = Vec<u64>;
    fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
        if self.is_sender {
            out.broadcast(view.round);
        }
    }
    fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
        self.heard.extend(inbox.iter().map(|e| e.msg));
        if self.is_sender {
            if view.round < 5 {
                Action::Stay
            } else {
                Action::Halt
            }
        } else if view.round == 1 {
            Action::SleepUntil(5)
        } else {
            Action::Halt
        }
    }
    fn output(&self) -> Option<Vec<u64>> {
        Some(self.heard.clone())
    }
}

#[test]
fn messages_to_sleeping_nodes_are_lost_and_counted() {
    let g = generators::path(2);
    let run = Engine::new(&g, Config::default())
        .run(vec![
            Probe {
                is_sender: true,
                heard: vec![],
            },
            Probe {
                is_sender: false,
                heard: vec![],
            },
        ])
        .unwrap();
    // receiver hears rounds 1 and 5 only; rounds 2-4 lost.
    assert_eq!(run.outputs[1], vec![1, 5]);
    assert_eq!(run.metrics.messages_lost, 3);
    assert_eq!(run.metrics.messages_delivered, 2);
}

#[test]
fn composition_accounting_is_additive() {
    use awake::core::compose::Composition;
    use awake::sleeping::Metrics;

    let mut m1 = Metrics::new(2);
    m1.note_awake(NodeId(0), "a");
    m1.rounds = 100;
    let mut m2 = Metrics::new(2);
    m2.note_awake(NodeId(0), "b");
    m2.note_awake(NodeId(1), "b");
    m2.rounds = 50;
    let mut c = Composition::new();
    c.push("s1", m1);
    c.push("s2", m2);
    assert_eq!(c.max_awake(), 2);
    assert_eq!(c.rounds(), 150);
    assert_eq!(c.awake_per_node(), vec![2, 1]);
}

#[test]
fn round_budget_protects_against_runaway_schedules() {
    struct Forever;
    impl Program for Forever {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View, _: &mut Outbox<()>) {}
        fn receive(&mut self, view: &View, _: &[Envelope<()>]) -> Action {
            Action::SleepUntil(view.round + 1000)
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }
    let g = generators::path(2);
    let err = Engine::new(&g, Config::with_max_rounds(10_000))
        .run(vec![Forever, Forever])
        .unwrap_err();
    assert!(matches!(
        err,
        awake::sleeping::SimError::RoundBudgetExceeded { .. }
    ));
}
