//! End-to-end integration: Theorem 1 across problems × graph families,
//! validated against ground truth and the closed-form awake budgets.

use awake::core::{bm21, bounds, theorem1, trivial};
use awake::graphs::{generators, Graph};
use awake::olocal::problems::{
    DegreePlusOneListColoring, DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover,
};
use awake::olocal::OLocalProblem;
use awake::sleeping::{Config, Engine};

fn families() -> Vec<Graph> {
    vec![
        generators::path(30),
        generators::cycle(24),
        generators::star(25),
        generators::complete(10),
        generators::grid(5, 7),
        generators::hypercube(5),
        generators::random_tree(40, 3),
        generators::gnp(48, 0.12, 9),
        generators::clique_cycle(5, 5),
    ]
}

#[test]
fn theorem1_coloring_everywhere() {
    for g in families() {
        let r = theorem1::solve(&g, &DeltaPlusOneColoring, Default::default()).unwrap();
        DeltaPlusOneColoring
            .validate(&g, &vec![(); g.n()], &r.outputs)
            .unwrap_or_else(|e| panic!("{g:?}: {e}"));
        assert!(r.composition.max_awake() <= bounds::theorem1_awake(&r.params));
        r.clustering.validate_colored(&g).unwrap();
    }
}

#[test]
fn theorem1_mis_everywhere() {
    for g in families() {
        let r = theorem1::solve(&g, &MaximalIndependentSet, Default::default()).unwrap();
        MaximalIndependentSet
            .validate(&g, &vec![(); g.n()], &r.outputs)
            .unwrap_or_else(|e| panic!("{g:?}: {e}"));
    }
}

#[test]
fn theorem1_vertex_cover_and_list_coloring() {
    for g in [generators::gnp(40, 0.15, 2), generators::grid(6, 6)] {
        let r = theorem1::solve(&g, &MinimalVertexCover, Default::default()).unwrap();
        MinimalVertexCover
            .validate(&g, &vec![(); g.n()], &r.outputs)
            .unwrap();

        let p = DegreePlusOneListColoring;
        let inputs = p.trivial_inputs(&g);
        let r = theorem1::solve_with_inputs(&g, &p, &inputs, Default::default()).unwrap();
        p.validate(&g, &inputs, &r.outputs).unwrap();
    }
}

#[test]
fn all_three_generations_solve_the_same_instance() {
    let g = generators::random_with_max_degree(200, 24, 5);
    let p = MaximalIndependentSet;

    let programs: Vec<trivial::TrivialGreedy<MaximalIndependentSet>> = g
        .nodes()
        .map(|_| trivial::TrivialGreedy::new(p, ()))
        .collect();
    let triv = Engine::new(&g, Config::default()).run(programs).unwrap();
    p.validate(&g, &vec![(); g.n()], &triv.outputs).unwrap();

    let b = bm21::solve(&g, &p, &vec![(); g.n()], None).unwrap();
    p.validate(&g, &vec![(); g.n()], &b.outputs).unwrap();

    let t = theorem1::solve(&g, &p, Default::default()).unwrap();
    p.validate(&g, &vec![(); g.n()], &t.outputs).unwrap();

    // Awake bounds: trivial pays Θ(Δ), BM21 pays Θ(log Δ + log* n).
    assert!(triv.metrics.max_awake() <= bounds::trivial_awake(&g));
    assert!(b.composition.max_awake() <= bounds::bm21_awake(&g));
    assert!(t.composition.max_awake() <= bounds::theorem1_awake(&t.params));
    // And the hierarchy on this dense instance: BM21 beats trivial.
    assert!(b.composition.max_awake() < triv.metrics.max_awake());
}

#[test]
fn disconnected_graphs_are_handled() {
    let g =
        awake::graphs::ops::disjoint_union(&generators::cycle(9), &generators::random_tree(12, 1));
    let r = theorem1::solve(&g, &DeltaPlusOneColoring, Default::default()).unwrap();
    DeltaPlusOneColoring
        .validate(&g, &vec![(); g.n()], &r.outputs)
        .unwrap();
}

#[test]
fn single_node_and_tiny_graphs() {
    for n in 1..=4usize {
        let g = generators::path(n);
        let r = theorem1::solve(&g, &MaximalIndependentSet, Default::default()).unwrap();
        MaximalIndependentSet
            .validate(&g, &vec![(); g.n()], &r.outputs)
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}
