//! The measured-vs-stated audit, end to end: for every algo × problem
//! pair on seeded Gnp/tree/star/caterpillar families, the measured awake
//! and round complexities must stay within the closed-form budgets of
//! `awake_core::bounds::budget_for` — the assertion `bounds.rs` documents
//! ("the tests and the experiment harness assert `measured ≤ bound`"),
//! exercised here through the same scenario runner the suite binary and
//! CI audit gate use.

use awake_lab::runner::{budget_of, run_scenario};
use awake_lab::scenario::{Algo, GraphFamily, ProblemKind, Scenario};

/// The four families the audit sweeps: two seeded random ones (a fresh
/// graph per suite seed) and two deterministic hub-heavy ones.
fn families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::Gnp { n: 48, p: 0.12 },
        GraphFamily::RandomTree { n: 56 },
        GraphFamily::Star { n: 40 },
        GraphFamily::Caterpillar { spine: 8, legs: 4 },
    ]
}

fn assert_within_budget(sc: &Scenario, suite_seed: u64) {
    let r = run_scenario(sc, suite_seed, None).unwrap();
    assert!(r.valid, "{} (seed {suite_seed}): invalid output", r.name);
    assert!(r.metrics.max_awake > 0, "{}: nothing ran", r.name);
    assert!(
        r.metrics.max_awake <= r.awake_bound,
        "{} (seed {suite_seed}): awake {} > bound {}",
        r.name,
        r.metrics.max_awake,
        r.awake_bound
    );
    assert!(
        r.metrics.rounds <= r.round_bound,
        "{} (seed {suite_seed}): rounds {} > bound {}",
        r.name,
        r.metrics.rounds,
        r.round_bound
    );
    assert!(
        r.bound_ok,
        "{}: bound_ok must mirror the two checks",
        r.name
    );
    // The report's budget columns are exactly the audit entry point's.
    let g = sc.family.build(sc.seed(suite_seed));
    let budget = budget_of(sc, &g);
    assert_eq!(
        (r.awake_bound, r.round_bound),
        (budget.awake, budget.rounds)
    );
}

#[test]
fn vertex_problems_stay_within_budget_on_all_families_and_algos() {
    for suite_seed in [1u64, 7, 1234] {
        for family in families() {
            for problem in ProblemKind::ALL {
                for algo in [
                    Algo::Trivial,
                    Algo::TrivialThreaded(3),
                    Algo::Bm21,
                    Algo::Theorem1,
                ] {
                    let sc = Scenario::of(family.clone(), problem, algo).build();
                    assert_within_budget(&sc, suite_seed);
                }
            }
        }
    }
}

#[test]
fn edge_problems_stay_within_budget_on_all_families() {
    for suite_seed in [1u64, 7, 1234] {
        for family in families() {
            for problem in ProblemKind::EDGE {
                for algo in [Algo::Trivial, Algo::TrivialThreaded(4)] {
                    let sc = Scenario::of(family.clone(), problem, algo).build();
                    assert_within_budget(&sc, suite_seed);
                }
            }
        }
    }
}

/// The trivial baseline's awake bound is `Δ + 2` — a star whose hub holds
/// the *largest* identifier saturates it exactly (the hub must hear every
/// leaf's decision before its own announce round), so the budget is tight,
/// not just an over-approximation.
#[test]
fn star_hub_saturates_the_trivial_awake_bound() {
    use awake::core::bounds;
    use awake::core::trivial::TrivialGreedy;
    use awake::graphs::generators;
    use awake::olocal::problems::MaximalIndependentSet;
    use awake::sleeping::{Config, Engine};

    let n = 40u64;
    // hub (node 0) gets ident n, leaves keep 1..n
    let idents: Vec<u64> = std::iter::once(n).chain(1..n).collect();
    let g = generators::star(n as usize).with_idents(idents);
    let programs: Vec<TrivialGreedy<MaximalIndependentSet>> = g
        .nodes()
        .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
        .collect();
    let run = Engine::new(&g, Config::default()).run(programs).unwrap();
    assert_eq!(
        run.metrics.max_awake(),
        bounds::trivial_awake(&g),
        "Δ + 2 is tight on S_{} with the hub last",
        n - 1
    );
    assert!(run.metrics.rounds <= bounds::trivial_rounds(&g));
}
