//! The wake-up scheduler: a hierarchical bucket (timing-wheel) queue.
//!
//! The executors must repeatedly answer "which round is next, and who wakes
//! then?" over the full `u64` round space — the paper's schedules jump by
//! polynomially long sleeps, so the queue has to skip-ahead in O(awake)
//! rather than scan rounds. A binary heap does this in `O(log n)` per
//! node-round with poor locality; this wheel does it in amortized `O(1)`
//! per event with a handful of word-sized bitmap probes per advance.
//!
//! Rounds are split into [`LEVELS`] groups of [`GROUP_BITS`] bits. An event
//! is bucketed at the *highest* group in which its round differs from the
//! wheel's current position, so level 0 holds the rounds of the current
//! 64-round block exactly, and higher levels hold coarser "cascade later"
//! bags. A per-level occupancy bitmap makes "lowest non-empty bucket" a
//! `trailing_zeros` instruction. Advancing to the next event drains at most
//! one bucket per level back down (each event cascades at most [`LEVELS`]
//! times over its lifetime), and every bucket is a reusable `Vec`, so the
//! steady state allocates nothing.
//!
//! The dominant action of dense algorithm phases — [`Action::Stay`] — never
//! touches this structure at all: the executors keep a *fast lane* of nodes
//! waking at `previous round + 1` and only consult the wheel for genuine
//! sleeps (see `Engine::run`).
//!
//! [`Action::Stay`]: crate::Action::Stay

use crate::Round;

/// Bits per wheel level; each level has `2^GROUP_BITS` buckets.
const GROUP_BITS: u32 = 6;
/// Buckets per level (64, so one occupancy word per level).
const SLOTS: usize = 1 << GROUP_BITS;
/// Levels needed to cover all of `u64` (`11 * 6 = 66 ≥ 64`).
const LEVELS: usize = 11;

/// A hierarchical bucket queue of `(wake round, node)` events.
#[derive(Debug)]
pub(crate) struct WakeWheel {
    /// `buckets[level * SLOTS + slot]`; reused across the run.
    buckets: Vec<Vec<(Round, u32)>>,
    /// One bit per bucket, per level.
    occupied: [u64; LEVELS],
    /// The last round handed out; all stored events are strictly later.
    current: Round,
    /// Total events stored.
    len: usize,
    /// Memoized earliest pending round; `None` = unknown (recomputed and
    /// re-memoized by the next [`peek_min`](Self::peek_min)).
    cached_min: Option<Round>,
}

impl WakeWheel {
    pub(crate) fn new() -> Self {
        WakeWheel {
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            current: 0,
            len: 0,
            cached_min: None,
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All pending `(round, node)` events, sorted by `(round, node)` — the
    /// wheel's logical content for checkpointing. Bucket layout is relative
    /// to the wheel's running position, so snapshots store this canonical
    /// form and restore rebuilds a fresh wheel from it: pop order and peek
    /// results (all the executors observe) are position-independent.
    pub(crate) fn pending_events(&self) -> Vec<(Round, u32)> {
        let mut events: Vec<(Round, u32)> = Vec::with_capacity(self.len);
        for bucket in &self.buckets {
            events.extend_from_slice(bucket);
        }
        events.sort_unstable();
        events
    }

    /// The level at which `round` is bucketed relative to `current`:
    /// the highest 6-bit group where they differ.
    #[inline]
    fn level_of(&self, round: Round) -> usize {
        let diff = round ^ self.current;
        debug_assert!(diff != 0, "events must be strictly in the future");
        ((63 - diff.leading_zeros()) / GROUP_BITS) as usize
    }

    /// Queue `node` to wake at `round`.
    ///
    /// `round` must be strictly greater than the last round handed out by
    /// [`pop_next`](Self::pop_next) — the executors validate sleeps before
    /// scheduling them.
    #[inline]
    pub(crate) fn schedule(&mut self, round: Round, node: u32) {
        debug_assert!(
            round > self.current,
            "schedule({round}) ≤ current ({})",
            self.current
        );
        let level = self.level_of(round);
        let slot = (round >> (GROUP_BITS * level as u32)) as usize & (SLOTS - 1);
        self.buckets[level * SLOTS + slot].push((round, node));
        self.occupied[level] |= 1 << slot;
        self.len += 1;
        if self.len == 1 {
            // Only event stored: trivially the minimum.
            self.cached_min = Some(round);
        } else if let Some(m) = self.cached_min {
            if round < m {
                self.cached_min = Some(round);
            }
        }
        // A `None` memo must stay `None`: it means "unknown", and events this
        // schedule never saw may be pending earlier than `round`. Promoting it
        // to `Some(round)` here would make peek_min report a too-late minimum
        // after a pop_next + schedule sequence. Only a full recomputation
        // (peek_min) may re-arm the memo.
    }

    /// Queue a batch of `(wake round, node)` events.
    ///
    /// The batched form of [`schedule`](Self::schedule): the threaded
    /// executor applies each worker's sleep partial in one call, chunk by
    /// chunk in node order, so merged wake-ups enter the wheel in exactly
    /// the order the serial engine schedules them. Every event must be
    /// strictly in the future, like `schedule`.
    #[inline]
    pub(crate) fn schedule_all(&mut self, events: impl IntoIterator<Item = (Round, u32)>) {
        for (round, node) in events {
            self.schedule(round, node);
        }
    }

    /// The earliest pending round, without advancing the wheel.
    ///
    /// No cascade: the executors use this to decide whether the wheel
    /// participates in a stay-lane round *before* committing the wheel's
    /// position, so sleeps scheduled while processing that round stay
    /// insertable. Amortized O(1): `schedule` keeps a valid memo tight,
    /// and only a `pop_next` invalidates it, so at most one recomputation
    /// — a scan of the lowest occupied bucket, where the global minimum
    /// must live — happens per pop.
    pub(crate) fn peek_min(&mut self) -> Option<Round> {
        if self.len == 0 {
            return None;
        }
        if let Some(m) = self.cached_min {
            return Some(m);
        }
        let min = if self.occupied[0] != 0 {
            let slot = self.occupied[0].trailing_zeros() as usize;
            Some((self.current & !((SLOTS as u64) - 1)) | slot as u64)
        } else {
            let level = (1..LEVELS)
                .find(|&l| self.occupied[l] != 0)
                .expect("len > 0 implies some occupied level");
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.buckets[level * SLOTS + slot]
                .iter()
                .map(|&(r, _)| r)
                .min()
        };
        self.cached_min = min;
        min
    }

    /// Advance to the earliest pending round, append its nodes to `out`
    /// (in arbitrary order — callers sort), and return the round.
    ///
    /// A gap of any width — one round or 10¹² — costs a **single pass**
    /// over one bucket: when the current 64-round block is empty, the
    /// lowest occupied bucket of the lowest non-empty level is drained
    /// once, virtual time is rebased directly to that bucket's minimum
    /// round, and only the bucket's later events are re-inserted (each
    /// lands at its final level relative to the new position, no
    /// level-by-level trickle). Executor cost is therefore proportional to
    /// awake *events*, not elapsed rounds — the event-compression the
    /// Sleeping model's accounting assumes.
    pub(crate) fn pop_next(&mut self, out: &mut Vec<u32>) -> Option<Round> {
        if self.len == 0 {
            return None;
        }
        // Level 0 buckets are exact rounds inside the current 64-round
        // block; anything at a higher level is in a later block.
        if self.occupied[0] != 0 {
            let slot = self.occupied[0].trailing_zeros() as usize;
            let round = (self.current & !((SLOTS as u64) - 1)) | slot as u64;
            let bucket = &mut self.buckets[slot];
            self.len -= bucket.len();
            for &(r, node) in bucket.iter() {
                debug_assert_eq!(r, round, "level-0 buckets hold one exact round");
                out.push(node);
            }
            bucket.clear();
            self.occupied[0] &= !(1 << slot);
            self.current = round;
            // Invalidate at the point of return, not at entry: cascades
            // re-insert events through `schedule`, which would otherwise
            // re-memoize the very round being popped here — and peek_min
            // would then report an already-popped round, making the
            // executors skip coinciding wake-ups.
            self.cached_min = None;
            return Some(round);
        }
        // Batch-cascade across the idle gap in one pass. The lowest
        // occupied bucket of the lowest non-empty level holds the global
        // minimum: lower levels are empty, higher slots of this level hold
        // strictly larger group values, and higher levels differ from
        // `current` in a more significant group. Every event of that
        // minimum round shares the bucket (equal rounds bucket together),
        // so draining it once yields the full wake set.
        let level = (1..LEVELS)
            .find(|&l| self.occupied[l] != 0)
            .expect("len > 0 implies some occupied level");
        let slot = self.occupied[level].trailing_zeros() as usize;
        let mut bucket = std::mem::take(&mut self.buckets[level * SLOTS + slot]);
        self.occupied[level] &= !(1 << slot);
        self.len -= bucket.len();
        let round = bucket
            .iter()
            .map(|&(r, _)| r)
            .min()
            .expect("occupied buckets are non-empty");
        // Rebase virtual time directly to the jump target. Other buckets
        // keep their (level, slot): their groups above `level` still match
        // `current`'s (unchanged), and at `level` they still differ.
        self.current = round;
        for &(r, node) in bucket.iter() {
            if r == round {
                out.push(node);
            } else {
                // Strictly later: re-insert at its final level relative to
                // the new position — one hop, not a per-level trickle.
                self.schedule(r, node);
            }
        }
        bucket.clear();
        // Return the drained Vec so its capacity is reused.
        self.buckets[level * SLOTS + slot] = bucket;
        // Same point-of-return invalidation as the level-0 path: the
        // re-inserting `schedule` calls above may have re-armed the memo
        // with a round that is not the global minimum.
        self.cached_min = None;
        Some(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut WakeWheel) -> Vec<(Round, Vec<u32>)> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        while let Some(r) = w.pop_next(&mut batch) {
            batch.sort_unstable();
            out.push((r, std::mem::take(&mut batch)));
        }
        out
    }

    #[test]
    fn orders_rounds_and_batches_ties() {
        let mut w = WakeWheel::new();
        for (r, v) in [(5u64, 0u32), (1, 1), (5, 2), (100, 3), (1, 4)] {
            w.schedule(r, v);
        }
        let got = drain_all(&mut w);
        assert_eq!(got, vec![(1, vec![1, 4]), (5, vec![0, 2]), (100, vec![3])]);
        assert!(w.is_empty());
    }

    #[test]
    fn skip_ahead_over_huge_gaps() {
        let mut w = WakeWheel::new();
        w.schedule(1, 0);
        let mut batch = Vec::new();
        assert_eq!(w.pop_next(&mut batch), Some(1));
        w.schedule(1_000_000_000_000, 1);
        w.schedule(u64::MAX / 4, 2);
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(1_000_000_000_000));
        assert_eq!(batch, vec![1]);
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(u64::MAX / 4));
        assert_eq!(batch, vec![2]);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut w = WakeWheel::new();
        w.schedule(2, 0);
        w.schedule(2, 1);
        let mut batch = Vec::new();
        assert_eq!(w.pop_next(&mut batch), Some(2));
        batch.sort_unstable();
        assert_eq!(batch, vec![0, 1]);
        // schedule relative to the new position, spanning block boundaries
        w.schedule(3, 0);
        w.schedule(64, 1);
        w.schedule(65, 2);
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(3));
        assert_eq!(batch, vec![0]);
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(64));
        assert_eq!(batch, vec![1]);
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(65));
        assert_eq!(batch, vec![2]);
        assert_eq!(w.pop_next(&mut batch), None);
    }

    /// Regression: a cascading pop_next re-inserts events via `schedule`,
    /// which used to re-memoize the very round being popped; peek_min then
    /// returned the already-popped round. Wakes at 65/66 from current = 0
    /// cascade across the first 64-round block boundary.
    #[test]
    fn peek_is_fresh_after_a_cascading_pop() {
        let mut w = WakeWheel::new();
        w.schedule(65, 0);
        w.schedule(66, 1);
        let mut batch = Vec::new();
        assert_eq!(w.pop_next(&mut batch), Some(65));
        assert_eq!(batch, vec![0]);
        assert_eq!(w.peek_min(), Some(66), "memo must not hold popped round");
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(66));
        assert_eq!(batch, vec![1]);
        assert_eq!(w.peek_min(), None);
    }

    /// Regression: after a pop leaves older events pending, a `schedule` of
    /// a *later* round must not re-arm the memo — peek_min would otherwise
    /// report the freshly scheduled round and hide the older event.
    #[test]
    fn schedule_after_pop_does_not_hide_older_events() {
        let mut w = WakeWheel::new();
        w.schedule(66, 0);
        w.schedule(70, 1);
        let mut batch = Vec::new();
        assert_eq!(w.pop_next(&mut batch), Some(66));
        w.schedule(100, 2);
        assert_eq!(w.peek_min(), Some(70), "70 is still pending, not 100");
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(70));
        assert_eq!(batch, vec![1]);
        assert_eq!(w.peek_min(), Some(100));
    }

    /// A wheel rebuilt from `pending_events` must be observationally equal
    /// to the original — the checkpoint/restore contract for the scheduler.
    #[test]
    fn pending_events_rebuild_an_equivalent_wheel() {
        let mut w = WakeWheel::new();
        w.schedule(65, 0);
        w.schedule(66, 1);
        w.schedule(1 << 40, 2);
        let mut batch = Vec::new();
        assert_eq!(w.pop_next(&mut batch), Some(65));
        w.schedule(66, 3);
        let events = w.pending_events();
        assert_eq!(events, vec![(66, 1), (66, 3), (1 << 40, 2)]);
        let mut rebuilt = WakeWheel::new();
        rebuilt.schedule_all(events);
        assert_eq!(rebuilt.peek_min(), w.peek_min());
        assert_eq!(drain_all(&mut rebuilt), drain_all(&mut w));
    }

    #[test]
    fn schedule_all_equals_repeated_schedule() {
        let events = [(5u64, 0u32), (1, 1), (70, 2), (5, 3), (1 << 30, 4)];
        let mut batched = WakeWheel::new();
        batched.schedule_all(events);
        let mut single = WakeWheel::new();
        for (r, v) in events {
            single.schedule(r, v);
        }
        assert_eq!(batched.peek_min(), single.peek_min());
        assert_eq!(drain_all(&mut batched), drain_all(&mut single));
    }

    /// The batch-cascade drains one bucket per jump: events sharing the far
    /// bucket but due at different rounds must separate correctly, and the
    /// memo must be fresh after the jump (both historical failure modes).
    #[test]
    fn batch_cascade_separates_colocated_far_events() {
        let mut w = WakeWheel::new();
        let base = 1u64 << 40;
        // all four share the level-6-ish bucket relative to current = 0
        w.schedule(base + 5, 0);
        w.schedule(base + 5, 1);
        w.schedule(base + 70, 2);
        w.schedule(base + (1 << 20), 3);
        let mut batch = Vec::new();
        assert_eq!(w.pop_next(&mut batch), Some(base + 5));
        batch.sort_unstable();
        assert_eq!(batch, vec![0, 1]);
        assert_eq!(w.peek_min(), Some(base + 70), "memo fresh after the jump");
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(base + 70));
        assert_eq!(batch, vec![2]);
        batch.clear();
        assert_eq!(w.pop_next(&mut batch), Some(base + (1 << 20)));
        assert_eq!(batch, vec![3]);
        assert!(w.is_empty());
    }

    #[test]
    fn agrees_with_a_reference_heap_on_random_workloads() {
        use awake_graphs::rng::Rng;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut rng = Rng::seed_from_u64(99);
        for case in 0..50 {
            let mut w = WakeWheel::new();
            let mut heap: BinaryHeap<Reverse<(Round, u32)>> = BinaryHeap::new();
            let mut current = 0u64;
            let mut pending = 0usize;
            let mut node = 0u32;
            for _ in 0..200 {
                // schedule a burst of future events, then pop one batch
                for _ in 0..rng.gen_range(0..4) {
                    let gap = match rng.bounded_u64(3) {
                        0 => 1 + rng.bounded_u64(3),
                        1 => 1 + rng.bounded_u64(200),
                        _ => 1 + rng.bounded_u64(1 << 40),
                    };
                    w.schedule(current + gap, node);
                    heap.push(Reverse((current + gap, node)));
                    node += 1;
                    pending += 1;
                }
                // Cross-check peek_min against the heap's min between every
                // schedule burst and pop, so stale memos (e.g. left behind
                // by a cascade) can't hide: peek must agree whether it is
                // answered from the memo or recomputed.
                assert_eq!(
                    w.peek_min(),
                    heap.peek().map(|&Reverse((r, _))| r),
                    "case {case} peek after schedules"
                );
                if pending == 0 {
                    continue;
                }
                let mut batch = Vec::new();
                let r = w.pop_next(&mut batch).expect("pending events");
                assert_eq!(
                    w.peek_min(),
                    heap.iter()
                        .map(|&Reverse((hr, _))| hr)
                        .filter(|&hr| hr != r)
                        .min(),
                    "case {case} peek after pop at {r}"
                );
                batch.sort_unstable();
                let mut expect = Vec::new();
                let Reverse((er, _)) = *heap.peek().unwrap();
                while let Some(&Reverse((hr, hv))) = heap.peek() {
                    if hr != er {
                        break;
                    }
                    heap.pop();
                    expect.push(hv);
                }
                expect.sort_unstable();
                assert_eq!(r, er, "case {case}");
                assert_eq!(batch, expect, "case {case} round {r}");
                pending -= batch.len();
                current = r;
            }
        }
    }
}
