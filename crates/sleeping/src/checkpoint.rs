//! Versioned, std-only binary snapshots of engine state.
//!
//! A [`Snapshot`] captures everything the executors need to continue a run
//! exactly where it stopped: the current round, every node's next wake
//! round, the stay lane, the pending wake-wheel events, per-node program
//! state (through the [`Persist`] trait), the outputs produced so far,
//! [`crate::Metrics`], tracer state, and — for fault-injected
//! runs — the plan and the buffer of delayed in-flight messages.
//!
//! The load-bearing invariant, asserted by the integration tests at every
//! round of seeded runs: *run to round r, snapshot, restore, run to the
//! end* is **bit-for-bit identical** to an uninterrupted run — outputs,
//! `Metrics`, and trace — on the serial engine and the threaded executor
//! at any worker count. Snapshots are taken at round boundaries, where the
//! two executors' observable states coincide, so a snapshot written by one
//! executor can be resumed by the other.
//!
//! # Format
//!
//! Little-endian, length-prefixed, no external dependencies:
//!
//! ```text
//! magic    8 bytes  b"AWAKECKP"
//! version  u32      SNAPSHOT_VERSION (currently 3; v2 added the
//!                   awake_events / rounds_skipped metrics counters, v3
//!                   the fault-plan window fields, the recovery counters,
//!                   and the per-node recovering bitset)
//! round    u64      last processed round
//! graph    u64      fingerprint of (n, idents, adjacency)
//! config   max_rounds + trace mode
//! state    next_wake, stay lane, wheel events, outputs,
//!          per-node program blobs, metrics, tracer, fault state
//! ```
//!
//! Decoding validates the magic, the version, the graph fingerprint, and
//! every length against the remaining input; a snapshot must also be
//! consumed *exactly* ([`CheckpointError::TrailingBytes`] otherwise), so
//! truncated or corrupt files fail with a typed error instead of producing
//! a silently wrong resume.
//!
//! # The [`Persist`] contract
//!
//! `save` writes only the program's *dynamic* state — anything that
//! changes after construction. `restore` is applied to a **freshly
//! constructed** program (the caller rebuilds the initial programs from
//! the same inputs, e.g. the same scenario seed) and must overwrite every
//! dynamic field it saved. Crash-restart uses the same pair mid-round, so
//! a `restore` after `save` must reproduce the saved state exactly even on
//! a program that has advanced past it.

use crate::engine::NEVER;
use crate::faults::{DelayedMsg, FaultPlan, FaultState};
use crate::metrics::Metrics;
use crate::program::Program;
use crate::trace::{TraceEvent, Tracer};
use crate::wheel::WakeWheel;
use crate::{Config, Round, SimError, TraceMode};
use awake_graphs::{Graph, NodeId};
use std::fmt;
use std::sync::Arc;

/// Magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AWAKECKP";
/// Current snapshot format version. Version 2 appended the
/// `awake_events` and `rounds_skipped` counters to the metrics block;
/// version 3 added the fault-plan window fields
/// (`burst_start`/`burst_len`/`quiet_after`), the
/// `recovery_rounds`/`recovery_awake` counters, and the per-node
/// `recovering` bitset of the fault state. Older images are rejected with
/// [`CheckpointError::UnsupportedVersion`] rather than silently restored
/// with zeroed fields.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Why a snapshot could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input ended before the expected data.
    Truncated,
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(
        /// The version found in the header.
        u32,
    ),
    /// A decoded value is structurally invalid.
    Corrupt(
        /// What was invalid.
        &'static str,
    ),
    /// The snapshot was taken on a different graph (node count, idents, or
    /// adjacency differ).
    GraphMismatch,
    /// Decoding succeeded but bytes were left over — the snapshot and the
    /// program types disagree.
    TrailingBytes,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "snapshot truncated"),
            CheckpointError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (supported: {SNAPSHOT_VERSION})"
                )
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            CheckpointError::GraphMismatch => {
                write!(f, "snapshot was taken on a different graph")
            }
            CheckpointError::TrailingBytes => {
                write!(f, "snapshot has trailing bytes after decoding")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Why a resume failed: either the snapshot itself, or the continued
/// simulation.
#[derive(Debug)]
pub enum ResumeError {
    /// The snapshot could not be decoded or applied.
    Checkpoint(CheckpointError),
    /// The continued run failed.
    Sim(SimError),
}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

impl From<SimError> for ResumeError {
    fn from(e: SimError) -> Self {
        ResumeError::Sim(e)
    }
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Checkpoint(e) => write!(f, "{e}"),
            ResumeError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// An append-only byte sink for [`Codec::encode`] and [`Persist::save`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Append raw bytes.
    #[inline]
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Encode one value.
    #[inline]
    pub fn put<T: Codec>(&mut self, v: &T) {
        v.encode(self);
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A bounds-checked cursor over snapshot bytes for [`Codec::decode`] and
/// [`Persist::restore`].
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Consume exactly `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CheckpointError::Truncated)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Decode one value.
    #[inline]
    pub fn get<T: Codec>(&mut self) -> Result<T, CheckpointError> {
        T::decode(self)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Binary serialization of one value, little-endian and self-delimiting.
///
/// Implemented for the std types snapshots are built from; algorithm
/// crates implement it for their message and output types so their
/// programs can be [`Persist`]ed.
pub trait Codec: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decode one value from `r`, consuming exactly what `encode` wrote.
    ///
    /// # Errors
    /// [`CheckpointError::Truncated`] if the input ends early, or
    /// [`CheckpointError::Corrupt`] on structurally invalid data.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError>;
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            #[inline]
            fn encode(&self, w: &mut Writer) {
                w.bytes(&self.to_le_bytes());
            }
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
                let b = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("exact take")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        (*self as u64).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        usize::try_from(u64::decode(r)?).map_err(|_| CheckpointError::Corrupt("usize overflow"))
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.bytes(&[*self as u8]);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("bool")),
        }
    }
}

impl Codec for () {
    fn encode(&self, _w: &mut Writer) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(())
    }
}

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        w.bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::decode(r)?;
        let b = r.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| CheckpointError::Corrupt("utf-8 string"))
    }
}

impl Codec for NodeId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(NodeId(u32::decode(r)?))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.bytes(&[0]),
            Some(v) => {
                w.bytes(&[1]);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CheckpointError::Corrupt("option tag")),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::decode(r)?;
        // Every element consumes at least one byte for the types snapshots
        // store, so a length beyond the remaining input is corruption —
        // reject it before reserving memory for it.
        if len > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for std::collections::BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::decode(r)?;
        if len > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut out = std::collections::BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Codec + Ord> Codec for std::collections::BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::decode(r)?;
        if len > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut out = std::collections::BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for std::collections::VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = usize::decode(r)?;
        if len > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut out = std::collections::VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Arc<T> {
    fn encode(&self, w: &mut Writer) {
        T::encode(self, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

macro_rules! tuple_codec {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                $(self.$idx.encode(w);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

tuple_codec!(A: 0, B: 1);
tuple_codec!(A: 0, B: 1, C: 2);
tuple_codec!(A: 0, B: 1, C: 2, D: 3);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Per-node program state capture for snapshots and crash-restart.
///
/// `save` writes the program's *dynamic* state (everything that changes
/// after construction); `restore` overwrites that state on a freshly
/// constructed program. The pair must round-trip exactly: `restore` after
/// `save` reproduces the saved state bit for bit, even when applied to a
/// program that has since advanced (crash-restart applies it to the
/// post-send program of the crashed round).
pub trait Persist {
    /// Write this program's dynamic state.
    fn save(&self, w: &mut Writer);
    /// Overwrite this program's dynamic state from `r`.
    ///
    /// # Errors
    /// Any [`CheckpointError`] from decoding; on error the program state is
    /// unspecified and the caller discards it.
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError>;
}

/// The save/restore entry points of a concrete `P: Persist`, captured as
/// plain function pointers so the executor cores — which deliberately have
/// no `Persist` bound — can crash-restart nodes. Built by the bounded
/// public wrappers via [`CrashIo::of`].
pub(crate) struct CrashIo<P> {
    pub(crate) save: fn(&P, &mut Writer),
    pub(crate) restore: fn(&mut P, &mut Reader<'_>) -> Result<(), CheckpointError>,
}

impl<P> Clone for CrashIo<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P> Copy for CrashIo<P> {}

impl<P: Persist> CrashIo<P> {
    pub(crate) fn of() -> Self {
        CrashIo {
            save: P::save,
            restore: P::restore,
        }
    }
}

/// A self-contained, versioned snapshot of a paused run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    round: Round,
    bytes: Vec<u8>,
}

impl Snapshot {
    /// The last round the snapshotted run processed: resuming continues
    /// strictly after it.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The serialized form (write this to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstruct a snapshot from its serialized form, validating the
    /// header (magic + version) eagerly.
    ///
    /// # Errors
    /// [`CheckpointError::BadMagic`], [`CheckpointError::UnsupportedVersion`],
    /// or [`CheckpointError::Truncated`] if even the header is incomplete.
    /// The body is validated later, on resume.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(&bytes);
        if r.take(8)? != SNAPSHOT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::decode(&mut r)?;
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let round = Round::decode(&mut r)?;
        Ok(Snapshot { round, bytes })
    }
}

/// Whether a run paused for a snapshot actually reached the pause point,
/// or completed first.
#[derive(Debug)]
pub enum Paused<O> {
    /// The run finished before the requested pause round.
    Done(crate::Run<O>),
    /// The run paused; resume it with the snapshot.
    Snapshot(Snapshot),
}

/// How a snapshot encoder reads the per-node programs: the serial engine
/// holds them flat, the threaded executor parks them in option slots
/// (all occupied between rounds).
pub(crate) enum ProgramsRef<'a, P> {
    Flat(&'a [P]),
    Slots(&'a [Option<P>]),
}

impl<'a, P> ProgramsRef<'a, P> {
    fn get(&self, v: usize) -> &'a P {
        match self {
            ProgramsRef::Flat(s) => &s[v],
            ProgramsRef::Slots(s) => s[v].as_ref().expect("program parked between rounds"),
        }
    }
}

/// A borrowed view of everything a snapshot captures, assembled by an
/// executor at a round boundary.
pub(crate) struct EngineStateRef<'a, P: Program> {
    pub(crate) prev_round: Round,
    pub(crate) next_wake: &'a [Round],
    pub(crate) stay: &'a [u32],
    /// Pending wheel events, sorted by `(round, node)`.
    pub(crate) wheel_events: Vec<(Round, u32)>,
    pub(crate) outputs: &'a [Option<P::Output>],
    pub(crate) programs: ProgramsRef<'a, P>,
    pub(crate) metrics: &'a Metrics,
    pub(crate) tracer: &'a Tracer,
    pub(crate) faults: Option<&'a FaultState<P::Msg>>,
}

/// Everything [`decode_snapshot`] reconstructs (programs are restored in
/// place into the caller's freshly built vector).
pub(crate) struct RestoredState<M, O> {
    pub(crate) config: Config,
    pub(crate) prev_round: Round,
    pub(crate) next_wake: Vec<Round>,
    pub(crate) stay: Vec<u32>,
    pub(crate) wheel_events: Vec<(Round, u32)>,
    pub(crate) outputs: Vec<Option<O>>,
    pub(crate) metrics: Metrics,
    pub(crate) tracer: Tracer,
    pub(crate) faults: Option<FaultState<M>>,
}

/// FNV-1a over the graph's shape: node count, idents, and adjacency. A
/// resume on a graph with a different fingerprint is rejected.
fn graph_fingerprint(g: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn fnv(h: u64, x: u64) -> u64 {
        (h ^ x).wrapping_mul(PRIME)
    }
    let mut h = fnv(OFFSET, g.n() as u64);
    for v in 0..g.n() as u32 {
        h = fnv(h, g.ident(NodeId(v)));
        let nb = g.neighbors(NodeId(v));
        h = fnv(h, nb.len() as u64);
        for &w in nb {
            h = fnv(h, w.0 as u64 + 1);
        }
    }
    h
}

fn encode_trace_mode(mode: TraceMode, w: &mut Writer) {
    match mode {
        TraceMode::Off => w.bytes(&[0]),
        TraceMode::Capped(cap) => {
            w.bytes(&[1]);
            cap.encode(w);
        }
    }
}

fn decode_trace_mode(r: &mut Reader<'_>) -> Result<TraceMode, CheckpointError> {
    match r.take(1)?[0] {
        0 => Ok(TraceMode::Off),
        1 => Ok(TraceMode::Capped(usize::decode(r)?)),
        _ => Err(CheckpointError::Corrupt("trace mode tag")),
    }
}

impl Codec for TraceEvent {
    fn encode(&self, w: &mut Writer) {
        match self {
            TraceEvent::Awake { round, node } => {
                w.bytes(&[0]);
                round.encode(w);
                node.encode(w);
            }
            TraceEvent::Delivered { round, from, to } => {
                w.bytes(&[1]);
                round.encode(w);
                from.encode(w);
                to.encode(w);
            }
            TraceEvent::Lost { round, from, to } => {
                w.bytes(&[2]);
                round.encode(w);
                from.encode(w);
                to.encode(w);
            }
            TraceEvent::Sleep { round, node, until } => {
                w.bytes(&[3]);
                round.encode(w);
                node.encode(w);
                until.encode(w);
            }
            TraceEvent::Halt { round, node } => {
                w.bytes(&[4]);
                round.encode(w);
                node.encode(w);
            }
            TraceEvent::FaultDrop { round, from, to } => {
                w.bytes(&[5]);
                round.encode(w);
                from.encode(w);
                to.encode(w);
            }
            TraceEvent::FaultDelay {
                round,
                from,
                to,
                until,
            } => {
                w.bytes(&[6]);
                round.encode(w);
                from.encode(w);
                to.encode(w);
                until.encode(w);
            }
            TraceEvent::Crash { round, node } => {
                w.bytes(&[7]);
                round.encode(w);
                node.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(match r.take(1)?[0] {
            0 => TraceEvent::Awake {
                round: r.get()?,
                node: r.get()?,
            },
            1 => TraceEvent::Delivered {
                round: r.get()?,
                from: r.get()?,
                to: r.get()?,
            },
            2 => TraceEvent::Lost {
                round: r.get()?,
                from: r.get()?,
                to: r.get()?,
            },
            3 => TraceEvent::Sleep {
                round: r.get()?,
                node: r.get()?,
                until: r.get()?,
            },
            4 => TraceEvent::Halt {
                round: r.get()?,
                node: r.get()?,
            },
            5 => TraceEvent::FaultDrop {
                round: r.get()?,
                from: r.get()?,
                to: r.get()?,
            },
            6 => TraceEvent::FaultDelay {
                round: r.get()?,
                from: r.get()?,
                to: r.get()?,
                until: r.get()?,
            },
            7 => TraceEvent::Crash {
                round: r.get()?,
                node: r.get()?,
            },
            _ => return Err(CheckpointError::Corrupt("trace event tag")),
        })
    }
}

impl Codec for FaultPlan {
    fn encode(&self, w: &mut Writer) {
        self.seed.encode(w);
        self.drop_ppm.encode(w);
        self.dup_ppm.encode(w);
        self.delay_ppm.encode(w);
        self.crash_ppm.encode(w);
        self.delay_rounds.encode(w);
        self.burst_start.encode(w);
        self.burst_len.encode(w);
        self.quiet_after.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(FaultPlan {
            seed: r.get()?,
            drop_ppm: r.get()?,
            dup_ppm: r.get()?,
            delay_ppm: r.get()?,
            crash_ppm: r.get()?,
            delay_rounds: r.get()?,
            burst_start: r.get()?,
            burst_len: r.get()?,
            quiet_after: r.get()?,
        })
    }
}

impl<M: Codec> Codec for DelayedMsg<M> {
    fn encode(&self, w: &mut Writer) {
        self.due.encode(w);
        self.from.encode(w);
        self.to.encode(w);
        self.msg.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(DelayedMsg {
            due: r.get()?,
            from: r.get()?,
            to: r.get()?,
            msg: r.get()?,
        })
    }
}

/// Serialize a paused run. Both executors call this with identical logical
/// state at a round boundary, so serial and threaded snapshots of the same
/// run at the same round are byte-identical (asserted in tests).
pub(crate) fn encode_snapshot<P>(
    graph: &Graph,
    config: Config,
    st: EngineStateRef<'_, P>,
) -> Snapshot
where
    P: Program + Persist,
    P::Msg: Codec,
    P::Output: Codec,
{
    let n = graph.n();
    let mut w = Writer::new();
    w.bytes(&SNAPSHOT_MAGIC);
    SNAPSHOT_VERSION.encode(&mut w);
    st.prev_round.encode(&mut w);
    graph_fingerprint(graph).encode(&mut w);
    config.max_rounds.encode(&mut w);
    encode_trace_mode(config.trace, &mut w);
    n.encode(&mut w);
    st.next_wake.to_vec().encode(&mut w);
    st.stay.to_vec().encode(&mut w);
    st.wheel_events.encode(&mut w);
    st.outputs.len().encode(&mut w);
    for o in st.outputs {
        o.encode(&mut w);
    }
    for v in 0..n {
        st.programs.get(v).save(&mut w);
    }
    // metrics
    let m = st.metrics;
    m.awake.encode(&mut w);
    m.rounds.encode(&mut w);
    m.messages_sent.encode(&mut w);
    m.messages_delivered.encode(&mut w);
    m.messages_lost.encode(&mut w);
    m.faults_dropped.encode(&mut w);
    m.faults_duplicated.encode(&mut w);
    m.faults_delayed.encode(&mut w);
    m.faults_crashed.encode(&mut w);
    m.recovery_rounds.encode(&mut w);
    m.recovery_awake.encode(&mut w);
    m.awake_events.encode(&mut w);
    m.rounds_skipped.encode(&mut w);
    let (names, counts) = m.span_data();
    names.len().encode(&mut w);
    for name in names {
        name.to_string().encode(&mut w);
    }
    counts.to_vec().encode(&mut w);
    // tracer
    st.tracer.events.encode(&mut w);
    st.tracer.dropped.encode(&mut w);
    // faults
    match st.faults {
        None => w.bytes(&[0]),
        Some(f) => {
            w.bytes(&[1]);
            f.plan.encode(&mut w);
            f.delayed.encode(&mut w);
            f.recovering.encode(&mut w);
        }
    }
    Snapshot {
        round: st.prev_round,
        bytes: w.into_bytes(),
    }
}

/// Decode a snapshot against `graph`, restoring per-node program state
/// into `programs` (freshly constructed initial programs, one per node).
pub(crate) fn decode_snapshot<P>(
    graph: &Graph,
    snapshot: &Snapshot,
    programs: &mut [P],
) -> Result<RestoredState<P::Msg, P::Output>, CheckpointError>
where
    P: Program + Persist,
    P::Msg: Codec,
    P::Output: Codec,
{
    let n = graph.n();
    debug_assert_eq!(programs.len(), n, "callers check the program count");
    let mut r = Reader::new(&snapshot.bytes);
    if r.take(8)? != SNAPSHOT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::decode(&mut r)?;
    if version != SNAPSHOT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let prev_round = Round::decode(&mut r)?;
    if u64::decode(&mut r)? != graph_fingerprint(graph) {
        return Err(CheckpointError::GraphMismatch);
    }
    let max_rounds = Round::decode(&mut r)?;
    let trace = decode_trace_mode(&mut r)?;
    let config = Config { max_rounds, trace };
    if usize::decode(&mut r)? != n {
        return Err(CheckpointError::GraphMismatch);
    }
    let next_wake: Vec<Round> = r.get()?;
    if next_wake.len() != n {
        return Err(CheckpointError::Corrupt("next_wake length"));
    }
    let stay: Vec<u32> = r.get()?;
    if stay.windows(2).any(|w| w[0] >= w[1]) || stay.iter().any(|&v| v as usize >= n) {
        return Err(CheckpointError::Corrupt("stay lane"));
    }
    let wheel_events: Vec<(Round, u32)> = r.get()?;
    if wheel_events
        .iter()
        .any(|&(round, v)| round <= prev_round || v as usize >= n)
    {
        return Err(CheckpointError::Corrupt("wheel event"));
    }
    let outputs_len = usize::decode(&mut r)?;
    if outputs_len != n {
        return Err(CheckpointError::Corrupt("outputs length"));
    }
    let mut outputs: Vec<Option<P::Output>> = Vec::with_capacity(n);
    for _ in 0..n {
        outputs.push(r.get()?);
    }
    for p in programs.iter_mut() {
        p.restore(&mut r)?;
    }
    // metrics
    let mut metrics = Metrics::new(n);
    metrics.awake = r.get()?;
    if metrics.awake.len() != n {
        return Err(CheckpointError::Corrupt("awake length"));
    }
    metrics.rounds = r.get()?;
    metrics.messages_sent = r.get()?;
    metrics.messages_delivered = r.get()?;
    metrics.messages_lost = r.get()?;
    metrics.faults_dropped = r.get()?;
    metrics.faults_duplicated = r.get()?;
    metrics.faults_delayed = r.get()?;
    metrics.faults_crashed = r.get()?;
    metrics.recovery_rounds = r.get()?;
    metrics.recovery_awake = r.get()?;
    metrics.awake_events = r.get()?;
    metrics.rounds_skipped = r.get()?;
    let name_count = usize::decode(&mut r)?;
    if name_count > r.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let mut names: Vec<&'static str> = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        // Span labels are `&'static str` by design (a handful per run);
        // restored labels are leaked once per resume, and content-based
        // interning in `Metrics` keeps them equal to the originals.
        names.push(Box::leak(String::decode(&mut r)?.into_boxed_str()));
    }
    let counts: Vec<Vec<u64>> = r.get()?;
    if counts.len() != names.len() || counts.iter().any(|c| c.len() != n) {
        return Err(CheckpointError::Corrupt("span counts"));
    }
    metrics.restore_span_data(names, counts);
    // tracer
    let mut tracer = Tracer::new(trace);
    tracer.events = r.get()?;
    tracer.dropped = r.get()?;
    // faults
    let faults = match r.take(1)?[0] {
        0 => None,
        1 => {
            let plan: FaultPlan = r.get()?;
            let delayed: Vec<DelayedMsg<P::Msg>> = r.get()?;
            let recovering: Vec<bool> = r.get()?;
            if recovering.len() != n {
                return Err(CheckpointError::Corrupt("recovering length"));
            }
            let mut f = FaultState::new(plan);
            f.delayed = delayed;
            f.recovering = recovering;
            Some(f)
        }
        _ => return Err(CheckpointError::Corrupt("fault state tag")),
    };
    if r.remaining() != 0 {
        return Err(CheckpointError::TrailingBytes);
    }
    // Cross-validate halted/asleep bookkeeping so a corrupt snapshot can't
    // put the scheduler into an impossible state.
    for (v, &wake) in next_wake.iter().enumerate() {
        if wake == NEVER && outputs[v].is_none() {
            return Err(CheckpointError::Corrupt("halted node without output"));
        }
    }
    Ok(RestoredState {
        config,
        prev_round,
        next_wake,
        stay,
        wheel_events,
        outputs,
        metrics,
        tracer,
        faults,
    })
}

/// Rebuild a wake wheel holding exactly `events` (all strictly after the
/// restored round — validated during decode). Bucket layout is relative to
/// the wheel's running position, so the rebuilt wheel is not byte-identical
/// to the original — but pop order and peek results are, which is all the
/// executors observe.
pub(crate) fn rebuild_wheel(events: &[(Round, u32)]) -> WakeWheel {
    let mut wheel = WakeWheel::new();
    wheel.schedule_all(events.iter().copied());
    wheel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert_eq!(r.remaining(), 0, "decode must consume exactly");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(0xabcdu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX / 3);
        roundtrip(-42i64);
        roundtrip(usize::MAX / 2);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(String::from("héllo"));
        roundtrip(NodeId(7));
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip((1u8, 2u64));
        roundtrip((1u8, 2u64, NodeId(3)));
        roundtrip((1u8, 2u64, NodeId(3), true));
        roundtrip((1u8, 2u64, NodeId(3), true, String::from("x")));
        roundtrip(Arc::new(vec![(1u64, 2u16)]));
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert_eq!(
                Vec::<u64>::decode(&mut r).unwrap_err(),
                CheckpointError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        let mut w = Writer::new();
        (u64::MAX / 2).encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            Vec::<u64>::decode(&mut r).unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn corrupt_tags_are_typed_errors() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            bool::decode(&mut r).unwrap_err(),
            CheckpointError::Corrupt(_)
        ));
        let mut r = Reader::new(&[7, 0]);
        assert!(matches!(
            Option::<u8>::decode(&mut r).unwrap_err(),
            CheckpointError::Corrupt(_)
        ));
    }

    #[test]
    fn snapshot_header_is_validated_eagerly() {
        assert_eq!(
            Snapshot::from_bytes(b"NOTA".to_vec()).unwrap_err(),
            CheckpointError::Truncated,
            "shorter than the magic itself"
        );
        assert_eq!(
            Snapshot::from_bytes(b"NOTASNAP".to_vec()).unwrap_err(),
            CheckpointError::BadMagic,
            "full-length wrong magic loses to the magic check, not length"
        );
        let mut bad = SNAPSHOT_MAGIC.to_vec();
        bad.extend_from_slice(&99u32.to_le_bytes());
        bad.extend_from_slice(&5u64.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(bad).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        );
        let mut wrong_magic = b"XXXXXXXX".to_vec();
        wrong_magic.extend_from_slice(&[0; 12]);
        assert_eq!(
            Snapshot::from_bytes(wrong_magic).unwrap_err(),
            CheckpointError::BadMagic
        );
        let mut good = SNAPSHOT_MAGIC.to_vec();
        good.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        good.extend_from_slice(&17u64.to_le_bytes());
        assert_eq!(Snapshot::from_bytes(good).unwrap().round(), 17);
    }

    #[test]
    fn trace_event_roundtrips() {
        for ev in [
            TraceEvent::Awake {
                round: 1,
                node: NodeId(2),
            },
            TraceEvent::Delivered {
                round: 3,
                from: NodeId(0),
                to: NodeId(1),
            },
            TraceEvent::Lost {
                round: 4,
                from: NodeId(1),
                to: NodeId(0),
            },
            TraceEvent::Sleep {
                round: 5,
                node: NodeId(3),
                until: 9,
            },
            TraceEvent::Halt {
                round: 6,
                node: NodeId(4),
            },
            TraceEvent::FaultDrop {
                round: 7,
                from: NodeId(2),
                to: NodeId(3),
            },
            TraceEvent::FaultDelay {
                round: 8,
                from: NodeId(3),
                to: NodeId(4),
                until: 11,
            },
            TraceEvent::Crash {
                round: 9,
                node: NodeId(5),
            },
        ] {
            roundtrip(ev);
        }
    }

    #[test]
    fn fault_plan_and_delayed_roundtrip() {
        let mut plan = FaultPlan::new(77);
        plan.drop_ppm = 1;
        plan.dup_ppm = 2;
        plan.delay_ppm = 3;
        plan.crash_ppm = 4;
        plan.delay_rounds = 5;
        plan.burst_start = 6;
        plan.burst_len = 7;
        plan.quiet_after = 8;
        roundtrip(plan);
        roundtrip(DelayedMsg {
            due: 12,
            from: NodeId(1),
            to: NodeId(2),
            msg: 99u64,
        });
    }

    #[test]
    fn error_displays_are_informative() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::UnsupportedVersion(3)
            .to_string()
            .contains("version 3"));
        assert!(CheckpointError::GraphMismatch
            .to_string()
            .contains("different graph"));
        assert!(CheckpointError::TrailingBytes
            .to_string()
            .contains("trailing"));
        let re: ResumeError = CheckpointError::BadMagic.into();
        assert!(re.to_string().contains("magic"));
        let rs: ResumeError = SimError::MissingOutput(NodeId(0)).into();
        assert!(rs.to_string().contains("output"));
    }
}
