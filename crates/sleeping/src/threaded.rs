//! A multi-threaded executor built on crossbeam channels.
//!
//! The serial [`Engine`](crate::Engine) is the reference implementation;
//! this executor demonstrates that the [`Program`] abstraction maps directly
//! onto real message passing: each round, awake nodes are fanned out to a
//! worker pool over channels, workers run `send`/`receive` concurrently, and
//! the results are merged deterministically (sorted by node), so the two
//! executors agree **bit for bit** (this is asserted in the integration
//! tests).
//!
//! The design is a barrier-synchronized bulk-synchronous executor:
//!
//! ```text
//!   main thread                      workers (crossbeam channels)
//!   ───────────                      ────────────────────────────
//!   pop awake set for round r
//!   ship (program, view) ───────────▶ run send()
//!   collect outgoing     ◀─────────── (program, messages)
//!   route messages (lost vs delivered)
//!   ship (program, inbox) ──────────▶ run receive()
//!   collect actions      ◀─────────── (program, action)
//!   schedule wakes / halts
//! ```

use crate::metrics::Metrics;
use crate::program::{Action, Envelope, Outgoing, Program, View};
use crate::{Config, Round, Run, SimError};
use awake_graphs::{Graph, NodeId};
use crossbeam::channel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work shipped to a worker for one node-round.
struct Job<P: Program> {
    node: u32,
    round: Round,
    program: P,
    /// `None` for the send phase, `Some(inbox)` for the receive phase.
    inbox: Option<Vec<Envelope<P::Msg>>>,
}

/// Result returned by a worker.
struct Done<P: Program> {
    node: u32,
    program: P,
    outgoing: Vec<Outgoing<P::Msg>>,
    action: Option<Action>,
    span: &'static str,
}

/// Run `programs` on `graph` using `workers` threads.
///
/// Semantics are identical to [`Engine::run`](crate::Engine::run); programs
/// must be deterministic for the executors to agree.
///
/// # Errors
/// Same contract as the serial engine ([`SimError`]).
pub fn run_threaded<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Send,
{
    let n = graph.n();
    if programs.len() != n {
        return Err(SimError::ProgramCountMismatch {
            got: programs.len(),
            expected: n,
        });
    }
    let workers = workers.max(1);
    let mut metrics = Metrics::new(n);
    if n == 0 {
        return Ok(Run {
            outputs: vec![],
            metrics,
            trace: vec![],
        });
    }

    let mut slots: Vec<Option<P>> = programs.into_iter().map(Some).collect();
    let mut next_wake: Vec<Option<Round>> = Vec::with_capacity(n);
    let mut heap: BinaryHeap<Reverse<(Round, u32)>> = BinaryHeap::with_capacity(n);
    let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
    for v in 0..n {
        let p = slots[v].as_ref().expect("program present");
        match p.initial_wake() {
            Some(r) => {
                next_wake.push(Some(r));
                heap.push(Reverse((r, v as u32)));
            }
            None => {
                next_wake.push(None);
                match p.output() {
                    Some(o) => outputs[v] = Some(o),
                    None => return Err(SimError::MissingOutput(NodeId(v as u32))),
                }
            }
        }
    }

    let (job_tx, job_rx) = channel::unbounded::<Job<P>>();
    let (done_tx, done_rx) = channel::unbounded::<Done<P>>();

    let result: Result<(), SimError> = std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let graph_ref = &*graph;
            scope.spawn(move || {
                while let Ok(mut job) = job_rx.recv() {
                    let vid = NodeId(job.node);
                    let view = View {
                        round: job.round,
                        me: vid,
                        ident: graph_ref.ident(vid),
                        n: graph_ref.n(),
                        neighbors: graph_ref.neighbors(vid),
                    };
                    let done = match job.inbox.take() {
                        None => {
                            let span = job.program.span();
                            let outgoing = job.program.send(&view);
                            Done {
                                node: job.node,
                                program: job.program,
                                outgoing,
                                action: None,
                                span,
                            }
                        }
                        Some(mut inbox) => {
                            inbox.sort_by_key(|e| e.from);
                            let action = job.program.receive(&view, &inbox);
                            Done {
                                node: job.node,
                                program: job.program,
                                outgoing: vec![],
                                action: Some(action),
                                span: "",
                            }
                        }
                    };
                    if done_tx.send(done).is_err() {
                        break;
                    }
                }
            });
        }

        let mut awake: Vec<u32> = Vec::new();
        let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();

        while let Some(&Reverse((round, _))) = heap.peek() {
            if round > config.max_rounds {
                return Err(SimError::RoundBudgetExceeded {
                    limit: config.max_rounds,
                });
            }
            metrics.rounds = round;
            awake.clear();
            while let Some(&Reverse((r, v))) = heap.peek() {
                if r != round {
                    break;
                }
                heap.pop();
                awake.push(v);
            }
            awake.sort_unstable();

            // ---- send phase (parallel) ----
            for &v in &awake {
                let program = slots[v as usize].take().expect("program present");
                job_tx
                    .send(Job {
                        node: v,
                        round,
                        program,
                        inbox: None,
                    })
                    .expect("workers alive");
            }
            let mut sends: Vec<Done<P>> = (0..awake.len())
                .map(|_| done_rx.recv().expect("worker reply"))
                .collect();
            sends.sort_by_key(|d| d.node);
            for done in sends {
                let vid = NodeId(done.node);
                metrics.note_awake(vid, done.span);
                for out in &done.outgoing {
                    match out {
                        Outgoing::To(w, m) => {
                            if !graph.has_edge(vid, *w) {
                                return Err(SimError::NotANeighbor { from: vid, to: *w });
                            }
                            metrics.messages_sent += 1;
                            route(&mut inboxes, &next_wake, round, vid, *w, m.clone(), &mut metrics);
                        }
                        Outgoing::Broadcast(m) => {
                            for &w in graph.neighbors(vid) {
                                metrics.messages_sent += 1;
                                route(&mut inboxes, &next_wake, round, vid, w, m.clone(), &mut metrics);
                            }
                        }
                    }
                }
                slots[done.node as usize] = Some(done.program);
            }

            // ---- receive phase (parallel) ----
            for &v in &awake {
                let program = slots[v as usize].take().expect("program present");
                let inbox = std::mem::take(&mut inboxes[v as usize]);
                job_tx
                    .send(Job {
                        node: v,
                        round,
                        program,
                        inbox: Some(inbox),
                    })
                    .expect("workers alive");
            }
            let mut recvs: Vec<Done<P>> = (0..awake.len())
                .map(|_| done_rx.recv().expect("worker reply"))
                .collect();
            recvs.sort_by_key(|d| d.node);
            for done in recvs {
                let vid = NodeId(done.node);
                match done.action.expect("receive jobs carry actions") {
                    Action::Stay => {
                        next_wake[done.node as usize] = Some(round + 1);
                        heap.push(Reverse((round + 1, done.node)));
                        slots[done.node as usize] = Some(done.program);
                    }
                    Action::SleepUntil(until) => {
                        if until <= round {
                            return Err(SimError::InvalidSleep {
                                node: vid,
                                round,
                                until,
                            });
                        }
                        next_wake[done.node as usize] = Some(until);
                        heap.push(Reverse((until, done.node)));
                        slots[done.node as usize] = Some(done.program);
                    }
                    Action::Halt => {
                        next_wake[done.node as usize] = None;
                        match done.program.output() {
                            Some(o) => outputs[done.node as usize] = Some(o),
                            None => return Err(SimError::MissingOutput(vid)),
                        }
                        slots[done.node as usize] = Some(done.program);
                    }
                }
            }
        }
        drop(job_tx);
        Ok(())
    });
    result?;

    let outputs = outputs
        .into_iter()
        .enumerate()
        .map(|(v, o)| o.ok_or(SimError::MissingOutput(NodeId(v as u32))))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Run {
        outputs,
        metrics,
        trace: vec![],
    })
}

fn route<M>(
    inboxes: &mut [Vec<Envelope<M>>],
    next_wake: &[Option<Round>],
    round: Round,
    from: NodeId,
    to: NodeId,
    msg: M,
    metrics: &mut Metrics,
) {
    if next_wake[to.index()] == Some(round) {
        metrics.messages_delivered += 1;
        inboxes[to.index()].push(Envelope { from, msg });
    } else {
        metrics.messages_lost += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::generators;

    /// Flood the maximum ident seen so far for `n` rounds, then halt.
    #[derive(Clone)]
    struct FloodMax {
        best: u64,
        rounds: u64,
    }

    impl Program for FloodMax {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, _view: &View) -> Vec<Outgoing<u64>> {
            vec![Outgoing::Broadcast(self.best)]
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.best = self.best.max(view.ident);
            for e in inbox {
                self.best = self.best.max(e.msg);
            }
            if view.round >= self.rounds {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.best)
        }
    }

    #[test]
    fn threaded_matches_serial_flood() {
        let g = generators::random_tree(40, 9);
        let mk = || {
            (0..40)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 12,
                })
                .collect::<Vec<_>>()
        };
        let serial = crate::Engine::new(&g, Config::default()).run(mk()).unwrap();
        let threaded = run_threaded(&g, mk(), Config::default(), 4).unwrap();
        assert_eq!(serial.outputs, threaded.outputs);
        assert_eq!(serial.metrics.max_awake(), threaded.metrics.max_awake());
        assert_eq!(serial.metrics.rounds, threaded.metrics.rounds);
        assert_eq!(
            serial.metrics.messages_delivered,
            threaded.metrics.messages_delivered
        );
        // everyone learned the max ident (tree has diameter < 12)
        assert!(serial.outputs.iter().all(|&b| b == 40));
    }

    #[test]
    fn threaded_single_worker() {
        let g = generators::cycle(6);
        let progs = (0..6)
            .map(|_| FloodMax { best: 0, rounds: 3 })
            .collect::<Vec<_>>();
        let run = run_threaded(&g, progs, Config::default(), 1).unwrap();
        assert_eq!(run.metrics.rounds, 3);
    }

    #[test]
    fn threaded_detects_budget() {
        let g = generators::path(2);
        let progs = (0..2)
            .map(|_| FloodMax {
                best: 0,
                rounds: 100,
            })
            .collect::<Vec<_>>();
        let err = run_threaded(&g, progs, Config::with_max_rounds(5), 2).unwrap_err();
        assert_eq!(err, SimError::RoundBudgetExceeded { limit: 5 });
    }
}
