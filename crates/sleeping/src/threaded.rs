//! A multi-threaded executor with an owner-sharded parallel delivery
//! pipeline over a persistent worker pool.
//!
//! The serial [`Engine`](crate::Engine) is the reference implementation;
//! this executor demonstrates that the [`Program`] abstraction maps onto
//! real parallel hardware without giving up determinism: the two executors
//! agree **bit for bit** — equal outputs *and* equal [`Metrics`] — which
//! the integration tests assert at every worker count.
//!
//! # Design
//!
//! `workers` threads are spawned once per run and live across all rounds.
//! Each round the sorted awake set is split into at most `workers`
//! contiguous chunks at **equal degree-mass boundaries** (prefix sum over
//! `degree + 1` of the awake set), so a handful of hubs cannot serialize a
//! round the way count-based chunking would. Message routing and inbox
//! construction happen **inside the workers**; the coordinator is reduced
//! to synchronization and a deterministic merge:
//!
//! ```text
//!  coordinator                       executor e (coordinator or worker)
//!  ───────────                       ──────────────────────────────────
//!  pop awake set for round r
//!  partition by degree mass,
//!  publish {next_wake, chunk map},
//!  park chunk jobs in the slot
//!  arena, open SEND descriptors ──▶  claim a READY send descriptor c
//!                                    (CAS, scan offset by executor id):
//!                                    run send(), validate/expand, stage
//!                                    each message into exchange cell
//!                                    (c, owner); publish results, count
//!                                    down every chunk's pending gate —
//!                                    last contributor opens that
//!                                    chunk's RECEIVE descriptor
//!  consume send results in     ◀──   (claim-and-publish: no barrier)
//!  chunk order (helping via
//!  steal while waiting); merge
//!  tallies/spans/traces/errors       claim a READY receive descriptor d:
//!                                    drain cells (0..k, d) in source
//!  consume receive partials in ◀──   order into local segments (born
//!  chunk order, apply stays/         sorted), run receive() per node,
//!  sleeps/halts, schedule_all        publish action partials
//! ```
//!
//! There is no per-phase barrier: a chunk's receive descriptor opens the
//! moment the *last* send contribution for it lands (`pending` countdown),
//! while other chunks' sends are still running; idle executors steal
//! whatever descriptor is READY. The coordinator itself executes
//! descriptors while it waits, so `workers = 1` spawns no threads and
//! `workers = w` has `w` executors (`w - 1` spawned).
//!
//! Determinism survives stealing because of four invariants:
//!
//! * **Executor identity is unobservable.** Work units are *chunk*
//!   descriptors, not worker assignments: a chunk's batch, shards and
//!   result buffers are indexed by chunk, every phase body reads only the
//!   round context and its own chunk's state, and exchange cells are
//!   `(source chunk, owner chunk)`-addressed. Who executes a descriptor
//!   leaves no trace in any buffer.
//! * **Chunks are contiguous in node order** and senders within a chunk
//!   transmit in ascending order, so draining a recipient's incoming
//!   cells in source-chunk index order concatenates already-sorted runs
//!   — every inbox is born sorted by sender, exactly like the serial
//!   arena's.
//! * **All merges happen coordinator-side in chunk index order** (= node
//!   order): awake/span attribution, message tallies, stay-lane
//!   extension, batched wheel `schedule_all` and halt outputs — identical
//!   to the serial engine's per-node order, whatever order descriptors
//!   actually executed in.
//! * **Error precedence is by lowest node id**: an executor stops at its
//!   chunk's first error and raises a run-wide abort flag (sequenced
//!   before its pending countdown, so no receive descriptor can open on
//!   an aborting round); the coordinator consumes results in chunk order
//!   and surfaces the first error of the lowest-indexed chunk — the error
//!   the serial engine would hit.
//!
//! Batches, shard buffers and exchange cells recycle their capacity
//! (swaps only — payloads never move), executor-local segment pools are
//! retained across rounds: the steady state allocates nothing per
//! node-round. Rounds whose total degree mass is tiny (see `INLINE_MASS`)
//! run **inline** on the coordinator through the very same phase
//! functions — skip-ahead schedules spend most rounds waking a handful of
//! nodes, where descriptor traffic would dwarf the work; the inline path
//! is a single-chunk instance of the same pipeline, so results are
//! identical by construction.
//!
//! Tracing rides the same merge discipline: when [`Config::trace`] is on,
//! each descriptor stages its chunk's [`TraceEvent`]s in node order
//! (awake → per-message delivered/lost in the send phase; sleep/halt in
//! the receive phase) and the coordinator absorbs the staged buffers **in
//! chunk order** through the shared capped tracer — so [`Run::trace`]
//! (and [`Run::trace_dropped`]) is bit-identical to the serial engine's
//! at any worker count.
//!
//! A seeded chaos hook (test-only) perturbs scheduling at every claim
//! point — forced steals, yields, parks, unpark storms — and the
//! equivalence tests assert bit-for-bit agreement under those
//! interleavings too; see `ChaosPlan`.

use crate::arena::ChunkInboxes;
use crate::checkpoint::{
    decode_snapshot, encode_snapshot, rebuild_wheel, Codec, CrashIo, EngineStateRef, Paused,
    Persist, ProgramsRef, Reader, RestoredState, ResumeError, Snapshot, Writer,
};
use crate::engine::{next_awake_set, route_entries, seed_schedule, FaultCtx, NEVER};
use crate::faults::{DelayedMsg, FaultKind, FaultPlan};
use crate::metrics::{Metrics, PhaseTimes};
use crate::program::{Action, Envelope, OutEntry, Outbox, Program, View};
use crate::trace::{TraceEvent, Tracer};
use crate::wheel::WakeWheel;
use crate::{Config, Round, Run, SimError};
use awake_graphs::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// One delivered message in an outbound owner shard: the recipient's dense
/// position within its owner chunk, plus the envelope to deliver.
struct ShardEntry<M> {
    to_local: u32,
    env: Envelope<M>,
}

/// Read-mostly per-round context shared with the executors.
///
/// The coordinator write-locks it at round boundaries (when every
/// descriptor of the previous round is DONE and every executor is idle or
/// scanning) to publish the new wake stamps and chunk map; each send
/// descriptor read-locks it for the duration of its execution. The lock
/// is therefore never contended in steady state — it exists to let the
/// borrow checker accept the sharing.
struct RoundCtx {
    /// `next_wake[v] = r`: `v` wakes at round `r`; [`NEVER`]: halted.
    next_wake: Vec<Round>,
    /// Position of `v` in this round's awake set; only meaningful when
    /// `next_wake[v]` equals the current round (the stamp that guards it).
    awake_pos: Vec<u32>,
    /// Chunk boundaries as positions into the awake set: chunk `c` owns
    /// positions `bounds[c]..bounds[c+1]`. Strictly increasing,
    /// `bounds[0] = 0`, last entry = awake length.
    bounds: Vec<u32>,
    /// Owner chunk per awake position — one O(1) lookup on the message
    /// staging hot path instead of a `partition_point` binary search per
    /// delivered message. Filled in the same pass that stamps
    /// [`awake_pos`](Self::awake_pos).
    chunk: Vec<u32>,
}

impl RoundCtx {
    /// The owner chunk of awake position `pos`.
    #[inline]
    fn chunk_of(&self, pos: u32) -> usize {
        self.chunk[pos as usize] as usize
    }
}

/// Rounds whose total degree mass is at or below this run inline on the
/// coordinator (a single chunk through the same phase functions) instead
/// of being dispatched: sequential-greedy schedules wake a handful of
/// nodes per round for most rounds, and two channel round-trips per worker
/// dwarf a few hundred nanoseconds of node work.
const INLINE_MASS: u64 = 256;

/// Fill `prefix` with the cumulative **degree mass** (`degree + 1` per
/// node, so isolated nodes still weigh in) of the awake set; returns the
/// total. Caller scratch, capacity reused across rounds.
fn degree_mass_prefix(graph: &Graph, awake: &[u32], prefix: &mut Vec<u64>) -> u64 {
    prefix.clear();
    let mut acc = 0u64;
    for &v in awake {
        acc += graph.degree(NodeId(v)) as u64 + 1;
        prefix.push(acc);
    }
    acc
}

/// Split the awake set into `k` non-empty contiguous chunks of roughly
/// equal degree mass, given its mass prefix sum. Boundary `j` lands at the
/// prefix position where cumulative mass crosses `j/k` of the total,
/// clamped so every chunk keeps at least one node — a single hub holding
/// most of the degree mass gets a chunk of its own instead of dragging
/// half the round's work into one worker.
///
/// Requires `1 <= k <= prefix.len()`.
fn partition_by_mass(prefix: &[u64], k: usize, bounds: &mut Vec<u32>) {
    debug_assert!(k >= 1 && k <= prefix.len());
    let total = *prefix.last().expect("non-empty awake set");
    bounds.clear();
    bounds.push(0);
    for j in 1..k {
        let target = total * j as u64 / k as u64;
        let cut = prefix.partition_point(|&p| p <= target);
        let lo = bounds[j - 1] as usize + 1;
        let hi = prefix.len() - (k - j);
        bounds.push(cut.clamp(lo, hi) as u32);
    }
    bounds.push(prefix.len() as u32);
}

/// The fault hooks a worker needs per round: the (immutable) seeded plan
/// plus the [`Persist`] entry points of the concrete program type as
/// function pointers (see [`CrashIo`]), so the phase bodies carry no
/// `Persist` bound. Copied into each batch; the mutable fault state (the
/// delayed-message buffer) stays with the coordinator.
struct FaultHooks<P: Program> {
    plan: FaultPlan,
    crash_io: CrashIo<P>,
}

impl<P: Program> Clone for FaultHooks<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: Program> Copy for FaultHooks<P> {}

/// What one chunk's send descriptor hands back to the coordinator: span
/// attribution, message tallies, staged trace events, delayed messages,
/// and the chunk's first error. Published through the slot's `results`
/// mutex the instant the descriptor completes (separately from the parked
/// batch, so the coordinator can merge in chunk order while the batch
/// buffers wait for the receive descriptor), and drained coordinator-side
/// — the buffers recycle their capacity across rounds.
struct SendResults<P: Program> {
    /// Per-job `(node, span)`, captured before `send` exactly as the
    /// serial engine attributes it, in the chunk's node order.
    node_spans: Vec<(u32, &'static str)>,
    /// Message tallies of this chunk.
    sent: u64,
    delivered: u64,
    lost: u64,
    /// Injected-fault tallies of this chunk.
    fdropped: u64,
    fduplicated: u64,
    fdelayed: u64,
    /// Messages fated to arrive in a later round, in the chunk's
    /// transmission order; the coordinator appends them (chunk order =
    /// node order) to the run's delayed buffer.
    delayed_out: Vec<DelayedMsg<P::Msg>>,
    /// Events staged by the send phase, in the serial engine's per-node
    /// order; absorbed by the coordinator in chunk order.
    trace: Vec<TraceEvent>,
    /// First error of this chunk, in node order (execution stops there).
    error: Option<SimError>,
}

impl<P: Program> SendResults<P> {
    fn new() -> Self {
        SendResults {
            node_spans: Vec::new(),
            sent: 0,
            delivered: 0,
            lost: 0,
            fdropped: 0,
            fduplicated: 0,
            fdelayed: 0,
            delayed_out: Vec::new(),
            trace: Vec::new(),
            error: None,
        }
    }
}

/// One chunk's reusable unit of work: a contiguous chunk of the awake set
/// plus the buffers that carry its phase results back to the coordinator.
/// Parked in its chunk's [`ChunkSlot`] between executions; whichever
/// executor claims the descriptor takes the batch, runs the phase, and
/// parks it back — batches are chunk-addressed, never worker-addressed.
struct Batch<P: Program> {
    round: Round,
    /// The chunk's `(node, program)` pairs, ascending by node.
    jobs: Vec<(u32, P)>,
    /// Recycled backing buffer of the executor-side outbox.
    out_items: Vec<OutEntry<P::Msg>>,
    /// Send-phase results, published through the slot on completion.
    res: SendResults<P>,
    /// Send phase: outbound messages sharded by the recipient's owner
    /// chunk. On completion each shard is swapped into the exchange cell
    /// `(this chunk, owner chunk)`, taking back the (drained) buffer the
    /// cell held — capacity circulates between batches and cells.
    shards: Vec<Vec<ShardEntry<P::Msg>>>,
    /// Fault plan + crash I/O of the run; `None` for fault-free runs.
    faults: Option<FaultHooks<P>>,
    /// Receive result: crash-restarts applied in this chunk.
    fcrashed: u64,
    /// `(node, start-of-round state)` of this chunk's nodes that crash
    /// this round, ascending by node. Written by the send phase (the blob
    /// is saved *before* the node acts), consumed by the receive phase.
    crashes: Vec<(u32, Vec<u8>)>,
    /// Receive result: nodes of this chunk that crash-restarted this
    /// round, ascending. [`Batch::stays`] conflates crashed nodes with
    /// voluntary stays, so the coordinator's recovery accounting needs the
    /// crashed set separately.
    crashed_nodes: Vec<u32>,
    /// Fault-delayed messages coming due this round for recipients in this
    /// chunk, staged by the coordinator between the phases (the batch is
    /// parked then — faulty rounds gate receives on the coordinator); the
    /// receive phase delivers them after the regular shards and restores
    /// each touched inbox's sorted-by-sender invariant.
    late: Vec<ShardEntry<P::Msg>>,
    /// Scratch: chunk positions touched by late deliveries.
    late_locals: Vec<u32>,
    /// Receive result: nodes that chose [`Action::Stay`] — plus crashed
    /// nodes, which restart awake next round — ascending.
    stays: Vec<u32>,
    /// Receive result: `(wake round, node)` sleeps, ascending by node.
    sleeps: Vec<(Round, u32)>,
    /// Receive result: halted nodes with their outputs, ascending.
    halts: Vec<(u32, P::Output)>,
    /// Receive phase: first error of this chunk, in node order.
    error: Option<SimError>,
    /// Whether to stage trace events (set from the run's [`Config::trace`]).
    trace_on: bool,
    /// Receive-phase events staged by this chunk, in the serial engine's
    /// per-node order; absorbed by the coordinator in chunk order.
    trace: Vec<TraceEvent>,
}

impl<P: Program> Batch<P> {
    fn new() -> Self {
        Batch {
            round: 0,
            jobs: Vec::new(),
            out_items: Vec::new(),
            res: SendResults::new(),
            shards: Vec::new(),
            faults: None,
            fcrashed: 0,
            crashes: Vec::new(),
            crashed_nodes: Vec::new(),
            late: Vec::new(),
            late_locals: Vec::new(),
            stays: Vec::new(),
            sleeps: Vec::new(),
            halts: Vec::new(),
            error: None,
            trace_on: false,
            trace: Vec::new(),
        }
    }
}

// ---- the injector: chunk descriptors over a preallocated slot arena ----
//
// Descriptor life cycle (all transitions SeqCst):
//
//   send:  DONE ──coordinator──▶ READY ──CAS claim──▶ RUNNING ──▶ DONE
//   recv:  DONE ──coordinator──▶ VACANT ──gate──▶ READY ──CAS──▶ RUNNING ──▶ DONE
//
// The atomics carry the claim protocol; the `Mutex`es under them only
// transfer buffer ownership (a claimed descriptor's batch mutex is always
// uncontended — the CAS serialized access first). This keeps the whole
// executor inside `#![forbid(unsafe_code)]`.

/// Descriptor states. `VACANT` is only meaningful for receive
/// descriptors: reset at round publish, it keeps stale scanners from
/// claiming a receive whose send contributions haven't all landed.
const VACANT: usize = 0;
const READY: usize = 1;
const RUNNING: usize = 2;
const DONE: usize = 3;

/// One chunk's slot in the descriptor arena.
struct ChunkSlot<P: Program> {
    /// Send descriptor state.
    send_state: AtomicUsize,
    /// Receive descriptor state.
    recv_state: AtomicUsize,
    /// Send contributions this chunk's receive still waits for. Reset to
    /// `k` at round publish; every completed send execution decrements
    /// every chunk's gate (after publishing its shards), and the
    /// decrement that hits zero opens the receive descriptor — unless the
    /// round is faulty (coordinator gates receives to stage late
    /// deliveries first) or aborting.
    pending: AtomicUsize,
    /// The chunk's parked batch; `None` exactly while an executor runs a
    /// claimed descriptor for this chunk.
    batch: Mutex<Option<Batch<P>>>,
    /// The chunk's published send results, swapped in on send completion
    /// and drained by the coordinator in chunk order.
    results: Mutex<SendResults<P>>,
}

impl<P: Program> ChunkSlot<P> {
    fn new() -> Self {
        ChunkSlot {
            send_state: AtomicUsize::new(DONE),
            recv_state: AtomicUsize::new(DONE),
            pending: AtomicUsize::new(0),
            batch: Mutex::new(Some(Batch::new())),
            results: Mutex::new(SendResults::new()),
        }
    }
}

/// Test-only scheduler perturbation: a seeded plan that injects forced
/// steals (skipping a claimable descriptor), yields, short parks and
/// unpark storms at every claim point and publication edge. Rolls are a
/// pure function of `(seed, executor id, per-executor counter)` —
/// deterministic per executor, chaotic in interleaving — and never touch
/// any buffer, so the bit-for-bit equivalence tests assert that *no*
/// interleaving the protocol admits changes an observable result.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChaosPlan {
    pub(crate) seed: u64,
}

enum ChaosOp {
    Pass,
    /// Skip a claimable descriptor this scan — forces another executor
    /// (or a later scan) to steal it.
    Steal,
    Yield,
    /// Park for the given number of microseconds (consumes a pending
    /// unpark token, exercising the lost-wakeup paths).
    Nap(u64),
    /// Unpark every executor out of turn.
    Storm,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosPlan {
    fn roll(&self, who: usize, ctr: u64) -> ChaosOp {
        let r = splitmix64(self.seed ^ ((who as u64) << 48) ^ ctr);
        match r & 0xf {
            0..=2 => ChaosOp::Steal,
            3..=4 => ChaosOp::Yield,
            5 => ChaosOp::Nap(1 + ((r >> 8) & 0x1f)),
            6 => ChaosOp::Storm,
            _ => ChaosOp::Pass,
        }
    }
}

/// Per-executor state: its scan offset (so executors start their claim
/// scans at different descriptors), its local inbox segment pool
/// (capacity retained across rounds and whichever chunks it happens to
/// execute), and its chaos counter.
struct ExecCtx<M> {
    who: usize,
    inboxes: ChunkInboxes<M>,
    chaos_ctr: u64,
}

impl<M> ExecCtx<M> {
    fn new(who: usize) -> Self {
        ExecCtx {
            who,
            inboxes: ChunkInboxes::new(),
            chaos_ctr: 0,
        }
    }
}

/// The shared injector: the round context, the descriptor slot arena, the
/// k×k exchange cells, and the park/unpark registry. One per run, borrowed
/// by every executor for the duration of the scope.
struct StealPool<'g, P: Program> {
    graph: &'g Graph,
    ctx: RwLock<RoundCtx>,
    /// Chunk descriptor slots, `kmax` of them (chunk count never exceeds
    /// the executor count).
    slots: Vec<ChunkSlot<P>>,
    /// Exchange cells, `(source chunk, owner chunk)`-addressed at
    /// `src * kmax + dst`: send descriptor `src` swaps its outbound shard
    /// for chunk `dst` into cell `(src, dst)`; receive descriptor `dst`
    /// drains cells `(0..k, dst)` in source order.
    cells: Vec<Mutex<Vec<ShardEntry<P::Msg>>>>,
    kmax: usize,
    /// Chunk count of the round in flight (0 while idle/inline). A claim
    /// of a READY descriptor re-reads this *after* the CAS: the READY
    /// store is sequenced after the round's `k` store, so the claimer
    /// always executes with the current round's chunk count even if its
    /// scan used a stale one.
    k: AtomicUsize,
    /// Fault-free runs auto-open a chunk's receive descriptor when its
    /// pending gate hits zero; faulty runs let the coordinator stage late
    /// deliveries into the parked batches first and open all receives
    /// itself.
    auto_receive: bool,
    /// Raised (before any pending decrement) by a send descriptor that
    /// hit an error: no receive descriptor opens on an aborting round.
    abort: AtomicBool,
    shutdown: AtomicBool,
    /// Every executor's thread handle, for unpark storms. Executors
    /// register before their first scan, so a registered executor never
    /// misses a wakeup: state stores happen before `unpark_all`, and a
    /// scan-then-park races at worst into a pending unpark token.
    registry: Mutex<Vec<Thread>>,
    chaos: Option<ChaosPlan>,
}

impl<P: Program> StealPool<'_, P> {
    #[inline]
    fn cell(&self, src: usize, dst: usize) -> &Mutex<Vec<ShardEntry<P::Msg>>> {
        &self.cells[src * self.kmax + dst]
    }

    fn register(&self) {
        self.registry
            .lock()
            .expect("registry lock")
            .push(thread::current());
    }

    fn unpark_all(&self) {
        for t in self.registry.lock().expect("registry lock").iter() {
            t.unpark();
        }
    }
}

/// Roll the chaos plan (if any) at a scheduling edge. Returns `true` when
/// the roll demands skipping a claimable descriptor (a forced steal);
/// side-effect ops (yield/nap/storm) happen here and return `false`.
#[inline]
fn chaos_pulse<P: Program>(pool: &StealPool<'_, P>, ex: &mut ExecCtx<P::Msg>) -> bool {
    let Some(plan) = pool.chaos else { return false };
    ex.chaos_ctr += 1;
    match plan.roll(ex.who, ex.chaos_ctr) {
        ChaosOp::Pass => false,
        ChaosOp::Steal => true,
        ChaosOp::Yield => {
            thread::yield_now();
            false
        }
        ChaosOp::Nap(us) => {
            thread::park_timeout(Duration::from_micros(us));
            false
        }
        ChaosOp::Storm => {
            pool.unpark_all();
            false
        }
    }
}

/// Execute a claimed send descriptor: take the parked batch, run the send
/// phase against the published round context, publish shards into the
/// exchange cells and results into the slot, then count down every
/// chunk's pending gate — opening any receive descriptor whose last
/// contribution this was (fault-free, non-aborting rounds only).
fn execute_send<P: Program>(pool: &StealPool<'_, P>, c: usize, k: usize, ex: &mut ExecCtx<P::Msg>) {
    let slot = &pool.slots[c];
    let mut b = slot
        .batch
        .lock()
        .expect("batch slot lock")
        .take()
        .expect("claimed send descriptor has a parked batch");
    {
        let ctx = pool.ctx.read().expect("round context lock");
        run_send_phase(pool.graph, &ctx, &mut b);
    }
    if b.res.error.is_some() {
        // Raised before the pending decrements below: SeqCst makes the
        // store visible to whichever executor decrements a gate to zero,
        // so no receive descriptor ever opens on an aborting round.
        pool.abort.store(true, Ordering::SeqCst);
    }
    chaos_pulse(pool, ex);
    // Publish outbound shards: swap each filled buffer into its exchange
    // cell, taking back the buffer the previous round's receive drained —
    // capacity circulates between batches and cells, nothing reallocates.
    for dst in 0..k {
        let mut cell = pool.cell(c, dst).lock().expect("exchange cell lock");
        std::mem::swap(&mut *cell, &mut b.shards[dst]);
    }
    {
        let mut r = slot.results.lock().expect("send results lock");
        std::mem::swap(&mut *r, &mut b.res);
    }
    *slot.batch.lock().expect("batch slot lock") = Some(b);
    slot.send_state.store(DONE, Ordering::SeqCst);
    // Contribution countdown — only after this chunk's shards and results
    // are fully published, so an opened receive sees every cell filled.
    for dst in 0..k {
        if pool.slots[dst].pending.fetch_sub(1, Ordering::SeqCst) == 1
            && pool.auto_receive
            && !pool.abort.load(Ordering::SeqCst)
        {
            pool.slots[dst].recv_state.store(READY, Ordering::SeqCst);
        }
    }
    pool.unpark_all();
}

/// Execute a claimed receive descriptor: drain the chunk's exchange cells
/// in source-chunk order into the executor-local segment pool (born
/// sorted by sender), run the receive phase, and park the batch back with
/// its action partials for the coordinator to apply in chunk order.
fn execute_receive<P: Program>(
    pool: &StealPool<'_, P>,
    c: usize,
    k: usize,
    ex: &mut ExecCtx<P::Msg>,
) {
    let slot = &pool.slots[c];
    let mut b = slot
        .batch
        .lock()
        .expect("batch slot lock")
        .take()
        .expect("claimed receive descriptor has a parked batch");
    ex.inboxes.ensure(b.jobs.len());
    chaos_pulse(pool, ex);
    for src in 0..k {
        let mut cell = pool.cell(src, c).lock().expect("exchange cell lock");
        ex.inboxes
            .extend_from(cell.drain(..).map(|e| (e.to_local, e.env)));
    }
    run_receive_phase(pool.graph, &mut b, &mut ex.inboxes);
    *slot.batch.lock().expect("batch slot lock") = Some(b);
    slot.recv_state.store(DONE, Ordering::SeqCst);
    pool.unpark_all();
}

/// One claim scan over the descriptor arena, starting at this executor's
/// offset: claim (CAS READY → RUNNING) and execute the first claimable
/// send, then receive, descriptor. Returns whether anything was executed.
fn try_execute<P: Program>(pool: &StealPool<'_, P>, ex: &mut ExecCtx<P::Msg>) -> bool {
    let k = pool.k.load(Ordering::SeqCst);
    if k == 0 {
        return false;
    }
    for i in 0..k {
        let c = (ex.who + i) % k;
        let slot = &pool.slots[c];
        if slot.send_state.load(Ordering::SeqCst) == READY {
            if chaos_pulse(pool, ex) {
                continue; // forced steal: leave it for someone else
            }
            if slot
                .send_state
                .compare_exchange(READY, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // Re-read k after the claim: the READY we claimed was
                // published after the round's k store, so this load sees
                // the in-flight round's chunk count (the scan's k may be
                // stale).
                let kr = pool.k.load(Ordering::SeqCst);
                execute_send(pool, c, kr, ex);
                return true;
            }
        }
    }
    for i in 0..k {
        let c = (ex.who + i) % k;
        let slot = &pool.slots[c];
        if slot.recv_state.load(Ordering::SeqCst) == READY {
            if chaos_pulse(pool, ex) {
                continue;
            }
            if slot
                .recv_state
                .compare_exchange(READY, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                let kr = pool.k.load(Ordering::SeqCst);
                execute_receive(pool, c, kr, ex);
                return true;
            }
        }
    }
    false
}

/// How long the coordinator parks between help attempts while waiting on
/// a descriptor (workers park unbounded — every publication edge ends in
/// `unpark_all`, and the coordinator's timeout backstops lost tokens).
const COORD_NAP: Duration = Duration::from_micros(200);

/// Coordinator-side wait for a descriptor to reach DONE, stealing
/// whatever other descriptors are READY in the meantime.
fn wait_done<P: Program>(pool: &StealPool<'_, P>, ex: &mut ExecCtx<P::Msg>, c: usize, recv: bool) {
    loop {
        let state = if recv {
            &pool.slots[c].recv_state
        } else {
            &pool.slots[c].send_state
        };
        if state.load(Ordering::SeqCst) == DONE {
            return;
        }
        if try_execute(pool, ex) {
            continue;
        }
        thread::park_timeout(COORD_NAP);
    }
}

/// Stage one fated-to-arrive message: deliver into the outbound shard of
/// the recipient's owner chunk if the recipient is awake exactly now,
/// otherwise count it lost — the model's rule, shared by the regular and
/// duplicate delivery paths of the send phase.
#[allow(clippy::too_many_arguments)]
#[inline]
fn stage_delivery<M>(
    ctx: &RoundCtx,
    round: Round,
    from: NodeId,
    to: NodeId,
    msg: M,
    shards: &mut [Vec<ShardEntry<M>>],
    delivered: &mut u64,
    lost: &mut u64,
    trace_on: bool,
    trace: &mut Vec<TraceEvent>,
) {
    if ctx.next_wake[to.index()] == round {
        *delivered += 1;
        if trace_on {
            trace.push(TraceEvent::Delivered { round, from, to });
        }
        let pos = ctx.awake_pos[to.index()];
        let c = ctx.chunk_of(pos);
        shards[c].push(ShardEntry {
            to_local: pos - ctx.bounds[c],
            env: Envelope { from, msg },
        });
    } else {
        *lost += 1;
        if trace_on {
            trace.push(TraceEvent::Lost { round, from, to });
        }
    }
}

/// The send-phase body: run each job's `send`, validate and expand its
/// entries through the shared checker, and stage every delivered message
/// into the outbound shard of the recipient's owner chunk. Fills the
/// batch's span/tally/error partials. Called by the workers and — for
/// rounds too small to be worth dispatching — inline by the coordinator,
/// so both paths are the same code by construction.
fn run_send_phase<P: Program>(graph: &Graph, ctx: &RoundCtx, b: &mut Batch<P>) {
    // Monomorphized on fault presence, like the serial `step`: with
    // `FAULTY = false` the fate-roll closure below is dead code and the
    // fault-free send loop optimizes as if fault injection didn't exist.
    if b.faults.is_some() {
        run_send_phase_body::<P, true>(graph, ctx, b);
    } else {
        run_send_phase_body::<P, false>(graph, ctx, b);
    }
}

fn run_send_phase_body<P: Program, const FAULTY: bool>(
    graph: &Graph,
    ctx: &RoundCtx,
    b: &mut Batch<P>,
) {
    let n = graph.n();
    let round = b.round;
    let k = ctx.bounds.len() - 1;
    let Batch {
        jobs,
        out_items,
        res,
        shards,
        faults,
        crashes,
        trace_on,
        ..
    } = b;
    let SendResults {
        node_spans,
        sent,
        delivered,
        lost,
        fdropped,
        fduplicated,
        fdelayed,
        delayed_out,
        trace,
        error,
    } = res;
    if shards.len() < k {
        shards.resize_with(k, Vec::new);
    }
    node_spans.clear();
    trace.clear();
    let trace_on = *trace_on;
    (*sent, *delivered, *lost) = (0, 0, 0);
    (*fdropped, *fduplicated, *fdelayed) = (0, 0, 0);
    delayed_out.clear();
    crashes.clear();
    *error = None;
    let hooks = *faults;
    let mut outbox = Outbox::from_vec(std::mem::take(out_items));
    for (v, p) in jobs.iter_mut() {
        let vid = NodeId(*v);
        let view = View {
            round,
            me: vid,
            ident: graph.ident(vid),
            n,
            neighbors: graph.neighbors(vid),
        };
        node_spans.push((*v, p.span()));
        if trace_on {
            trace.push(TraceEvent::Awake { round, node: vid });
        }
        if FAULTY {
            if let Some(fh) = hooks {
                if fh.plan.crashes(round, *v) {
                    // Save the start-of-round state *before* the node
                    // acts: a crashed node loses this round's state
                    // changes but its sends still go out (they left
                    // before the crash).
                    let mut w = Writer::new();
                    (fh.crash_io.save)(p, &mut w);
                    crashes.push((*v, w.into_bytes()));
                }
            }
        }
        outbox.clear();
        p.send(&view, &mut outbox);
        let res = if !FAULTY {
            // A recipient is listening iff awake exactly now; if so, its
            // awake position stamp is valid and names its owner chunk.
            route_entries(graph, outbox.items.drain(..), vid, sent, |to, msg| {
                stage_delivery(
                    ctx, round, vid, to, msg, shards, delivered, lost, trace_on, trace,
                );
            })
        } else {
            {
                let fh = hooks.expect("FAULTY send phase implies hooks");
                // One fate roll per transmission, counted per sender per
                // round — the same sequence the serial engine rolls.
                let mut k = 0u32;
                route_entries(graph, outbox.items.drain(..), vid, sent, |to, msg| {
                    let fate = fh.plan.message_fate(round, vid.0, to.0, k);
                    k += 1;
                    match fate {
                        FaultKind::Deliver => stage_delivery(
                            ctx, round, vid, to, msg, shards, delivered, lost, trace_on, trace,
                        ),
                        FaultKind::Duplicate => {
                            *fduplicated += 1;
                            stage_delivery(
                                ctx,
                                round,
                                vid,
                                to,
                                msg.clone(),
                                shards,
                                delivered,
                                lost,
                                trace_on,
                                trace,
                            );
                            stage_delivery(
                                ctx, round, vid, to, msg, shards, delivered, lost, trace_on, trace,
                            );
                        }
                        FaultKind::Drop => {
                            *fdropped += 1;
                            if trace_on {
                                trace.push(TraceEvent::FaultDrop {
                                    round,
                                    from: vid,
                                    to,
                                });
                            }
                        }
                        FaultKind::Delay => {
                            *fdelayed += 1;
                            let until = round + fh.plan.delay_rounds;
                            if trace_on {
                                trace.push(TraceEvent::FaultDelay {
                                    round,
                                    from: vid,
                                    to,
                                    until,
                                });
                            }
                            delayed_out.push(DelayedMsg {
                                due: until,
                                from: vid,
                                to,
                                msg,
                            });
                        }
                    }
                })
            }
        };
        if let Err(e) = res {
            *error = Some(e);
            break;
        }
    }
    b.out_items = outbox.into_vec();
}

/// The receive-phase body: run each job's `receive` over the segments the
/// caller drained into `inboxes` (a receive descriptor drains its
/// exchange cells in source-chunk order; the inline path drains the
/// single batch's own shards) and collect each action into the
/// stay/sleep/halt partials. Shared by the descriptor executors and the
/// coordinator's inline path, like [`run_send_phase`].
fn run_receive_phase<P: Program>(
    graph: &Graph,
    b: &mut Batch<P>,
    inboxes: &mut ChunkInboxes<P::Msg>,
) {
    // Same monomorphization as the send phase: fault-free runs never pay
    // for the crash-restart or late-delivery checks below.
    if b.faults.is_some() {
        run_receive_phase_body::<P, true>(graph, b, inboxes);
    } else {
        run_receive_phase_body::<P, false>(graph, b, inboxes);
    }
}

fn run_receive_phase_body<P: Program, const FAULTY: bool>(
    graph: &Graph,
    b: &mut Batch<P>,
    inboxes: &mut ChunkInboxes<P::Msg>,
) {
    let n = graph.n();
    let round = b.round;
    let Batch {
        jobs,
        faults,
        fcrashed,
        crashes,
        crashed_nodes,
        late,
        late_locals,
        stays,
        sleeps,
        halts,
        error,
        trace_on,
        trace,
        ..
    } = b;
    let trace_on = *trace_on;
    trace.clear();
    *fcrashed = 0;
    crashed_nodes.clear();
    // The caller has already drained this chunk's deliveries into
    // `inboxes` in source-chunk order (senders ascend within a chunk and
    // chunks are contiguous in node order, so each segment is a
    // concatenation of sorted runs — born sorted, same invariant as the
    // serial arena). `ensure` here is an idempotent backstop for chunks
    // that received nothing but still have late deliveries or jobs.
    inboxes.ensure(jobs.len());
    // Fault-delayed messages coming due land after the ascending-sender
    // pass; deliver them, then restore each touched segment's
    // sorted-by-sender invariant (stable, so same-sender envelopes keep
    // their staging order — identical to the serial arena's resort).
    if FAULTY && !late.is_empty() {
        late_locals.clear();
        for e in late.drain(..) {
            late_locals.push(e.to_local);
            inboxes.push(e.to_local, e.env);
        }
        late_locals.sort_unstable();
        late_locals.dedup();
        for &l in late_locals.iter() {
            inboxes.resort(l as usize);
        }
        late_locals.clear();
    }
    stays.clear();
    sleeps.clear();
    halts.clear();
    *error = None;
    let mut crash_i = 0usize;
    for (i, (v, p)) in jobs.iter_mut().enumerate() {
        let vid = NodeId(*v);
        // A crashed node loses the round — inbox discarded, state rolled
        // back to start-of-round — and restarts awake next round.
        if FAULTY && crashes.get(crash_i).is_some_and(|c| c.0 == *v) {
            let blob = &crashes[crash_i].1;
            crash_i += 1;
            inboxes.clear(i);
            let mut r = Reader::new(blob);
            let io = faults.as_ref().expect("crash blobs imply fault hooks");
            (io.crash_io.restore)(p, &mut r)
                .expect("Persist round-trip: restore must accept its own save");
            if trace_on {
                trace.push(TraceEvent::Crash { round, node: vid });
            }
            *fcrashed += 1;
            crashed_nodes.push(*v);
            stays.push(*v);
            continue;
        }
        let view = View {
            round,
            me: vid,
            ident: graph.ident(vid),
            n,
            neighbors: graph.neighbors(vid),
        };
        let action = p.receive(&view, inboxes.inbox(i));
        // Clear while the segment header is hot (see `arena`).
        inboxes.clear(i);
        match action {
            Action::Stay => stays.push(*v),
            Action::SleepUntil(until) => {
                if until <= round {
                    *error = Some(SimError::InvalidSleep {
                        node: vid,
                        round,
                        until,
                    });
                    break;
                }
                if trace_on {
                    trace.push(TraceEvent::Sleep {
                        round,
                        node: vid,
                        until,
                    });
                }
                sleeps.push((until, *v));
            }
            Action::Halt => {
                if trace_on {
                    trace.push(TraceEvent::Halt { round, node: vid });
                }
                match p.output() {
                    Some(o) => halts.push((*v, o)),
                    None => {
                        *error = Some(SimError::MissingOutput(vid));
                        break;
                    }
                }
            }
        }
    }
    crashes.clear();
}

/// Merge one chunk's published send results into the run metrics:
/// awake/span attribution per node in chunk order (= node order,
/// preserving the serial engine's span interning order), then the message
/// tallies, then the staged trace events (absorbed through the shared
/// capped tracer, so the global event sequence and drop count match the
/// serial engine's). The coordinator calls this in chunk index order —
/// descriptor *execution* order is irrelevant.
fn merge_send_results<P: Program>(
    r: &mut SendResults<P>,
    metrics: &mut Metrics,
    tracer: &mut Tracer,
    faults: Option<&mut FaultCtx<P>>,
) {
    for &(v, span) in r.node_spans.iter() {
        metrics.note_awake(NodeId(v), span);
    }
    r.node_spans.clear();
    metrics.messages_sent += r.sent;
    metrics.messages_delivered += r.delivered;
    metrics.messages_lost += r.lost;
    metrics.faults_dropped += r.fdropped;
    metrics.faults_duplicated += r.fduplicated;
    metrics.faults_delayed += r.fdelayed;
    if let Some(f) = faults {
        // Chunk order = node order, so the run-wide delayed buffer grows
        // in the serial engine's transmission order.
        f.state.delayed.append(&mut r.delayed_out);
    }
    tracer.absorb(&mut r.trace);
}

/// Between the phases: resolve fault-delayed messages that have come due.
/// A delayed message is delivered only if its recipient is awake at
/// exactly its due round; a due round nobody executed (or an asleep
/// recipient) loses it — the model's rule, applied late. Deliverable
/// messages are handed to `stage` as `(owner chunk, entry)` in the
/// run-wide buffer order the serial engine drains; the coordinator stages
/// them into the recipient's parked batch (`late` buffer) — on faulty
/// rounds every receive descriptor is still gated closed here, so the
/// batches are parked by construction.
fn resolve_due_delays<P: Program>(
    f: &mut FaultCtx<P>,
    round: Round,
    ctx: &RoundCtx,
    metrics: &mut Metrics,
    tracer: &mut Tracer,
    stage: &mut dyn FnMut(usize, ShardEntry<P::Msg>),
) {
    if !f.state.delayed.iter().any(|d| d.due <= round) {
        return;
    }
    let mut kept = Vec::with_capacity(f.state.delayed.len());
    for d in f.state.delayed.drain(..) {
        if d.due > round {
            kept.push(d);
            continue;
        }
        let (due, from, to) = (d.due, d.from, d.to);
        if due == round && ctx.next_wake[to.index()] == round {
            metrics.messages_delivered += 1;
            tracer.push(|| TraceEvent::Delivered { round, from, to });
            let pos = ctx.awake_pos[to.index()];
            let c = ctx.chunk_of(pos);
            stage(
                c,
                ShardEntry {
                    to_local: pos - ctx.bounds[c],
                    env: Envelope { from, msg: d.msg },
                },
            );
        } else {
            metrics.messages_lost += 1;
            tracer.push(|| TraceEvent::Lost {
                round: due,
                from,
                to,
            });
        }
    }
    f.state.delayed = kept;
}

/// Apply one chunk's receive partials in node order: stay lane extension
/// (chunks ascend, so the lane stays globally sorted), batched wheel
/// scheduling, halt outputs, wake stamps, staged trace events, and
/// program restoration. Returns whether this chunk touched recovery
/// accounting (a crashed or still-recovering node), so the coordinator can
/// bump [`Metrics::recovery_rounds`] once per round like the serial
/// engine.
#[allow(clippy::too_many_arguments)]
fn apply_receive_partials<P: Program>(
    b: &mut Batch<P>,
    round: Round,
    ctx: &mut RoundCtx,
    wheel: &mut WakeWheel,
    stay: &mut Vec<u32>,
    outputs: &mut [Option<P::Output>],
    slots: &mut [Option<P>],
    tracer: &mut Tracer,
    metrics: &mut Metrics,
    faults: Option<&mut FaultCtx<P>>,
) -> bool {
    tracer.absorb(&mut b.trace);
    metrics.faults_crashed += b.fcrashed;
    b.fcrashed = 0;
    // Recovery accounting, in the chunk's node order — the same merge the
    // serial engine's phase B does inline. A node that crashed this round
    // starts recovering (the crashed round itself is not recovery energy);
    // an awake node still marked recovering pays one recovery_awake round,
    // and its first non-`Stay` action (a sleep or halt partial) ends the
    // recovery. Recovering nodes are always awake — a crash forces the
    // node into the stay lane — so scanning the chunk's jobs sees them all.
    let mut touched = false;
    if let Some(f) = faults {
        let rec = &mut f.state.recovering;
        let (mut ci, mut si, mut hi) = (0usize, 0usize, 0usize);
        for &(v, _) in b.jobs.iter() {
            if b.crashed_nodes.get(ci).is_some_and(|&c| c == v) {
                ci += 1;
                rec[v as usize] = true;
                touched = true;
                continue;
            }
            if !rec[v as usize] {
                continue;
            }
            metrics.recovery_awake += 1;
            touched = true;
            while b.sleeps.get(si).is_some_and(|&(_, s)| s < v) {
                si += 1;
            }
            while b.halts.get(hi).is_some_and(|h| h.0 < v) {
                hi += 1;
            }
            let non_stay = b.sleeps.get(si).is_some_and(|&(_, s)| s == v)
                || b.halts.get(hi).is_some_and(|h| h.0 == v);
            if non_stay {
                rec[v as usize] = false;
            }
        }
        b.crashed_nodes.clear();
    }
    for &v in &b.stays {
        ctx.next_wake[v as usize] = round + 1;
    }
    stay.extend_from_slice(&b.stays);
    b.stays.clear();
    for &(until, v) in &b.sleeps {
        ctx.next_wake[v as usize] = until;
    }
    wheel.schedule_all(b.sleeps.drain(..));
    for (v, o) in b.halts.drain(..) {
        ctx.next_wake[v as usize] = NEVER;
        outputs[v as usize] = Some(o);
    }
    for (v, p) in b.jobs.drain(..) {
        slots[v as usize] = Some(p);
    }
    touched
}

/// A spawned executor: register for unpark storms, then scan-claim-execute
/// until shutdown. Parks (unbounded) when a scan comes up empty — every
/// publication edge (round publish, descriptor completion, shutdown) ends
/// in `unpark_all`, and registration happens before the first scan, so a
/// wakeup can race at worst into a pending unpark token, never past one.
fn worker_loop<P: Program>(pool: &StealPool<'_, P>, who: usize) {
    pool.register();
    let mut ex: ExecCtx<P::Msg> = ExecCtx::new(who);
    loop {
        if pool.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if try_execute(pool, &mut ex) {
            continue;
        }
        if pool.chaos.is_some() {
            // A chaos nap is a `park_timeout`: it may swallow an unpark
            // token raised (by a publication or shutdown) after the scan
            // above. Loop back to re-check instead of falling through to
            // the unbounded park — otherwise that lost token parks this
            // executor forever.
            chaos_pulse(pool, &mut ex);
            thread::park_timeout(COORD_NAP);
            continue;
        }
        thread::park();
    }
}

/// How a threaded run starts: fresh programs at round 1, or programs plus
/// the decoded round-boundary state of a [`Snapshot`].
enum ThreadedInit<P: Program> {
    Fresh(Vec<P>),
    Restored {
        programs: Vec<P>,
        // boxed: RestoredState is a dozen Vecs wide, Fresh a single one
        state: Box<RestoredState<P::Msg, P::Output>>,
    },
}

/// What the core produced: a completed [`Run`], or the snapshot the run
/// paused into at its `pause_after` bound.
enum ThreadedOutcome<O> {
    Done(Run<O>),
    Paused(Snapshot),
}

/// Checkpoint control of one run: the pause bound and/or periodic emission
/// interval, plus the monomorphized snapshot encoder as a function pointer
/// — the executor core itself carries no [`Codec`] bounds (only the public
/// wrappers do, where `encode_snapshot::<P>` is instantiated).
struct CkptCtl<'a, P: Program> {
    /// Pause (into a returned snapshot) instead of executing any round
    /// beyond this bound.
    pause_after: Option<Round>,
    /// Hand a snapshot to `sink` whenever at least this many rounds have
    /// elapsed since the last one and more work is pending.
    every: Option<Round>,
    encode: for<'b> fn(&Graph, Config, EngineStateRef<'b, P>) -> Snapshot,
    sink: &'a mut dyn FnMut(&Snapshot),
}

/// Advance the per-round timing stamp: add the elapsed time to the
/// accumulator `pick` selects and re-stamp. When timing is off the stamp
/// is `None` and no clock is read at all.
#[inline]
fn lap(stamp: &mut Option<(&mut PhaseTimes, Instant)>, pick: fn(&mut PhaseTimes) -> &mut u64) {
    if let Some((t, at)) = stamp.as_mut() {
        let now = Instant::now();
        *pick(t) += now.duration_since(*at).as_nanos() as u64;
        *at = now;
    }
}

/// The shared executor core behind [`run_threaded`] and its fault-aware /
/// checkpoint-aware variants: a persistent executor pool (the coordinator
/// plus `workers - 1` spawned threads) driven round by round from a fresh
/// or restored boundary, with optional seeded fault injection, optional
/// snapshotting at round boundaries, optional per-phase timing, and an
/// optional (test-only) chaos plan perturbing the claim scheduling. All
/// observable state lives coordinator-side between rounds, which is
/// exactly what a [`Snapshot`] captures — byte-identical to the serial
/// engine's at the same boundary.
// One argument per optional capability; a builder would obscure that the
// public entry points each enable exactly one of them.
#[allow(clippy::too_many_arguments)]
fn run_threaded_core<P>(
    graph: &Graph,
    init: ThreadedInit<P>,
    config: Config,
    workers: usize,
    mut faults: Option<FaultCtx<P>>,
    mut ctl: Option<CkptCtl<'_, P>>,
    mut timing: Option<&mut PhaseTimes>,
    chaos: Option<ChaosPlan>,
) -> Result<ThreadedOutcome<P::Output>, SimError>
where
    P: Program + Send,
{
    let n = graph.n();
    let workers = workers.max(1);
    let (programs, restored) = match init {
        ThreadedInit::Fresh(p) => (p, None),
        ThreadedInit::Restored { programs, state } => (programs, Some(*state)),
    };
    if programs.len() != n {
        return Err(SimError::ProgramCountMismatch {
            got: programs.len(),
            expected: n,
        });
    }
    let mut metrics;
    let mut tracer;
    let mut outputs: Vec<Option<P::Output>>;
    let next_wake: Vec<Round>;
    let wheel_init: WakeWheel;
    let stay_init: Vec<u32>;
    let prev_round_init: Round;
    match restored {
        None => {
            metrics = Metrics::new(n);
            tracer = Tracer::new(config.trace);
            outputs = (0..n).map(|_| None).collect();
            let mut nw = Vec::with_capacity(n);
            let mut wheel = WakeWheel::new();
            seed_schedule(&programs, &mut wheel, &mut nw, &mut outputs)?;
            next_wake = nw;
            wheel_init = wheel;
            stay_init = Vec::new();
            prev_round_init = 0;
        }
        Some(rs) => {
            metrics = rs.metrics;
            tracer = rs.tracer;
            outputs = rs.outputs;
            next_wake = rs.next_wake;
            wheel_init = rebuild_wheel(&rs.wheel_events);
            stay_init = rs.stay;
            prev_round_init = rs.prev_round;
        }
    }
    let trace_on = tracer.enabled();
    if n == 0 {
        return Ok(ThreadedOutcome::Done(Run {
            outputs: vec![],
            metrics,
            trace: tracer.events,
            trace_dropped: tracer.dropped,
        }));
    }
    let mut wheel = wheel_init;
    let mut slots: Vec<Option<P>> = programs.into_iter().map(Some).collect();
    // The immutable per-round fault hooks workers need; the mutable fault
    // state (the delayed-message buffer) stays with the coordinator.
    let hooks: Option<FaultHooks<P>> = faults.as_ref().map(|f| FaultHooks {
        plan: f.state.plan,
        crash_io: f.crash_io,
    });
    if let Some(f) = faults.as_mut() {
        // Fresh runs start with an empty recovery bitset; restored runs
        // carry a validated length-n one (resize is then a no-op).
        f.state.recovering.resize(n, false);
    }

    // The shared injector: slot arena (one descriptor slot per potential
    // chunk), k×k exchange cells, round context. Preallocated once; the
    // steady state only swaps buffers through it.
    let pool: StealPool<'_, P> = StealPool {
        graph,
        ctx: RwLock::new(RoundCtx {
            next_wake,
            awake_pos: vec![0u32; n],
            bounds: Vec::new(),
            chunk: Vec::new(),
        }),
        slots: (0..workers).map(|_| ChunkSlot::new()).collect(),
        cells: (0..workers * workers)
            .map(|_| Mutex::new(Vec::new()))
            .collect(),
        kmax: workers,
        k: AtomicUsize::new(0),
        auto_receive: faults.is_none(),
        abort: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        registry: Mutex::new(Vec::new()),
        chaos,
    };
    // The coordinator is an executor too (it steals while it waits):
    // register it for unpark storms before anything can publish.
    pool.register();

    let result: Result<Option<Snapshot>, SimError> = std::thread::scope(|scope| {
        for who in 1..workers {
            let pool_ref = &pool;
            scope.spawn(move || worker_loop(pool_ref, who));
        }

        let mut awake: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut stay: Vec<u32> = stay_init;
        let mut prefix: Vec<u64> = Vec::new();
        let mut bounds: Vec<u32> = Vec::new();
        // The coordinator's executor context: claim-scan offset 0, plus
        // the segment pool its inline path and receive steals share.
        let mut coord: ExecCtx<P::Msg> = ExecCtx::new(0);
        let mut prev_round: Round = prev_round_init;
        let mut last_emit: Round = prev_round_init;

        // Wrapped so every exit — completion, pause, error — funnels
        // through the one place below that raises shutdown and unparks
        // every executor before the scope joins the threads.
        let out = (|| -> Result<Option<Snapshot>, SimError> {
            loop {
                // Peek the next pending round without committing anything, so
                // a pause bound can snapshot this exact boundary (the stay
                // lane, when occupied, always runs before any wheel wake-up).
                let next = if !stay.is_empty() {
                    Some(prev_round + 1)
                } else {
                    wheel.peek_min()
                };
                let Some(round) = next else { break };
                if let Some(c) = ctl.as_mut() {
                    if c.pause_after.is_some_and(|bound| round > bound) {
                        let ctx = pool.ctx.read().expect("round context lock");
                        let st = EngineStateRef {
                            prev_round,
                            next_wake: &ctx.next_wake,
                            stay: &stay,
                            wheel_events: wheel.pending_events(),
                            outputs: &outputs,
                            programs: ProgramsRef::Slots(&slots),
                            metrics: &metrics,
                            tracer: &tracer,
                            faults: faults.as_ref().map(|f| &f.state),
                        };
                        return Ok(Some((c.encode)(graph, config, st)));
                    }
                }
                // Per-round timing stamp; partition covers pop → publish.
                let mut stamp = timing.as_deref_mut().map(|t| (t, Instant::now()));
                let popped =
                    next_awake_set(&mut wheel, &mut stay, prev_round, &mut awake, &mut scratch);
                debug_assert_eq!(popped, Some(round), "peek and pop must agree");
                if round > config.max_rounds {
                    return Err(SimError::RoundBudgetExceeded {
                        limit: config.max_rounds,
                    });
                }
                // Same skipped-round accounting as the serial `step_body`:
                // rounds the batch-cascade jumped over had no awake node.
                metrics.rounds_skipped += round - prev_round - 1;
                metrics.rounds = round;
                prev_round = round;
                let total_mass = degree_mass_prefix(graph, &awake, &mut prefix);
                let inline = workers == 1 || total_mass <= INLINE_MASS;
                let k = if inline { 1 } else { workers.min(awake.len()) };
                partition_by_mass(&prefix, k, &mut bounds);
                {
                    let mut ctx = pool.ctx.write().expect("round context lock");
                    ctx.bounds.clone_from(&bounds);
                    ctx.chunk.clear();
                    ctx.chunk.reserve(awake.len());
                    let mut c = 0usize;
                    for (i, &v) in awake.iter().enumerate() {
                        ctx.awake_pos[v as usize] = i as u32;
                        while bounds[c + 1] as usize <= i {
                            c += 1;
                        }
                        ctx.chunk.push(c as u32);
                    }
                }

                if inline {
                    lap(&mut stamp, |t| &mut t.partition_ns);
                    // ---- inline path: one chunk, no descriptors. The same
                    // phase functions the stealing executors run, so results
                    // are identical by construction; only the descriptor
                    // traffic is skipped. Uses chunk 0's parked batch.
                    let mut b = pool.slots[0]
                        .batch
                        .lock()
                        .expect("batch slot lock")
                        .take()
                        .expect("batch parked between rounds");
                    b.round = round;
                    b.trace_on = trace_on;
                    b.faults = hooks;
                    b.jobs.clear();
                    for &v in &awake {
                        b.jobs
                            .push((v, slots[v as usize].take().expect("program present")));
                    }
                    {
                        let ctx = pool.ctx.read().expect("round context lock");
                        run_send_phase(graph, &ctx, &mut b);
                    }
                    if let Some(e) = b.res.error.take() {
                        return Err(e);
                    }
                    merge_send_results(&mut b.res, &mut metrics, &mut tracer, faults.as_mut());
                    if let Some(f) = faults.as_mut() {
                        let ctx = pool.ctx.read().expect("round context lock");
                        let late = &mut b.late;
                        resolve_due_delays(
                            f,
                            round,
                            &ctx,
                            &mut metrics,
                            &mut tracer,
                            &mut |_, e| late.push(e),
                        );
                    }
                    // Drain the single chunk's own shards — the inline
                    // counterpart of a receive descriptor draining its cells.
                    coord.inboxes.ensure(b.jobs.len());
                    for shard in b.shards.iter_mut() {
                        coord
                            .inboxes
                            .extend_from(shard.drain(..).map(|e| (e.to_local, e.env)));
                    }
                    run_receive_phase(graph, &mut b, &mut coord.inboxes);
                    if let Some(e) = b.error.take() {
                        return Err(e);
                    }
                    {
                        let mut ctx = pool.ctx.write().expect("round context lock");
                        let rec_round = apply_receive_partials(
                            &mut b,
                            round,
                            &mut ctx,
                            &mut wheel,
                            &mut stay,
                            &mut outputs,
                            &mut slots,
                            &mut tracer,
                            &mut metrics,
                            faults.as_mut(),
                        );
                        if rec_round {
                            metrics.recovery_rounds += 1;
                        }
                    }
                    *pool.slots[0].batch.lock().expect("batch slot lock") = Some(b);
                    lap(&mut stamp, |t| &mut t.inline_ns);
                    if let Some((t, _)) = stamp.as_mut() {
                        t.inline_rounds += 1;
                    }
                } else {
                    // ---- publish: fill every chunk descriptor first, then
                    // open them all at once. Two loops on purpose — an
                    // executor may claim a send the instant its slot turns
                    // READY, and its k publish decrements must land on fully
                    // reset `pending` counters and VACANT receive gates.
                    pool.abort.store(false, Ordering::SeqCst);
                    pool.k.store(k, Ordering::SeqCst);
                    for c in 0..k {
                        let slot = &pool.slots[c];
                        let mut parked = slot.batch.lock().expect("batch slot lock");
                        let b = parked.as_mut().expect("batch parked between rounds");
                        b.round = round;
                        b.trace_on = trace_on;
                        b.faults = hooks;
                        b.jobs.clear();
                        for &v in &awake[bounds[c] as usize..bounds[c + 1] as usize] {
                            b.jobs
                                .push((v, slots[v as usize].take().expect("program present")));
                        }
                        slot.pending.store(k, Ordering::SeqCst);
                        slot.recv_state.store(VACANT, Ordering::SeqCst);
                    }
                    for c in 0..k {
                        pool.slots[c].send_state.store(READY, Ordering::SeqCst);
                    }
                    pool.unpark_all();
                    lap(&mut stamp, |t| &mut t.partition_ns);

                    // ---- send results, in chunk index order. The coordinator
                    // steals work itself while waiting (`wait_done`), so the
                    // merge order — which fixes metrics, trace, and error
                    // precedence — is untouched by who executed what.
                    let mut round_err = None;
                    for c in 0..k {
                        wait_done(&pool, &mut coord, c, false);
                        lap(&mut stamp, |t| &mut t.route_ns);
                        let mut r = pool.slots[c].results.lock().expect("results slot lock");
                        // Error precedence: chunks ascend in node order and a
                        // send stops at its chunk's first routing error, so
                        // the first error of the lowest-indexed chunk is the
                        // serial engine's error.
                        if let Some(e) = r.error.take() {
                            round_err = Some(e);
                            break;
                        }
                        merge_send_results(&mut r, &mut metrics, &mut tracer, faults.as_mut());
                        lap(&mut stamp, |t| &mut t.merge_ns);
                    }
                    if let Some(e) = round_err {
                        return Err(e);
                    }
                    // Between the phases: route fault-delayed messages coming
                    // due into their recipients' owner batches, exactly where
                    // the serial engine resolves them. Only on faulty runs —
                    // fault-free rounds auto-open their receives instead
                    // (`auto_receive`), so this coordinator turn is skipped.
                    if let Some(f) = faults.as_mut() {
                        {
                            let ctx = pool.ctx.read().expect("round context lock");
                            resolve_due_delays(
                                f,
                                round,
                                &ctx,
                                &mut metrics,
                                &mut tracer,
                                &mut |c, entry| {
                                    pool.slots[c]
                                        .batch
                                        .lock()
                                        .expect("batch slot lock")
                                        .as_mut()
                                        .expect("batch parked for staging")
                                        .late
                                        .push(entry);
                                },
                            );
                        }
                        for c in 0..k {
                            pool.slots[c].recv_state.store(READY, Ordering::SeqCst);
                        }
                        pool.unpark_all();
                        lap(&mut stamp, |t| &mut t.merge_ns);
                    }

                    // ---- receive partials, in chunk order (= node order):
                    // stay lane stays globally sorted, wake-ups enter the
                    // wheel in the serial engine's schedule order, halt
                    // outputs land in place. Waiting on every receive also
                    // quiesces the round: no executor holds work at a round
                    // boundary, so pause/periodic snapshots stay exact.
                    let mut rec_round = false;
                    for c in 0..k {
                        wait_done(&pool, &mut coord, c, true);
                        lap(&mut stamp, |t| &mut t.deliver_ns);
                        let mut b = pool.slots[c]
                            .batch
                            .lock()
                            .expect("batch slot lock")
                            .take()
                            .expect("batch parked after receive");
                        if let Some(e) = b.error.take() {
                            return Err(e);
                        }
                        {
                            let mut ctx = pool.ctx.write().expect("round context lock");
                            rec_round |= apply_receive_partials(
                                &mut b,
                                round,
                                &mut ctx,
                                &mut wheel,
                                &mut stay,
                                &mut outputs,
                                &mut slots,
                                &mut tracer,
                                &mut metrics,
                                faults.as_mut(),
                            );
                        }
                        *pool.slots[c].batch.lock().expect("batch slot lock") = Some(b);
                        lap(&mut stamp, |t| &mut t.merge_ns);
                    }
                    if rec_round {
                        metrics.recovery_rounds += 1;
                    }
                    if let Some((t, _)) = stamp.as_mut() {
                        t.dispatched_rounds += 1;
                    }
                }

                // Periodic snapshots, at this round's boundary, only while
                // more work is pending — the final state is the returned run.
                if let Some(c) = ctl.as_mut() {
                    if let Some(every) = c.every {
                        if prev_round >= last_emit.saturating_add(every)
                            && (!stay.is_empty() || wheel.peek_min().is_some())
                        {
                            last_emit = prev_round;
                            let ctx = pool.ctx.read().expect("round context lock");
                            let st = EngineStateRef {
                                prev_round,
                                next_wake: &ctx.next_wake,
                                stay: &stay,
                                wheel_events: wheel.pending_events(),
                                outputs: &outputs,
                                programs: ProgramsRef::Slots(&slots),
                                metrics: &metrics,
                                tracer: &tracer,
                                faults: faults.as_ref().map(|f| &f.state),
                            };
                            let snap = (c.encode)(graph, config, st);
                            (c.sink)(&snap);
                        }
                    }
                }
            }
            Ok(None)
        })();
        // One exit for every path: raise shutdown and wake every parked
        // executor so the scope can join its threads.
        pool.shutdown.store(true, Ordering::SeqCst);
        pool.unpark_all();
        out
    });
    if let Some(snapshot) = result? {
        return Ok(ThreadedOutcome::Paused(snapshot));
    }

    // Still-buffered delayed messages never found an executed due round
    // with an awake recipient: account them lost, like the serial engine.
    if let Some(f) = faults.as_mut() {
        for d in f.state.delayed.drain(..) {
            metrics.messages_lost += 1;
            tracer.push(|| TraceEvent::Lost {
                round: d.due,
                from: d.from,
                to: d.to,
            });
        }
    }
    let outputs = outputs
        .into_iter()
        .enumerate()
        .map(|(v, o)| o.ok_or(SimError::MissingOutput(NodeId(v as u32))))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ThreadedOutcome::Done(Run {
        outputs,
        metrics,
        trace: tracer.events,
        trace_dropped: tracer.dropped,
    }))
}

/// Run `programs` on `graph` using `workers` threads.
///
/// Semantics are identical to [`Engine::run`](crate::Engine::run); programs
/// must be deterministic for the executors to agree. The worker count does
/// not affect any observable result — it only changes how the awake set is
/// chunked.
///
/// # Errors
/// Same contract as the serial engine ([`SimError`]), with the serial
/// engine's error precedence (lowest node id first).
pub fn run_threaded<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Send,
{
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        None,
        None,
        None,
        None,
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Run `programs` on `workers` threads, accumulating per-phase wall time
/// into `timing` ([`PhaseTimes`]) — partition / route / deliver / merge
/// for dispatched rounds, a single bucket for inline rounds. The timing
/// probe reads the clock only between pipeline stages on the coordinator,
/// so the run itself (outputs, [`Metrics`], trace) is
/// bit-for-bit the same as [`run_threaded`].
///
/// # Errors
/// Same contract as [`run_threaded`].
pub fn run_threaded_timed<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    timing: &mut PhaseTimes,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Send,
{
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        None,
        None,
        Some(timing),
        None,
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Run `programs` under a seeded fault plan using `workers` threads.
///
/// Bit-for-bit identical to
/// [`Engine::run_faulty`](crate::Engine::run_faulty) under the same plan,
/// at any worker count.
///
/// # Errors
/// Same contract as [`run_threaded`].
pub fn run_threaded_faulty<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: &FaultPlan,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Persist + Send,
{
    let faults = FaultCtx::new(*plan, CrashIo::<P>::of());
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        Some(faults),
        None,
        None,
        None,
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Run until the next pending round would exceed `pause_after`, then
/// snapshot the paused state; completes normally if the run finishes
/// first. The snapshot is **byte-identical** to the serial
/// [`Engine::snapshot_at`](crate::Engine::snapshot_at) at the same bound —
/// between rounds all observable state lives with the coordinator, so the
/// worker count leaves no residue in the image.
///
/// # Errors
/// Any [`SimError`] from the rounds executed before the pause.
pub fn snapshot_at_threaded<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: Option<&FaultPlan>,
    pause_after: Round,
) -> Result<Paused<P::Output>, SimError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec,
{
    let faults = plan.map(|p| FaultCtx::new(*p, CrashIo::<P>::of()));
    let mut sink = |_: &Snapshot| {};
    let ctl = CkptCtl {
        pause_after: Some(pause_after),
        every: None,
        encode: encode_snapshot::<P>,
        sink: &mut sink,
    };
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        faults,
        Some(ctl),
        None,
        None,
    )? {
        ThreadedOutcome::Done(run) => Ok(Paused::Done(run)),
        ThreadedOutcome::Paused(snapshot) => Ok(Paused::Snapshot(snapshot)),
    }
}

/// Continue a snapshotted run to completion on the threaded executor,
/// bit-for-bit identical to the uninterrupted run (outputs, `Metrics`,
/// trace) — regardless of which executor or worker count produced the
/// snapshot. `programs` must be the same *initial* programs the original
/// run started from; their dynamic state is overwritten from the snapshot.
///
/// # Errors
/// [`ResumeError::Checkpoint`] if the snapshot is corrupt or does not
/// match `graph`; [`ResumeError::Sim`] for simulation errors after the
/// restore.
pub fn resume_threaded<P>(
    graph: &Graph,
    mut programs: Vec<P>,
    snapshot: &Snapshot,
    workers: usize,
) -> Result<Run<P::Output>, ResumeError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec,
{
    let n = graph.n();
    if programs.len() != n {
        return Err(ResumeError::Sim(SimError::ProgramCountMismatch {
            got: programs.len(),
            expected: n,
        }));
    }
    let mut state = decode_snapshot::<P>(graph, snapshot, &mut programs)?;
    let config = state.config;
    let faults = state
        .faults
        .take()
        .map(|s| FaultCtx::from_state(s, CrashIo::<P>::of()));
    match run_threaded_core(
        graph,
        ThreadedInit::Restored {
            programs,
            state: Box::new(state),
        },
        config,
        workers,
        faults,
        None,
        None,
        None,
    )
    .map_err(ResumeError::Sim)?
    {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Run to completion on `workers` threads, handing a snapshot to `sink`
/// whenever at least `every` rounds have elapsed since the last one (none
/// once the run has finished — the final state is the returned [`Run`]).
/// Resuming from any emitted snapshot — on either executor — continues to
/// the same bit-for-bit result.
///
/// # Panics
/// If `every` is zero.
///
/// # Errors
/// Same contract as [`run_threaded`].
pub fn run_threaded_checkpointed<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: Option<&FaultPlan>,
    every: Round,
    mut sink: impl FnMut(&Snapshot),
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec,
{
    assert!(every > 0, "checkpoint interval must be at least 1 round");
    let faults = plan.map(|p| FaultCtx::new(*p, CrashIo::<P>::of()));
    let ctl = CkptCtl {
        pause_after: None,
        every: Some(every),
        encode: encode_snapshot::<P>,
        sink: &mut sink,
    };
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        faults,
        Some(ctl),
        None,
        None,
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Test-only entry points that thread a seeded [`ChaosPlan`] through the
/// executor: every claim scan, publish, and drain may be perturbed with
/// forced steals, yields, naps, and unpark storms at plan-seeded points.
/// The perturbations reorder only *who executes what when* — never the
/// coordinator's chunk-order merges — so every run must stay bit-for-bit
/// identical to the serial engine. Used by the chaos-interleaving stress
/// tests here and in `checkpoint`.
#[cfg(test)]
pub(crate) fn run_threaded_chaos<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    seed: u64,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Send,
{
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        None,
        None,
        None,
        Some(ChaosPlan { seed }),
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Chaos variant of [`run_threaded_faulty`] — see [`run_threaded_chaos`].
#[cfg(test)]
pub(crate) fn run_threaded_faulty_chaos<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: &FaultPlan,
    seed: u64,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Persist + Send,
{
    let faults = FaultCtx::new(*plan, CrashIo::<P>::of());
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        Some(faults),
        None,
        None,
        Some(ChaosPlan { seed }),
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Chaos variant of [`snapshot_at_threaded`] — see [`run_threaded_chaos`].
/// Snapshot bytes must also be unperturbed: rounds quiesce before every
/// boundary, chaos or not.
#[cfg(test)]
pub(crate) fn snapshot_at_threaded_chaos<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: Option<&FaultPlan>,
    pause_after: Round,
    seed: u64,
) -> Result<Paused<P::Output>, SimError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec,
{
    let faults = plan.map(|p| FaultCtx::new(*p, CrashIo::<P>::of()));
    let mut sink = |_: &Snapshot| {};
    let ctl = CkptCtl {
        pause_after: Some(pause_after),
        every: None,
        encode: encode_snapshot::<P>,
        sink: &mut sink,
    };
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        faults,
        Some(ctl),
        None,
        Some(ChaosPlan { seed }),
    )? {
        ThreadedOutcome::Done(run) => Ok(Paused::Done(run)),
        ThreadedOutcome::Paused(snapshot) => Ok(Paused::Snapshot(snapshot)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outbox;
    use awake_graphs::generators;

    /// Flood the maximum ident seen so far for `n` rounds, then halt.
    #[derive(Clone)]
    struct FloodMax {
        best: u64,
        rounds: u64,
    }

    impl Program for FloodMax {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, _view: &View, out: &mut Outbox<u64>) {
            out.broadcast(self.best);
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.best = self.best.max(view.ident);
            for e in inbox {
                self.best = self.best.max(e.msg);
            }
            if view.round >= self.rounds {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.best)
        }
    }

    fn assert_bitwise_equal<P>(g: &Graph, mk: impl Fn() -> Vec<P>, workers: &[usize])
    where
        P: Program + Send,
        P::Output: PartialEq,
    {
        let serial = crate::Engine::new(g, Config::default()).run(mk()).unwrap();
        for &w in workers {
            let par = run_threaded(g, mk(), Config::default(), w).unwrap();
            assert!(serial.outputs == par.outputs, "outputs, workers = {w}");
            assert_eq!(serial.metrics, par.metrics, "metrics, workers = {w}");
        }
        // Traced runs must agree event for event — including the drop
        // counter when the cap truncates (cap 500 bites on the larger
        // workloads, so both the kept prefix and the overflow accounting
        // are exercised).
        let cfg = Config {
            trace: crate::TraceMode::Capped(500),
            ..Config::default()
        };
        let serial = crate::Engine::new(g, cfg).run(mk()).unwrap();
        for &w in workers {
            let par = run_threaded(g, mk(), cfg, w).unwrap();
            assert_eq!(serial.trace, par.trace, "trace, workers = {w}");
            assert_eq!(
                serial.trace_dropped, par.trace_dropped,
                "trace_dropped, workers = {w}"
            );
        }
    }

    #[test]
    fn threaded_matches_serial_flood() {
        // 160 nodes: total degree mass (2m + n = 478) exceeds INLINE_MASS,
        // so dense rounds genuinely run the multi-chunk parallel pipeline.
        let g = generators::random_tree(160, 9);
        let mk = || {
            (0..160)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 170,
                })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 4, 8]);
        let run = run_threaded(&g, mk(), Config::default(), 4).unwrap();
        // everyone learned the max ident (tree has diameter < 170 rounds)
        assert!(run.outputs.iter().all(|&b| b == 160));
    }

    #[test]
    fn threaded_single_worker() {
        let g = generators::cycle(6);
        let progs = (0..6)
            .map(|_| FloodMax { best: 0, rounds: 3 })
            .collect::<Vec<_>>();
        let run = run_threaded(&g, progs, Config::default(), 1).unwrap();
        assert_eq!(run.metrics.rounds, 3);
    }

    #[test]
    fn more_workers_than_awake_nodes() {
        // Tiny awake set, tiny mass: the inline path absorbs the round.
        let g = generators::path(3);
        let progs = (0..3)
            .map(|_| FloodMax { best: 0, rounds: 3 })
            .collect::<Vec<_>>();
        let run = run_threaded(&g, progs, Config::default(), 16).unwrap();
        assert_eq!(run.outputs, vec![3, 3, 3]);
    }

    #[test]
    fn more_workers_than_awake_nodes_in_the_dispatched_path() {
        // K_20: only 20 awake nodes but degree mass 400 > INLINE_MASS, so
        // the round dispatches with k = 20 chunks under 32 workers — the
        // chunker must cap k at the awake count, one node per chunk.
        let g = generators::complete(20);
        let mk = || {
            (0..20)
                .map(|_| FloodMax { best: 0, rounds: 3 })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[32]);
        let run = run_threaded(&g, mk(), Config::default(), 32).unwrap();
        assert!(run.outputs.iter().all(|&b| b == 20));
    }

    #[test]
    fn threaded_detects_budget() {
        let g = generators::path(2);
        let progs = (0..2)
            .map(|_| FloodMax {
                best: 0,
                rounds: 100,
            })
            .collect::<Vec<_>>();
        let err = run_threaded(&g, progs, Config::with_max_rounds(5), 2).unwrap_err();
        assert_eq!(err, SimError::RoundBudgetExceeded { limit: 5 });
    }

    // ---- degree-weighted partitioning ----

    fn split(g: &Graph, awake: &[u32], k: usize) -> Vec<u32> {
        let (mut prefix, mut bounds) = (Vec::new(), Vec::new());
        degree_mass_prefix(g, awake, &mut prefix);
        partition_by_mass(&prefix, k, &mut bounds);
        bounds
    }

    #[test]
    fn partition_balances_uniform_degree_mass() {
        let g = generators::cycle(12); // every node mass 3
        let awake: Vec<u32> = (0..12).collect();
        assert_eq!(split(&g, &awake, 4), vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn partition_isolates_a_dominant_hub() {
        // Star: the hub (node 0) holds half the endpoint degree mass; the
        // splitter must give it a narrow chunk instead of dragging half
        // the leaves into worker 0.
        let g = generators::star(33); // hub degree 32, leaves degree 1
        let awake: Vec<u32> = (0..33).collect();
        let bounds = split(&g, &awake, 4);
        assert_eq!(bounds.len(), 5);
        assert_eq!((bounds[0], bounds[4]), (0, 33));
        assert!(
            bounds[1] == 1,
            "hub chunk must be the hub alone, got bounds {bounds:?}"
        );
        // every chunk non-empty and monotone
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partition_survives_single_node_and_k_equals_len() {
        let g = generators::path(4);
        assert_eq!(split(&g, &[2], 1), vec![0, 1]);
        let awake: Vec<u32> = (0..4).collect();
        assert_eq!(split(&g, &awake, 4), vec![0, 1, 2, 3, 4]);
    }

    // ---- degenerate shapes the chunker must survive ----

    /// Node 0 stays awake through `rounds`; everyone else halts at round 1:
    /// every later round has a single awake node under many workers.
    struct LoneStayer {
        rounds: u64,
        heard: u64,
    }

    impl Program for LoneStayer {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            out.broadcast(view.ident);
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.heard += inbox.len() as u64;
            if view.round >= self.rounds {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.heard)
        }
    }

    #[test]
    fn single_awake_node_rounds_under_many_workers() {
        let g = generators::star(6);
        let mk = || {
            (0..6)
                .map(|v| LoneStayer {
                    rounds: if v == 0 { 5 } else { 1 },
                    heard: 0,
                })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 4, 8]);
        let run = run_threaded(&g, mk(), Config::default(), 8).unwrap();
        // round 1: hub hears all 5 leaves; rounds 2..=5: hub is alone and
        // its broadcasts are lost to the halted leaves.
        assert_eq!(run.outputs[0], 5);
        assert_eq!(run.metrics.messages_lost, 4 * 5);
        assert_eq!(run.metrics.rounds, 5);
    }

    /// Wakes at `wake`, broadcasts once, halts — wheel wakes separated by
    /// long fully-asleep gaps the skip-ahead must jump over.
    struct GappedWake {
        wake: Round,
        heard: u64,
    }

    impl Program for GappedWake {
        type Msg = u64;
        type Output = u64;
        fn initial_wake(&self) -> Option<Round> {
            Some(self.wake)
        }
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            out.broadcast(view.ident);
        }
        fn receive(&mut self, _view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.heard = inbox.len() as u64;
            Action::Halt
        }
        fn output(&self) -> Option<u64> {
            Some(self.heard)
        }
    }

    #[test]
    fn empty_awake_gaps_between_wheel_wakes() {
        // Pairs meet at rounds 10, 1_000 and 10^9; every round in between
        // has no awake node and must be skipped, not chunked.
        let g = generators::path(6);
        let wakes = [10u64, 10, 1_000, 1_000, 1_000_000_000, 1_000_000_000];
        let mk = || {
            wakes
                .iter()
                .map(|&wake| GappedWake { wake, heard: 0 })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 4, 8]);
        let run = run_threaded(&g, mk(), Config::default(), 4).unwrap();
        assert_eq!(run.metrics.rounds, 1_000_000_000);
        assert_eq!(run.metrics.awake, vec![1; 6]);
        // each pair only hears its partner (outer neighbors sleep)
        assert_eq!(run.outputs, vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn hub_holding_most_degree_agrees_across_worker_counts() {
        // A star plus a leaf-path tail, big enough to stay above the
        // inline cutoff: the hub dominates the degree mass, exercising the
        // splitter's boundary clamps at every worker count.
        let mut b = awake_graphs::GraphBuilder::new(240);
        for v in 1..200u32 {
            b.edge(0, v);
        }
        for v in 200..240u32 {
            b.edge(v - 1, v);
        }
        let g = b.build().unwrap();
        let mk = || {
            (0..240)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 12,
                })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 3, 4, 8, 16]);
    }

    // ---- error precedence matches the serial engine ----

    struct BadSendAt {
        bad: bool,
    }
    impl Program for BadSendAt {
        type Msg = ();
        type Output = ();
        fn send(&mut self, view: &View, out: &mut Outbox<()>) {
            if self.bad {
                // address a non-neighbor: 2 hops away on a path
                let target = NodeId((view.me.0 + 2) % view.n as u32);
                out.to(target, ());
            }
        }
        fn receive(&mut self, _: &View, _: &[Envelope<()>]) -> Action {
            Action::Halt
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn routing_error_reports_lowest_offending_node() {
        // Round 1 on P_200 has degree mass 598 > INLINE_MASS: the error
        // surfaces from the parallel path, where higher chunks' offenders
        // run concurrently and must lose to node 3's error.
        let g = generators::path(200);
        for workers in [1, 2, 4, 8] {
            let progs: Vec<BadSendAt> = (0..200).map(|v| BadSendAt { bad: v >= 3 }).collect();
            let err = run_threaded(&g, progs, Config::default(), workers).unwrap_err();
            let serial_err = crate::Engine::new(&g, Config::default())
                .run((0..200).map(|v| BadSendAt { bad: v >= 3 }).collect())
                .unwrap_err();
            assert_eq!(err, serial_err, "workers = {workers}");
            assert_eq!(
                err,
                SimError::NotANeighbor {
                    from: NodeId(3),
                    to: NodeId(5)
                }
            );
        }
    }

    struct SleepsBackward {
        offender: bool,
    }
    impl Program for SleepsBackward {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View, _: &mut Outbox<()>) {}
        fn receive(&mut self, view: &View, _: &[Envelope<()>]) -> Action {
            if view.round >= 2 && self.offender {
                Action::SleepUntil(view.round) // invalid: not in the future
            } else if view.round >= 3 {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn invalid_sleep_reports_lowest_offending_node() {
        // C_150 (mass 450): the offending round runs the parallel path.
        let g = generators::cycle(150);
        for workers in [1, 2, 4, 8] {
            let progs: Vec<SleepsBackward> = (0..150)
                .map(|v| SleepsBackward { offender: v >= 4 })
                .collect();
            let err = run_threaded(&g, progs, Config::default(), workers).unwrap_err();
            assert_eq!(
                err,
                SimError::InvalidSleep {
                    node: NodeId(4),
                    round: 2,
                    until: 2
                },
                "workers = {workers}"
            );
        }
    }

    // ---- seeded chaos interleavings: determinism is not scheduling luck --

    #[test]
    fn chaos_interleavings_stay_bit_identical() {
        // Forced steals, yields, naps, and unpark storms at seeded points
        // shuffle which executor runs each descriptor and when — outputs
        // and metrics must not move by a bit relative to the serial engine.
        let g = generators::random_tree(160, 9);
        let mk = || {
            (0..160)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 40,
                })
                .collect::<Vec<_>>()
        };
        let serial = crate::Engine::new(&g, Config::default()).run(mk()).unwrap();
        for seed in 1u64..=8 {
            for workers in [2, 4, 8] {
                let par = run_threaded_chaos(&g, mk(), Config::default(), workers, seed).unwrap();
                assert!(
                    serial.outputs == par.outputs,
                    "outputs, seed = {seed}, workers = {workers}"
                );
                assert_eq!(
                    serial.metrics, par.metrics,
                    "metrics, seed = {seed}, workers = {workers}"
                );
            }
        }
        // Traces too, including the drop counter under a biting cap.
        let cfg = Config {
            trace: crate::TraceMode::Capped(500),
            ..Config::default()
        };
        let serial = crate::Engine::new(&g, cfg).run(mk()).unwrap();
        for seed in [9u64, 10] {
            for workers in [2, 8] {
                let par = run_threaded_chaos(&g, mk(), cfg, workers, seed).unwrap();
                assert_eq!(
                    serial.trace, par.trace,
                    "trace, seed = {seed}, workers = {workers}"
                );
                assert_eq!(
                    serial.trace_dropped, par.trace_dropped,
                    "trace_dropped, seed = {seed}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn chaos_preserves_error_precedence() {
        // Under chaos the erroring chunk may finish long after its
        // neighbors — the coordinator's chunk-order scan must still report
        // the serial engine's error (lowest node id).
        let g = generators::path(200);
        for seed in 11u64..=13 {
            let progs: Vec<BadSendAt> = (0..200).map(|v| BadSendAt { bad: v >= 3 }).collect();
            let err = run_threaded_chaos(&g, progs, Config::default(), 4, seed).unwrap_err();
            assert_eq!(
                err,
                SimError::NotANeighbor {
                    from: NodeId(3),
                    to: NodeId(5)
                },
                "seed = {seed}"
            );
        }
    }

    impl Persist for FloodMax {
        fn save(&self, w: &mut crate::Writer) {
            use crate::Codec;
            self.best.encode(w);
        }
        fn restore(&mut self, r: &mut crate::Reader<'_>) -> Result<(), crate::CheckpointError> {
            use crate::Codec;
            self.best = u64::decode(r)?;
            Ok(())
        }
    }

    #[test]
    fn chaos_under_faults_matches_serial() {
        // Chaos and the fault pipeline compose: the coordinator-gated
        // receives and staged late deliveries keep the serial fault
        // semantics under storms (auto_receive is off on faulty runs).
        let mut plan = FaultPlan::new(77);
        plan.drop_ppm = 60_000;
        plan.dup_ppm = 60_000;
        plan.delay_ppm = 60_000;
        plan.delay_rounds = 1;
        let g = generators::random_tree(120, 5);
        let mk = || {
            (0..120)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 30,
                })
                .collect::<Vec<_>>()
        };
        let serial = crate::Engine::new(&g, Config::default())
            .run_faulty(mk(), &plan)
            .unwrap();
        for seed in 21u64..=23 {
            for workers in [2, 4] {
                let par =
                    run_threaded_faulty_chaos(&g, mk(), Config::default(), workers, &plan, seed)
                        .unwrap();
                assert!(
                    serial.outputs == par.outputs,
                    "outputs, seed = {seed}, workers = {workers}"
                );
                assert_eq!(
                    serial.metrics, par.metrics,
                    "metrics, seed = {seed}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn chaos_snapshot_bytes_match_serial() {
        // Rounds quiesce before every boundary — the coordinator consumes
        // every send and receive descriptor before moving on — so pause
        // snapshots must be byte-identical to the serial engine's even
        // when steal storms shuffled the round that just finished.
        let g = generators::random_tree(160, 9);
        let mk = || {
            (0..160)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 40,
                })
                .collect::<Vec<_>>()
        };
        let serial_full = crate::Engine::new(&g, Config::default()).run(mk()).unwrap();
        let want = match crate::Engine::new(&g, Config::default())
            .snapshot_at(mk(), None, 20)
            .unwrap()
        {
            Paused::Snapshot(s) => s,
            Paused::Done(_) => panic!("run finished before the pause"),
        };
        for seed in 31u64..=33 {
            for workers in [2, 4] {
                let got = match snapshot_at_threaded_chaos(
                    &g,
                    mk(),
                    Config::default(),
                    workers,
                    None,
                    20,
                    seed,
                )
                .unwrap()
                {
                    Paused::Snapshot(s) => s,
                    Paused::Done(_) => panic!("run finished before the pause"),
                };
                assert_eq!(
                    got, want,
                    "snapshot bytes, seed = {seed}, workers = {workers}"
                );
                // And the chaotic pause resumes to the uninterrupted run.
                let resumed = resume_threaded(&g, mk(), &got, workers).unwrap();
                assert!(resumed.outputs == serial_full.outputs, "resumed outputs");
                assert_eq!(resumed.metrics, serial_full.metrics, "resumed metrics");
            }
        }
    }

    #[test]
    fn timed_run_attributes_rounds() {
        // The timing probe must account every executed round exactly once
        // (skipped rounds are free) and leave the run itself untouched.
        let g = generators::random_tree(160, 9);
        let mk = || {
            (0..160)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 40,
                })
                .collect::<Vec<_>>()
        };
        let serial = crate::Engine::new(&g, Config::default()).run(mk()).unwrap();
        let mut t = PhaseTimes::default();
        let run = run_threaded_timed(&g, mk(), Config::default(), 4, &mut t).unwrap();
        assert_eq!(serial.metrics, run.metrics);
        assert!(serial.outputs == run.outputs);
        assert_eq!(
            t.rounds(),
            run.metrics.rounds - run.metrics.rounds_skipped,
            "every executed round lands in exactly one bucket"
        );
        assert!(t.dispatched_rounds > 0, "dense rounds must dispatch");
    }
}
