//! A multi-threaded executor with an owner-sharded parallel delivery
//! pipeline over a persistent worker pool.
//!
//! The serial [`Engine`](crate::Engine) is the reference implementation;
//! this executor demonstrates that the [`Program`] abstraction maps onto
//! real parallel hardware without giving up determinism: the two executors
//! agree **bit for bit** — equal outputs *and* equal [`Metrics`] — which
//! the integration tests assert at every worker count.
//!
//! # Design
//!
//! `workers` threads are spawned once per run and live across all rounds.
//! Each round the sorted awake set is split into at most `workers`
//! contiguous chunks at **equal degree-mass boundaries** (prefix sum over
//! `degree + 1` of the awake set), so a handful of hubs cannot serialize a
//! round the way count-based chunking would. Message routing and inbox
//! construction happen **inside the workers**; the coordinator is reduced
//! to synchronization and a deterministic merge:
//!
//! ```text
//!  main thread                      worker w (persistent)
//!  ───────────                      ─────────────────────
//!  pop awake set for round r
//!  partition by degree mass,
//!  publish {next_wake, chunk map}
//!  batch[w] ← chunk w programs ──▶  SEND: run send(), validate/expand
//!                                   via the shared checker, stage each
//!                                   delivered message into the outbound
//!                                   shard of its owner chunk
//!  merge tallies/spans/errors ◀──   (batch returns: shards + partials)
//!  EXCHANGE: transpose the k×k
//!  shard matrix (Vec swaps only)
//!  batch[w] ← shards 0..k→w    ──▶  DELIVER: drain incoming shards in
//!                                   chunk order into local per-recipient
//!                                   segments (born sorted by sender);
//!                                   RECEIVE: run receive() per node
//!  apply stays/sleeps/halts    ◀──  (batch returns: action partials)
//!  in node order, schedule_all
//! ```
//!
//! Determinism falls out of three invariants:
//!
//! * **Chunks are contiguous in node order** and senders within a chunk
//!   transmit in ascending order, so draining a recipient's incoming
//!   shards in source-chunk index order concatenates already-sorted runs
//!   — every inbox is born sorted by sender, exactly like the serial
//!   arena's.
//! * **All merges happen in chunk index order** (= node order): awake/span
//!   attribution, message tallies, stay-lane extension, batched wheel
//!   `schedule_all` and halt outputs — identical to the serial engine's
//!   per-node order.
//! * **Error precedence is by lowest node id**: a worker stops at its
//!   chunk's first error and the coordinator takes the first error of the
//!   lowest-indexed chunk, which is the error the serial engine would hit.
//!
//! Two channel messages per worker per phase, batches and shard buffers
//! recycled, worker-local segment pools retained across rounds: the steady
//! state allocates nothing per node-round. Rounds whose total degree mass
//! is tiny (see `INLINE_MASS`) run **inline** on the coordinator through
//! the very same phase functions — skip-ahead schedules spend most rounds
//! waking a handful of nodes, where two channel round-trips per worker
//! would dwarf the work; the inline path is a single-chunk instance of the
//! same pipeline, so results are identical by construction.
//!
//! Tracing rides the same merge discipline: when [`Config::trace`] is on,
//! each worker stages its chunk's [`TraceEvent`]s in node order (awake →
//! per-message delivered/lost in the send phase; sleep/halt in the receive
//! phase) and the coordinator absorbs the staged buffers **in chunk
//! order** through the shared capped tracer — so [`Run::trace`] (and
//! [`Run::trace_dropped`]) is bit-identical to the serial engine's at any
//! worker count, which the integration tests assert alongside the
//! `Metrics` equivalence.

use crate::arena::ChunkInboxes;
use crate::checkpoint::{
    decode_snapshot, encode_snapshot, rebuild_wheel, Codec, CrashIo, EngineStateRef, Paused,
    Persist, ProgramsRef, Reader, RestoredState, ResumeError, Snapshot, Writer,
};
use crate::engine::{next_awake_set, route_entries, seed_schedule, FaultCtx, NEVER};
use crate::faults::{DelayedMsg, FaultKind, FaultPlan};
use crate::metrics::Metrics;
use crate::program::{Action, Envelope, OutEntry, Outbox, Program, View};
use crate::trace::{TraceEvent, Tracer};
use crate::wheel::WakeWheel;
use crate::{Config, Round, Run, SimError};
use awake_graphs::{Graph, NodeId};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::RwLock;

enum Phase {
    Send,
    Receive,
}

/// One delivered message in an outbound owner shard: the recipient's dense
/// position within its owner chunk, plus the envelope to deliver.
struct ShardEntry<M> {
    to_local: u32,
    env: Envelope<M>,
}

/// Read-mostly per-round context shared with the workers.
///
/// The coordinator write-locks it between phases (when every worker is
/// idle at a barrier) to publish the new wake stamps and chunk map; each
/// worker read-locks it for the duration of one send batch. The lock is
/// therefore never contended — it exists to let the borrow checker accept
/// the sharing.
struct RoundCtx {
    /// `next_wake[v] = r`: `v` wakes at round `r`; [`NEVER`]: halted.
    next_wake: Vec<Round>,
    /// Position of `v` in this round's awake set; only meaningful when
    /// `next_wake[v]` equals the current round (the stamp that guards it).
    awake_pos: Vec<u32>,
    /// Chunk boundaries as positions into the awake set: chunk `c` owns
    /// positions `bounds[c]..bounds[c+1]`. Strictly increasing,
    /// `bounds[0] = 0`, last entry = awake length.
    bounds: Vec<u32>,
}

impl RoundCtx {
    /// The owner chunk of awake position `pos`.
    #[inline]
    fn chunk_of(&self, pos: u32) -> usize {
        self.bounds.partition_point(|&b| b <= pos) - 1
    }
}

/// Rounds whose total degree mass is at or below this run inline on the
/// coordinator (a single chunk through the same phase functions) instead
/// of being dispatched: sequential-greedy schedules wake a handful of
/// nodes per round for most rounds, and two channel round-trips per worker
/// dwarf a few hundred nanoseconds of node work.
const INLINE_MASS: u64 = 256;

/// Fill `prefix` with the cumulative **degree mass** (`degree + 1` per
/// node, so isolated nodes still weigh in) of the awake set; returns the
/// total. Caller scratch, capacity reused across rounds.
fn degree_mass_prefix(graph: &Graph, awake: &[u32], prefix: &mut Vec<u64>) -> u64 {
    prefix.clear();
    let mut acc = 0u64;
    for &v in awake {
        acc += graph.degree(NodeId(v)) as u64 + 1;
        prefix.push(acc);
    }
    acc
}

/// Split the awake set into `k` non-empty contiguous chunks of roughly
/// equal degree mass, given its mass prefix sum. Boundary `j` lands at the
/// prefix position where cumulative mass crosses `j/k` of the total,
/// clamped so every chunk keeps at least one node — a single hub holding
/// most of the degree mass gets a chunk of its own instead of dragging
/// half the round's work into one worker.
///
/// Requires `1 <= k <= prefix.len()`.
fn partition_by_mass(prefix: &[u64], k: usize, bounds: &mut Vec<u32>) {
    debug_assert!(k >= 1 && k <= prefix.len());
    let total = *prefix.last().expect("non-empty awake set");
    bounds.clear();
    bounds.push(0);
    for j in 1..k {
        let target = total * j as u64 / k as u64;
        let cut = prefix.partition_point(|&p| p <= target);
        let lo = bounds[j - 1] as usize + 1;
        let hi = prefix.len() - (k - j);
        bounds.push(cut.clamp(lo, hi) as u32);
    }
    bounds.push(prefix.len() as u32);
}

/// The fault hooks a worker needs per round: the (immutable) seeded plan
/// plus the [`Persist`] entry points of the concrete program type as
/// function pointers (see [`CrashIo`]), so the phase bodies carry no
/// `Persist` bound. Copied into each batch; the mutable fault state (the
/// delayed-message buffer) stays with the coordinator.
struct FaultHooks<P: Program> {
    plan: FaultPlan,
    crash_io: CrashIo<P>,
}

impl<P: Program> Clone for FaultHooks<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: Program> Copy for FaultHooks<P> {}

/// One worker's reusable unit of work: a contiguous chunk of the awake set
/// plus the buffers that carry its phase results back to the coordinator.
struct Batch<P: Program> {
    round: Round,
    phase: Phase,
    /// The chunk's `(node, program)` pairs, ascending by node.
    jobs: Vec<(u32, P)>,
    /// Recycled backing buffer of the worker-side outbox.
    out_items: Vec<OutEntry<P::Msg>>,
    /// Send result: per-job span, captured before `send` exactly as the
    /// serial engine attributes it.
    spans: Vec<&'static str>,
    /// Send phase: outbound messages sharded by the recipient's owner
    /// chunk. After the coordinator's exchange (a transpose of the k×k
    /// shard matrix) the same field carries the receive phase's *incoming*
    /// shards, indexed by source chunk.
    shards: Vec<Vec<ShardEntry<P::Msg>>>,
    /// Send result: message tallies of this chunk.
    sent: u64,
    delivered: u64,
    lost: u64,
    /// Fault plan + crash I/O of the run; `None` for fault-free runs.
    faults: Option<FaultHooks<P>>,
    /// Send result: injected-fault tallies of this chunk.
    fdropped: u64,
    fduplicated: u64,
    fdelayed: u64,
    /// Receive result: crash-restarts applied in this chunk.
    fcrashed: u64,
    /// Send result: messages fated to arrive in a later round, in the
    /// chunk's transmission order; the coordinator appends them (chunk
    /// order = node order) to the run's delayed buffer.
    delayed_out: Vec<DelayedMsg<P::Msg>>,
    /// `(node, start-of-round state)` of this chunk's nodes that crash
    /// this round, ascending by node. Written by the send phase (the blob
    /// is saved *before* the node acts), consumed by the receive phase.
    crashes: Vec<(u32, Vec<u8>)>,
    /// Receive result: nodes of this chunk that crash-restarted this
    /// round, ascending. [`Batch::stays`] conflates crashed nodes with
    /// voluntary stays, so the coordinator's recovery accounting needs the
    /// crashed set separately.
    crashed_nodes: Vec<u32>,
    /// Fault-delayed messages coming due this round for recipients in this
    /// chunk, staged by the coordinator between the phases; the receive
    /// phase delivers them after the regular shards and restores each
    /// touched inbox's sorted-by-sender invariant.
    late: Vec<ShardEntry<P::Msg>>,
    /// Scratch: chunk positions touched by late deliveries.
    late_locals: Vec<u32>,
    /// Receive result: nodes that chose [`Action::Stay`] — plus crashed
    /// nodes, which restart awake next round — ascending.
    stays: Vec<u32>,
    /// Receive result: `(wake round, node)` sleeps, ascending by node.
    sleeps: Vec<(Round, u32)>,
    /// Receive result: halted nodes with their outputs, ascending.
    halts: Vec<(u32, P::Output)>,
    /// First error of this chunk, in node order (the worker stops there).
    error: Option<SimError>,
    /// Whether to stage trace events (set from the run's [`Config::trace`]).
    trace_on: bool,
    /// Events staged by this chunk during the current phase, in the serial
    /// engine's per-node order; absorbed by the coordinator in chunk order.
    trace: Vec<TraceEvent>,
}

impl<P: Program> Batch<P> {
    fn new() -> Self {
        Batch {
            round: 0,
            phase: Phase::Send,
            jobs: Vec::new(),
            out_items: Vec::new(),
            spans: Vec::new(),
            shards: Vec::new(),
            sent: 0,
            delivered: 0,
            lost: 0,
            faults: None,
            fdropped: 0,
            fduplicated: 0,
            fdelayed: 0,
            fcrashed: 0,
            delayed_out: Vec::new(),
            crashes: Vec::new(),
            crashed_nodes: Vec::new(),
            late: Vec::new(),
            late_locals: Vec::new(),
            stays: Vec::new(),
            sleeps: Vec::new(),
            halts: Vec::new(),
            error: None,
            trace_on: false,
            trace: Vec::new(),
        }
    }
}

/// Stage one fated-to-arrive message: deliver into the outbound shard of
/// the recipient's owner chunk if the recipient is awake exactly now,
/// otherwise count it lost — the model's rule, shared by the regular and
/// duplicate delivery paths of the send phase.
#[allow(clippy::too_many_arguments)]
#[inline]
fn stage_delivery<M>(
    ctx: &RoundCtx,
    round: Round,
    from: NodeId,
    to: NodeId,
    msg: M,
    shards: &mut [Vec<ShardEntry<M>>],
    delivered: &mut u64,
    lost: &mut u64,
    trace_on: bool,
    trace: &mut Vec<TraceEvent>,
) {
    if ctx.next_wake[to.index()] == round {
        *delivered += 1;
        if trace_on {
            trace.push(TraceEvent::Delivered { round, from, to });
        }
        let pos = ctx.awake_pos[to.index()];
        let c = ctx.chunk_of(pos);
        shards[c].push(ShardEntry {
            to_local: pos - ctx.bounds[c],
            env: Envelope { from, msg },
        });
    } else {
        *lost += 1;
        if trace_on {
            trace.push(TraceEvent::Lost { round, from, to });
        }
    }
}

/// The send-phase body: run each job's `send`, validate and expand its
/// entries through the shared checker, and stage every delivered message
/// into the outbound shard of the recipient's owner chunk. Fills the
/// batch's span/tally/error partials. Called by the workers and — for
/// rounds too small to be worth dispatching — inline by the coordinator,
/// so both paths are the same code by construction.
fn run_send_phase<P: Program>(graph: &Graph, ctx: &RoundCtx, b: &mut Batch<P>) {
    // Monomorphized on fault presence, like the serial `step`: with
    // `FAULTY = false` the fate-roll closure below is dead code and the
    // fault-free send loop optimizes as if fault injection didn't exist.
    if b.faults.is_some() {
        run_send_phase_body::<P, true>(graph, ctx, b);
    } else {
        run_send_phase_body::<P, false>(graph, ctx, b);
    }
}

fn run_send_phase_body<P: Program, const FAULTY: bool>(
    graph: &Graph,
    ctx: &RoundCtx,
    b: &mut Batch<P>,
) {
    let n = graph.n();
    let round = b.round;
    let k = ctx.bounds.len() - 1;
    let Batch {
        jobs,
        out_items,
        spans,
        shards,
        sent,
        delivered,
        lost,
        faults,
        fdropped,
        fduplicated,
        fdelayed,
        delayed_out,
        crashes,
        error,
        trace_on,
        trace,
        ..
    } = b;
    if shards.len() < k {
        shards.resize_with(k, Vec::new);
    }
    spans.clear();
    trace.clear();
    let trace_on = *trace_on;
    (*sent, *delivered, *lost) = (0, 0, 0);
    (*fdropped, *fduplicated, *fdelayed) = (0, 0, 0);
    delayed_out.clear();
    crashes.clear();
    *error = None;
    let hooks = *faults;
    let mut outbox = Outbox::from_vec(std::mem::take(out_items));
    for (v, p) in jobs.iter_mut() {
        let vid = NodeId(*v);
        let view = View {
            round,
            me: vid,
            ident: graph.ident(vid),
            n,
            neighbors: graph.neighbors(vid),
        };
        spans.push(p.span());
        if trace_on {
            trace.push(TraceEvent::Awake { round, node: vid });
        }
        if FAULTY {
            if let Some(fh) = hooks {
                if fh.plan.crashes(round, *v) {
                    // Save the start-of-round state *before* the node
                    // acts: a crashed node loses this round's state
                    // changes but its sends still go out (they left
                    // before the crash).
                    let mut w = Writer::new();
                    (fh.crash_io.save)(p, &mut w);
                    crashes.push((*v, w.into_bytes()));
                }
            }
        }
        outbox.clear();
        p.send(&view, &mut outbox);
        let res = if !FAULTY {
            // A recipient is listening iff awake exactly now; if so, its
            // awake position stamp is valid and names its owner chunk.
            route_entries(graph, outbox.items.drain(..), vid, sent, |to, msg| {
                stage_delivery(
                    ctx, round, vid, to, msg, shards, delivered, lost, trace_on, trace,
                );
            })
        } else {
            {
                let fh = hooks.expect("FAULTY send phase implies hooks");
                // One fate roll per transmission, counted per sender per
                // round — the same sequence the serial engine rolls.
                let mut k = 0u32;
                route_entries(graph, outbox.items.drain(..), vid, sent, |to, msg| {
                    let fate = fh.plan.message_fate(round, vid.0, to.0, k);
                    k += 1;
                    match fate {
                        FaultKind::Deliver => stage_delivery(
                            ctx, round, vid, to, msg, shards, delivered, lost, trace_on, trace,
                        ),
                        FaultKind::Duplicate => {
                            *fduplicated += 1;
                            stage_delivery(
                                ctx,
                                round,
                                vid,
                                to,
                                msg.clone(),
                                shards,
                                delivered,
                                lost,
                                trace_on,
                                trace,
                            );
                            stage_delivery(
                                ctx, round, vid, to, msg, shards, delivered, lost, trace_on, trace,
                            );
                        }
                        FaultKind::Drop => {
                            *fdropped += 1;
                            if trace_on {
                                trace.push(TraceEvent::FaultDrop {
                                    round,
                                    from: vid,
                                    to,
                                });
                            }
                        }
                        FaultKind::Delay => {
                            *fdelayed += 1;
                            let until = round + fh.plan.delay_rounds;
                            if trace_on {
                                trace.push(TraceEvent::FaultDelay {
                                    round,
                                    from: vid,
                                    to,
                                    until,
                                });
                            }
                            delayed_out.push(DelayedMsg {
                                due: until,
                                from: vid,
                                to,
                                msg,
                            });
                        }
                    }
                })
            }
        };
        if let Err(e) = res {
            *error = Some(e);
            break;
        }
    }
    b.out_items = outbox.into_vec();
}

/// The receive-phase body: drain the incoming shards into the local
/// per-recipient segments, then run each job's `receive` and collect its
/// action into the stay/sleep/halt partials. Shared by workers and the
/// coordinator's inline path, like [`run_send_phase`].
fn run_receive_phase<P: Program>(
    graph: &Graph,
    b: &mut Batch<P>,
    inboxes: &mut ChunkInboxes<P::Msg>,
) {
    // Same monomorphization as the send phase: fault-free runs never pay
    // for the crash-restart or late-delivery checks below.
    if b.faults.is_some() {
        run_receive_phase_body::<P, true>(graph, b, inboxes);
    } else {
        run_receive_phase_body::<P, false>(graph, b, inboxes);
    }
}

fn run_receive_phase_body<P: Program, const FAULTY: bool>(
    graph: &Graph,
    b: &mut Batch<P>,
    inboxes: &mut ChunkInboxes<P::Msg>,
) {
    let n = graph.n();
    let round = b.round;
    let Batch {
        jobs,
        shards,
        faults,
        fcrashed,
        crashes,
        crashed_nodes,
        late,
        late_locals,
        stays,
        sleeps,
        halts,
        error,
        trace_on,
        trace,
        ..
    } = b;
    let trace_on = *trace_on;
    trace.clear();
    *fcrashed = 0;
    crashed_nodes.clear();
    // Local delivery: drain the incoming shards in source-chunk order.
    // Senders ascend within a chunk and chunks are contiguous in node
    // order, so each recipient's segment is a concatenation of sorted
    // runs in sender order — born sorted, same invariant as the serial
    // arena.
    inboxes.ensure(jobs.len());
    for shard in shards.iter_mut() {
        for e in shard.drain(..) {
            inboxes.push(e.to_local, e.env);
        }
    }
    // Fault-delayed messages coming due land after the ascending-sender
    // pass; deliver them, then restore each touched segment's
    // sorted-by-sender invariant (stable, so same-sender envelopes keep
    // their staging order — identical to the serial arena's resort).
    if FAULTY && !late.is_empty() {
        late_locals.clear();
        for e in late.drain(..) {
            late_locals.push(e.to_local);
            inboxes.push(e.to_local, e.env);
        }
        late_locals.sort_unstable();
        late_locals.dedup();
        for &l in late_locals.iter() {
            inboxes.resort(l as usize);
        }
        late_locals.clear();
    }
    stays.clear();
    sleeps.clear();
    halts.clear();
    *error = None;
    let mut crash_i = 0usize;
    for (i, (v, p)) in jobs.iter_mut().enumerate() {
        let vid = NodeId(*v);
        // A crashed node loses the round — inbox discarded, state rolled
        // back to start-of-round — and restarts awake next round.
        if FAULTY && crashes.get(crash_i).is_some_and(|c| c.0 == *v) {
            let blob = &crashes[crash_i].1;
            crash_i += 1;
            inboxes.clear(i);
            let mut r = Reader::new(blob);
            let io = faults.as_ref().expect("crash blobs imply fault hooks");
            (io.crash_io.restore)(p, &mut r)
                .expect("Persist round-trip: restore must accept its own save");
            if trace_on {
                trace.push(TraceEvent::Crash { round, node: vid });
            }
            *fcrashed += 1;
            crashed_nodes.push(*v);
            stays.push(*v);
            continue;
        }
        let view = View {
            round,
            me: vid,
            ident: graph.ident(vid),
            n,
            neighbors: graph.neighbors(vid),
        };
        let action = p.receive(&view, inboxes.inbox(i));
        // Clear while the segment header is hot (see `arena`).
        inboxes.clear(i);
        match action {
            Action::Stay => stays.push(*v),
            Action::SleepUntil(until) => {
                if until <= round {
                    *error = Some(SimError::InvalidSleep {
                        node: vid,
                        round,
                        until,
                    });
                    break;
                }
                if trace_on {
                    trace.push(TraceEvent::Sleep {
                        round,
                        node: vid,
                        until,
                    });
                }
                sleeps.push((until, *v));
            }
            Action::Halt => {
                if trace_on {
                    trace.push(TraceEvent::Halt { round, node: vid });
                }
                match p.output() {
                    Some(o) => halts.push((*v, o)),
                    None => {
                        *error = Some(SimError::MissingOutput(vid));
                        break;
                    }
                }
            }
        }
    }
    crashes.clear();
}

/// Merge one chunk's send partials into the run metrics: awake/span
/// attribution per node in chunk order (= node order, preserving the
/// serial engine's span interning order), then the message tallies, then
/// the staged trace events (absorbed through the shared capped tracer, so
/// the global event sequence and drop count match the serial engine's).
fn merge_send_partials<P: Program>(
    b: &mut Batch<P>,
    metrics: &mut Metrics,
    tracer: &mut Tracer,
    faults: Option<&mut FaultCtx<P>>,
) {
    for (&(v, _), &span) in b.jobs.iter().zip(b.spans.iter()) {
        metrics.note_awake(NodeId(v), span);
    }
    metrics.messages_sent += b.sent;
    metrics.messages_delivered += b.delivered;
    metrics.messages_lost += b.lost;
    metrics.faults_dropped += b.fdropped;
    metrics.faults_duplicated += b.fduplicated;
    metrics.faults_delayed += b.fdelayed;
    if let Some(f) = faults {
        // Chunk order = node order, so the run-wide delayed buffer grows
        // in the serial engine's transmission order.
        f.state.delayed.append(&mut b.delayed_out);
    }
    tracer.absorb(&mut b.trace);
}

/// Between the phases: resolve fault-delayed messages that have come due.
/// A delayed message is delivered only if its recipient is awake at
/// exactly its due round; a due round nobody executed (or an asleep
/// recipient) loses it — the model's rule, applied late. Deliverable
/// messages are staged into the `late` buffer of the recipient's owner
/// batch (`batches` is this round's chunk-ordered batch slice), in the
/// run-wide buffer order the serial engine drains.
fn resolve_due_delays<P: Program>(
    f: &mut FaultCtx<P>,
    round: Round,
    ctx: &RoundCtx,
    batches: &mut [Batch<P>],
    metrics: &mut Metrics,
    tracer: &mut Tracer,
) {
    if !f.state.delayed.iter().any(|d| d.due <= round) {
        return;
    }
    let mut kept = Vec::with_capacity(f.state.delayed.len());
    for d in f.state.delayed.drain(..) {
        if d.due > round {
            kept.push(d);
            continue;
        }
        let (due, from, to) = (d.due, d.from, d.to);
        if due == round && ctx.next_wake[to.index()] == round {
            metrics.messages_delivered += 1;
            tracer.push(|| TraceEvent::Delivered { round, from, to });
            let pos = ctx.awake_pos[to.index()];
            let c = ctx.chunk_of(pos);
            batches[c].late.push(ShardEntry {
                to_local: pos - ctx.bounds[c],
                env: Envelope { from, msg: d.msg },
            });
        } else {
            metrics.messages_lost += 1;
            tracer.push(|| TraceEvent::Lost {
                round: due,
                from,
                to,
            });
        }
    }
    f.state.delayed = kept;
}

/// Apply one chunk's receive partials in node order: stay lane extension
/// (chunks ascend, so the lane stays globally sorted), batched wheel
/// scheduling, halt outputs, wake stamps, staged trace events, and
/// program restoration. Returns whether this chunk touched recovery
/// accounting (a crashed or still-recovering node), so the coordinator can
/// bump [`Metrics::recovery_rounds`] once per round like the serial
/// engine.
#[allow(clippy::too_many_arguments)]
fn apply_receive_partials<P: Program>(
    b: &mut Batch<P>,
    round: Round,
    ctx: &mut RoundCtx,
    wheel: &mut WakeWheel,
    stay: &mut Vec<u32>,
    outputs: &mut [Option<P::Output>],
    slots: &mut [Option<P>],
    tracer: &mut Tracer,
    metrics: &mut Metrics,
    faults: Option<&mut FaultCtx<P>>,
) -> bool {
    tracer.absorb(&mut b.trace);
    metrics.faults_crashed += b.fcrashed;
    b.fcrashed = 0;
    // Recovery accounting, in the chunk's node order — the same merge the
    // serial engine's phase B does inline. A node that crashed this round
    // starts recovering (the crashed round itself is not recovery energy);
    // an awake node still marked recovering pays one recovery_awake round,
    // and its first non-`Stay` action (a sleep or halt partial) ends the
    // recovery. Recovering nodes are always awake — a crash forces the
    // node into the stay lane — so scanning the chunk's jobs sees them all.
    let mut touched = false;
    if let Some(f) = faults {
        let rec = &mut f.state.recovering;
        let (mut ci, mut si, mut hi) = (0usize, 0usize, 0usize);
        for &(v, _) in b.jobs.iter() {
            if b.crashed_nodes.get(ci).is_some_and(|&c| c == v) {
                ci += 1;
                rec[v as usize] = true;
                touched = true;
                continue;
            }
            if !rec[v as usize] {
                continue;
            }
            metrics.recovery_awake += 1;
            touched = true;
            while b.sleeps.get(si).is_some_and(|&(_, s)| s < v) {
                si += 1;
            }
            while b.halts.get(hi).is_some_and(|h| h.0 < v) {
                hi += 1;
            }
            let non_stay = b.sleeps.get(si).is_some_and(|&(_, s)| s == v)
                || b.halts.get(hi).is_some_and(|h| h.0 == v);
            if non_stay {
                rec[v as usize] = false;
            }
        }
        b.crashed_nodes.clear();
    }
    for &v in &b.stays {
        ctx.next_wake[v as usize] = round + 1;
    }
    stay.extend_from_slice(&b.stays);
    b.stays.clear();
    for &(until, v) in &b.sleeps {
        ctx.next_wake[v as usize] = until;
    }
    wheel.schedule_all(b.sleeps.drain(..));
    for (v, o) in b.halts.drain(..) {
        ctx.next_wake[v as usize] = NEVER;
        outputs[v as usize] = Some(o);
    }
    for (v, p) in b.jobs.drain(..) {
        slots[v as usize] = Some(p);
    }
    touched
}

fn worker_loop<P: Program>(
    graph: &Graph,
    shared: &RwLock<RoundCtx>,
    rx: Receiver<Batch<P>>,
    tx: Sender<Batch<P>>,
) {
    // Worker-local per-recipient segments; capacity persists across rounds.
    let mut inboxes: ChunkInboxes<P::Msg> = ChunkInboxes::new();
    while let Ok(mut b) = rx.recv() {
        match b.phase {
            Phase::Send => {
                let ctx = shared.read().expect("round context lock");
                run_send_phase(graph, &ctx, &mut b);
            }
            Phase::Receive => run_receive_phase(graph, &mut b, &mut inboxes),
        }
        if tx.send(b).is_err() {
            break;
        }
    }
}

/// How a threaded run starts: fresh programs at round 1, or programs plus
/// the decoded round-boundary state of a [`Snapshot`].
enum ThreadedInit<P: Program> {
    Fresh(Vec<P>),
    Restored {
        programs: Vec<P>,
        // boxed: RestoredState is a dozen Vecs wide, Fresh a single one
        state: Box<RestoredState<P::Msg, P::Output>>,
    },
}

/// What the core produced: a completed [`Run`], or the snapshot the run
/// paused into at its `pause_after` bound.
enum ThreadedOutcome<O> {
    Done(Run<O>),
    Paused(Snapshot),
}

/// Checkpoint control of one run: the pause bound and/or periodic emission
/// interval, plus the monomorphized snapshot encoder as a function pointer
/// — the executor core itself carries no [`Codec`] bounds (only the public
/// wrappers do, where `encode_snapshot::<P>` is instantiated).
struct CkptCtl<'a, P: Program> {
    /// Pause (into a returned snapshot) instead of executing any round
    /// beyond this bound.
    pause_after: Option<Round>,
    /// Hand a snapshot to `sink` whenever at least this many rounds have
    /// elapsed since the last one and more work is pending.
    every: Option<Round>,
    encode: for<'b> fn(&Graph, Config, EngineStateRef<'b, P>) -> Snapshot,
    sink: &'a mut dyn FnMut(&Snapshot),
}

/// The shared executor core behind [`run_threaded`] and its fault-aware /
/// checkpoint-aware variants: a persistent worker pool driven round by
/// round from a fresh or restored boundary, with optional seeded fault
/// injection and optional snapshotting at round boundaries. All observable
/// state lives coordinator-side between rounds, which is exactly what a
/// [`Snapshot`] captures — byte-identical to the serial engine's at the
/// same boundary.
fn run_threaded_core<P>(
    graph: &Graph,
    init: ThreadedInit<P>,
    config: Config,
    workers: usize,
    mut faults: Option<FaultCtx<P>>,
    mut ctl: Option<CkptCtl<'_, P>>,
) -> Result<ThreadedOutcome<P::Output>, SimError>
where
    P: Program + Send,
{
    let n = graph.n();
    let workers = workers.max(1);
    let (programs, restored) = match init {
        ThreadedInit::Fresh(p) => (p, None),
        ThreadedInit::Restored { programs, state } => (programs, Some(*state)),
    };
    if programs.len() != n {
        return Err(SimError::ProgramCountMismatch {
            got: programs.len(),
            expected: n,
        });
    }
    let mut metrics;
    let mut tracer;
    let mut outputs: Vec<Option<P::Output>>;
    let next_wake: Vec<Round>;
    let wheel_init: WakeWheel;
    let stay_init: Vec<u32>;
    let prev_round_init: Round;
    match restored {
        None => {
            metrics = Metrics::new(n);
            tracer = Tracer::new(config.trace);
            outputs = (0..n).map(|_| None).collect();
            let mut nw = Vec::with_capacity(n);
            let mut wheel = WakeWheel::new();
            seed_schedule(&programs, &mut wheel, &mut nw, &mut outputs)?;
            next_wake = nw;
            wheel_init = wheel;
            stay_init = Vec::new();
            prev_round_init = 0;
        }
        Some(rs) => {
            metrics = rs.metrics;
            tracer = rs.tracer;
            outputs = rs.outputs;
            next_wake = rs.next_wake;
            wheel_init = rebuild_wheel(&rs.wheel_events);
            stay_init = rs.stay;
            prev_round_init = rs.prev_round;
        }
    }
    let trace_on = tracer.enabled();
    if n == 0 {
        return Ok(ThreadedOutcome::Done(Run {
            outputs: vec![],
            metrics,
            trace: tracer.events,
            trace_dropped: tracer.dropped,
        }));
    }
    let mut wheel = wheel_init;
    let mut slots: Vec<Option<P>> = programs.into_iter().map(Some).collect();
    // The immutable per-round fault hooks workers need; the mutable fault
    // state (the delayed-message buffer) stays with the coordinator.
    let hooks: Option<FaultHooks<P>> = faults.as_ref().map(|f| FaultHooks {
        plan: f.state.plan,
        crash_io: f.crash_io,
    });
    if let Some(f) = faults.as_mut() {
        // Fresh runs start with an empty recovery bitset; restored runs
        // carry a validated length-n one (resize is then a no-op).
        f.state.recovering.resize(n, false);
    }

    let shared = RwLock::new(RoundCtx {
        next_wake,
        awake_pos: vec![0u32; n],
        bounds: Vec::new(),
    });

    // Per-worker channels, both directions; batches are recycled through
    // `pool`, so programs never travel through unbounded queues and the
    // per-round channel traffic is O(workers), not O(awake nodes).
    let mut job_txs: Vec<Sender<Batch<P>>> = Vec::with_capacity(workers);
    let mut job_rxs: Vec<Receiver<Batch<P>>> = Vec::with_capacity(workers);
    let mut done_txs: Vec<Sender<Batch<P>>> = Vec::with_capacity(workers);
    let mut done_rxs: Vec<Receiver<Batch<P>>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (jt, jr) = channel();
        let (dt, dr) = channel();
        job_txs.push(jt);
        job_rxs.push(jr);
        done_txs.push(dt);
        done_rxs.push(dr);
    }
    let mut pool: Vec<Option<Batch<P>>> = (0..workers).map(|_| Some(Batch::new())).collect();

    let result: Result<Option<Snapshot>, SimError> = std::thread::scope(|scope| {
        for (job_rx, done_tx) in job_rxs.drain(..).zip(done_txs.drain(..)) {
            let graph_ref = &*graph;
            let shared_ref = &shared;
            scope.spawn(move || worker_loop(graph_ref, shared_ref, job_rx, done_tx));
        }

        let mut awake: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut stay: Vec<u32> = stay_init;
        let mut prefix: Vec<u64> = Vec::new();
        let mut bounds: Vec<u32> = Vec::new();
        // Batches of the round in flight, in chunk index order.
        let mut inflight: Vec<Batch<P>> = Vec::with_capacity(workers);
        // Segment pool of the coordinator's inline path.
        let mut main_inboxes: ChunkInboxes<P::Msg> = ChunkInboxes::new();
        let mut prev_round: Round = prev_round_init;
        let mut last_emit: Round = prev_round_init;

        loop {
            // Peek the next pending round without committing anything, so
            // a pause bound can snapshot this exact boundary (the stay
            // lane, when occupied, always runs before any wheel wake-up).
            let next = if !stay.is_empty() {
                Some(prev_round + 1)
            } else {
                wheel.peek_min()
            };
            let Some(round) = next else { break };
            if let Some(c) = ctl.as_mut() {
                if c.pause_after.is_some_and(|bound| round > bound) {
                    let ctx = shared.read().expect("round context lock");
                    let st = EngineStateRef {
                        prev_round,
                        next_wake: &ctx.next_wake,
                        stay: &stay,
                        wheel_events: wheel.pending_events(),
                        outputs: &outputs,
                        programs: ProgramsRef::Slots(&slots),
                        metrics: &metrics,
                        tracer: &tracer,
                        faults: faults.as_ref().map(|f| &f.state),
                    };
                    return Ok(Some((c.encode)(graph, config, st)));
                }
            }
            let popped =
                next_awake_set(&mut wheel, &mut stay, prev_round, &mut awake, &mut scratch);
            debug_assert_eq!(popped, Some(round), "peek and pop must agree");
            if round > config.max_rounds {
                return Err(SimError::RoundBudgetExceeded {
                    limit: config.max_rounds,
                });
            }
            // Same skipped-round accounting as the serial `step_body`:
            // rounds the batch-cascade jumped over had no awake node.
            metrics.rounds_skipped += round - prev_round - 1;
            metrics.rounds = round;
            prev_round = round;
            let total_mass = degree_mass_prefix(graph, &awake, &mut prefix);
            let inline = workers == 1 || total_mass <= INLINE_MASS;
            let k = if inline { 1 } else { workers.min(awake.len()) };
            partition_by_mass(&prefix, k, &mut bounds);
            {
                let mut ctx = shared.write().expect("round context lock");
                ctx.bounds.clone_from(&bounds);
                for (i, &v) in awake.iter().enumerate() {
                    ctx.awake_pos[v as usize] = i as u32;
                }
            }

            if inline {
                // ---- inline path: one chunk, no dispatch. The same phase
                // functions the workers run, so results are identical by
                // construction; only the channel round-trips are skipped.
                let mut b = pool[0].take().expect("batch parked");
                b.round = round;
                b.phase = Phase::Send;
                b.trace_on = trace_on;
                b.faults = hooks;
                b.jobs.clear();
                for &v in &awake {
                    b.jobs
                        .push((v, slots[v as usize].take().expect("program present")));
                }
                {
                    let ctx = shared.read().expect("round context lock");
                    run_send_phase(graph, &ctx, &mut b);
                }
                if let Some(e) = b.error.take() {
                    return Err(e);
                }
                merge_send_partials(&mut b, &mut metrics, &mut tracer, faults.as_mut());
                if let Some(f) = faults.as_mut() {
                    let ctx = shared.read().expect("round context lock");
                    resolve_due_delays(
                        f,
                        round,
                        &ctx,
                        std::slice::from_mut(&mut b),
                        &mut metrics,
                        &mut tracer,
                    );
                }
                b.phase = Phase::Receive;
                run_receive_phase(graph, &mut b, &mut main_inboxes);
                if let Some(e) = b.error.take() {
                    return Err(e);
                }
                {
                    let mut ctx = shared.write().expect("round context lock");
                    let rec_round = apply_receive_partials(
                        &mut b,
                        round,
                        &mut ctx,
                        &mut wheel,
                        &mut stay,
                        &mut outputs,
                        &mut slots,
                        &mut tracer,
                        &mut metrics,
                        faults.as_mut(),
                    );
                    if rec_round {
                        metrics.recovery_rounds += 1;
                    }
                }
                pool[0] = Some(b);
            } else {
                // ---- send phase: workers route their own chunks ----
                for w in 0..k {
                    let mut b = pool[w].take().expect("batch parked");
                    b.round = round;
                    b.phase = Phase::Send;
                    b.trace_on = trace_on;
                    b.faults = hooks;
                    b.jobs.clear();
                    for &v in &awake[bounds[w] as usize..bounds[w + 1] as usize] {
                        b.jobs
                            .push((v, slots[v as usize].take().expect("program present")));
                    }
                    job_txs[w].send(b).expect("worker alive");
                }
                inflight.clear();
                for rx in done_rxs.iter().take(k) {
                    inflight.push(rx.recv().expect("worker reply"));
                }
                // Error precedence: chunks ascend in node order and a
                // worker stops at its chunk's first routing error, so the
                // first error of the lowest-indexed chunk is the serial
                // engine's error.
                for b in &mut inflight {
                    if let Some(e) = b.error.take() {
                        return Err(e);
                    }
                }
                // Deterministic metrics/trace merge, chunk by chunk in
                // node order.
                for b in &mut inflight {
                    merge_send_partials(b, &mut metrics, &mut tracer, faults.as_mut());
                }
                // Between the phases: route fault-delayed messages coming
                // due into their recipients' owner batches, exactly where
                // the serial engine resolves them.
                if let Some(f) = faults.as_mut() {
                    let ctx = shared.read().expect("round context lock");
                    resolve_due_delays(f, round, &ctx, &mut inflight, &mut metrics, &mut tracer);
                }
                // ---- exchange: transpose the k×k owner-shard matrix so
                // batch w's shards become the messages *addressed to*
                // chunk w, indexed by source chunk. Vec header swaps only
                // — the message payloads never move, and buffer capacity
                // stays in the pool.
                for w in 0..k {
                    let (left, right) = inflight.split_at_mut(w + 1);
                    for c in (w + 1)..k {
                        std::mem::swap(&mut left[w].shards[c], &mut right[c - w - 1].shards[w]);
                    }
                }

                // ---- receive phase: workers deliver and receive locally
                for (w, mut b) in inflight.drain(..).enumerate() {
                    b.phase = Phase::Receive;
                    job_txs[w].send(b).expect("worker alive");
                }
                for rx in done_rxs.iter().take(k) {
                    inflight.push(rx.recv().expect("worker reply"));
                }
                for b in &mut inflight {
                    if let Some(e) = b.error.take() {
                        return Err(e);
                    }
                }
                // Apply action partials in chunk order (= node order):
                // stay lane stays globally sorted, wake-ups enter the
                // wheel in the serial engine's schedule order, halt
                // outputs land in place.
                {
                    let mut ctx = shared.write().expect("round context lock");
                    let mut rec_round = false;
                    for (w, mut b) in inflight.drain(..).enumerate() {
                        rec_round |= apply_receive_partials(
                            &mut b,
                            round,
                            &mut ctx,
                            &mut wheel,
                            &mut stay,
                            &mut outputs,
                            &mut slots,
                            &mut tracer,
                            &mut metrics,
                            faults.as_mut(),
                        );
                        pool[w] = Some(b);
                    }
                    if rec_round {
                        metrics.recovery_rounds += 1;
                    }
                }
            }

            // Periodic snapshots, at this round's boundary, only while
            // more work is pending — the final state is the returned run.
            if let Some(c) = ctl.as_mut() {
                if let Some(every) = c.every {
                    if prev_round >= last_emit.saturating_add(every)
                        && (!stay.is_empty() || wheel.peek_min().is_some())
                    {
                        last_emit = prev_round;
                        let ctx = shared.read().expect("round context lock");
                        let st = EngineStateRef {
                            prev_round,
                            next_wake: &ctx.next_wake,
                            stay: &stay,
                            wheel_events: wheel.pending_events(),
                            outputs: &outputs,
                            programs: ProgramsRef::Slots(&slots),
                            metrics: &metrics,
                            tracer: &tracer,
                            faults: faults.as_ref().map(|f| &f.state),
                        };
                        let snap = (c.encode)(graph, config, st);
                        (c.sink)(&snap);
                    }
                }
            }
        }
        drop(job_txs);
        Ok(None)
    });
    if let Some(snapshot) = result? {
        return Ok(ThreadedOutcome::Paused(snapshot));
    }

    // Still-buffered delayed messages never found an executed due round
    // with an awake recipient: account them lost, like the serial engine.
    if let Some(f) = faults.as_mut() {
        for d in f.state.delayed.drain(..) {
            metrics.messages_lost += 1;
            tracer.push(|| TraceEvent::Lost {
                round: d.due,
                from: d.from,
                to: d.to,
            });
        }
    }
    let outputs = outputs
        .into_iter()
        .enumerate()
        .map(|(v, o)| o.ok_or(SimError::MissingOutput(NodeId(v as u32))))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ThreadedOutcome::Done(Run {
        outputs,
        metrics,
        trace: tracer.events,
        trace_dropped: tracer.dropped,
    }))
}

/// Run `programs` on `graph` using `workers` threads.
///
/// Semantics are identical to [`Engine::run`](crate::Engine::run); programs
/// must be deterministic for the executors to agree. The worker count does
/// not affect any observable result — it only changes how the awake set is
/// chunked.
///
/// # Errors
/// Same contract as the serial engine ([`SimError`]), with the serial
/// engine's error precedence (lowest node id first).
pub fn run_threaded<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Send,
{
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        None,
        None,
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Run `programs` under a seeded fault plan using `workers` threads.
///
/// Bit-for-bit identical to
/// [`Engine::run_faulty`](crate::Engine::run_faulty) under the same plan,
/// at any worker count.
///
/// # Errors
/// Same contract as [`run_threaded`].
pub fn run_threaded_faulty<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: &FaultPlan,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Persist + Send,
{
    let faults = FaultCtx::new(*plan, CrashIo::<P>::of());
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        Some(faults),
        None,
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Run until the next pending round would exceed `pause_after`, then
/// snapshot the paused state; completes normally if the run finishes
/// first. The snapshot is **byte-identical** to the serial
/// [`Engine::snapshot_at`](crate::Engine::snapshot_at) at the same bound —
/// between rounds all observable state lives with the coordinator, so the
/// worker count leaves no residue in the image.
///
/// # Errors
/// Any [`SimError`] from the rounds executed before the pause.
pub fn snapshot_at_threaded<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: Option<&FaultPlan>,
    pause_after: Round,
) -> Result<Paused<P::Output>, SimError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec,
{
    let faults = plan.map(|p| FaultCtx::new(*p, CrashIo::<P>::of()));
    let mut sink = |_: &Snapshot| {};
    let ctl = CkptCtl {
        pause_after: Some(pause_after),
        every: None,
        encode: encode_snapshot::<P>,
        sink: &mut sink,
    };
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        faults,
        Some(ctl),
    )? {
        ThreadedOutcome::Done(run) => Ok(Paused::Done(run)),
        ThreadedOutcome::Paused(snapshot) => Ok(Paused::Snapshot(snapshot)),
    }
}

/// Continue a snapshotted run to completion on the threaded executor,
/// bit-for-bit identical to the uninterrupted run (outputs, `Metrics`,
/// trace) — regardless of which executor or worker count produced the
/// snapshot. `programs` must be the same *initial* programs the original
/// run started from; their dynamic state is overwritten from the snapshot.
///
/// # Errors
/// [`ResumeError::Checkpoint`] if the snapshot is corrupt or does not
/// match `graph`; [`ResumeError::Sim`] for simulation errors after the
/// restore.
pub fn resume_threaded<P>(
    graph: &Graph,
    mut programs: Vec<P>,
    snapshot: &Snapshot,
    workers: usize,
) -> Result<Run<P::Output>, ResumeError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec,
{
    let n = graph.n();
    if programs.len() != n {
        return Err(ResumeError::Sim(SimError::ProgramCountMismatch {
            got: programs.len(),
            expected: n,
        }));
    }
    let mut state = decode_snapshot::<P>(graph, snapshot, &mut programs)?;
    let config = state.config;
    let faults = state
        .faults
        .take()
        .map(|s| FaultCtx::from_state(s, CrashIo::<P>::of()));
    match run_threaded_core(
        graph,
        ThreadedInit::Restored {
            programs,
            state: Box::new(state),
        },
        config,
        workers,
        faults,
        None,
    )
    .map_err(ResumeError::Sim)?
    {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

/// Run to completion on `workers` threads, handing a snapshot to `sink`
/// whenever at least `every` rounds have elapsed since the last one (none
/// once the run has finished — the final state is the returned [`Run`]).
/// Resuming from any emitted snapshot — on either executor — continues to
/// the same bit-for-bit result.
///
/// # Panics
/// If `every` is zero.
///
/// # Errors
/// Same contract as [`run_threaded`].
pub fn run_threaded_checkpointed<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
    plan: Option<&FaultPlan>,
    every: Round,
    mut sink: impl FnMut(&Snapshot),
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec,
{
    assert!(every > 0, "checkpoint interval must be at least 1 round");
    let faults = plan.map(|p| FaultCtx::new(*p, CrashIo::<P>::of()));
    let ctl = CkptCtl {
        pause_after: None,
        every: Some(every),
        encode: encode_snapshot::<P>,
        sink: &mut sink,
    };
    match run_threaded_core(
        graph,
        ThreadedInit::Fresh(programs),
        config,
        workers,
        faults,
        Some(ctl),
    )? {
        ThreadedOutcome::Done(run) => Ok(run),
        ThreadedOutcome::Paused(_) => unreachable!("no pause bound was set"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outbox;
    use awake_graphs::generators;

    /// Flood the maximum ident seen so far for `n` rounds, then halt.
    #[derive(Clone)]
    struct FloodMax {
        best: u64,
        rounds: u64,
    }

    impl Program for FloodMax {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, _view: &View, out: &mut Outbox<u64>) {
            out.broadcast(self.best);
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.best = self.best.max(view.ident);
            for e in inbox {
                self.best = self.best.max(e.msg);
            }
            if view.round >= self.rounds {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.best)
        }
    }

    fn assert_bitwise_equal<P>(g: &Graph, mk: impl Fn() -> Vec<P>, workers: &[usize])
    where
        P: Program + Send,
        P::Output: PartialEq,
    {
        let serial = crate::Engine::new(g, Config::default()).run(mk()).unwrap();
        for &w in workers {
            let par = run_threaded(g, mk(), Config::default(), w).unwrap();
            assert!(serial.outputs == par.outputs, "outputs, workers = {w}");
            assert_eq!(serial.metrics, par.metrics, "metrics, workers = {w}");
        }
        // Traced runs must agree event for event — including the drop
        // counter when the cap truncates (cap 500 bites on the larger
        // workloads, so both the kept prefix and the overflow accounting
        // are exercised).
        let cfg = Config {
            trace: crate::TraceMode::Capped(500),
            ..Config::default()
        };
        let serial = crate::Engine::new(g, cfg).run(mk()).unwrap();
        for &w in workers {
            let par = run_threaded(g, mk(), cfg, w).unwrap();
            assert_eq!(serial.trace, par.trace, "trace, workers = {w}");
            assert_eq!(
                serial.trace_dropped, par.trace_dropped,
                "trace_dropped, workers = {w}"
            );
        }
    }

    #[test]
    fn threaded_matches_serial_flood() {
        // 160 nodes: total degree mass (2m + n = 478) exceeds INLINE_MASS,
        // so dense rounds genuinely run the multi-chunk parallel pipeline.
        let g = generators::random_tree(160, 9);
        let mk = || {
            (0..160)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 170,
                })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 4, 8]);
        let run = run_threaded(&g, mk(), Config::default(), 4).unwrap();
        // everyone learned the max ident (tree has diameter < 170 rounds)
        assert!(run.outputs.iter().all(|&b| b == 160));
    }

    #[test]
    fn threaded_single_worker() {
        let g = generators::cycle(6);
        let progs = (0..6)
            .map(|_| FloodMax { best: 0, rounds: 3 })
            .collect::<Vec<_>>();
        let run = run_threaded(&g, progs, Config::default(), 1).unwrap();
        assert_eq!(run.metrics.rounds, 3);
    }

    #[test]
    fn more_workers_than_awake_nodes() {
        // Tiny awake set, tiny mass: the inline path absorbs the round.
        let g = generators::path(3);
        let progs = (0..3)
            .map(|_| FloodMax { best: 0, rounds: 3 })
            .collect::<Vec<_>>();
        let run = run_threaded(&g, progs, Config::default(), 16).unwrap();
        assert_eq!(run.outputs, vec![3, 3, 3]);
    }

    #[test]
    fn more_workers_than_awake_nodes_in_the_dispatched_path() {
        // K_20: only 20 awake nodes but degree mass 400 > INLINE_MASS, so
        // the round dispatches with k = 20 chunks under 32 workers — the
        // chunker must cap k at the awake count, one node per chunk.
        let g = generators::complete(20);
        let mk = || {
            (0..20)
                .map(|_| FloodMax { best: 0, rounds: 3 })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[32]);
        let run = run_threaded(&g, mk(), Config::default(), 32).unwrap();
        assert!(run.outputs.iter().all(|&b| b == 20));
    }

    #[test]
    fn threaded_detects_budget() {
        let g = generators::path(2);
        let progs = (0..2)
            .map(|_| FloodMax {
                best: 0,
                rounds: 100,
            })
            .collect::<Vec<_>>();
        let err = run_threaded(&g, progs, Config::with_max_rounds(5), 2).unwrap_err();
        assert_eq!(err, SimError::RoundBudgetExceeded { limit: 5 });
    }

    // ---- degree-weighted partitioning ----

    fn split(g: &Graph, awake: &[u32], k: usize) -> Vec<u32> {
        let (mut prefix, mut bounds) = (Vec::new(), Vec::new());
        degree_mass_prefix(g, awake, &mut prefix);
        partition_by_mass(&prefix, k, &mut bounds);
        bounds
    }

    #[test]
    fn partition_balances_uniform_degree_mass() {
        let g = generators::cycle(12); // every node mass 3
        let awake: Vec<u32> = (0..12).collect();
        assert_eq!(split(&g, &awake, 4), vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn partition_isolates_a_dominant_hub() {
        // Star: the hub (node 0) holds half the endpoint degree mass; the
        // splitter must give it a narrow chunk instead of dragging half
        // the leaves into worker 0.
        let g = generators::star(33); // hub degree 32, leaves degree 1
        let awake: Vec<u32> = (0..33).collect();
        let bounds = split(&g, &awake, 4);
        assert_eq!(bounds.len(), 5);
        assert_eq!((bounds[0], bounds[4]), (0, 33));
        assert!(
            bounds[1] == 1,
            "hub chunk must be the hub alone, got bounds {bounds:?}"
        );
        // every chunk non-empty and monotone
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partition_survives_single_node_and_k_equals_len() {
        let g = generators::path(4);
        assert_eq!(split(&g, &[2], 1), vec![0, 1]);
        let awake: Vec<u32> = (0..4).collect();
        assert_eq!(split(&g, &awake, 4), vec![0, 1, 2, 3, 4]);
    }

    // ---- degenerate shapes the chunker must survive ----

    /// Node 0 stays awake through `rounds`; everyone else halts at round 1:
    /// every later round has a single awake node under many workers.
    struct LoneStayer {
        rounds: u64,
        heard: u64,
    }

    impl Program for LoneStayer {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            out.broadcast(view.ident);
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.heard += inbox.len() as u64;
            if view.round >= self.rounds {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.heard)
        }
    }

    #[test]
    fn single_awake_node_rounds_under_many_workers() {
        let g = generators::star(6);
        let mk = || {
            (0..6)
                .map(|v| LoneStayer {
                    rounds: if v == 0 { 5 } else { 1 },
                    heard: 0,
                })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 4, 8]);
        let run = run_threaded(&g, mk(), Config::default(), 8).unwrap();
        // round 1: hub hears all 5 leaves; rounds 2..=5: hub is alone and
        // its broadcasts are lost to the halted leaves.
        assert_eq!(run.outputs[0], 5);
        assert_eq!(run.metrics.messages_lost, 4 * 5);
        assert_eq!(run.metrics.rounds, 5);
    }

    /// Wakes at `wake`, broadcasts once, halts — wheel wakes separated by
    /// long fully-asleep gaps the skip-ahead must jump over.
    struct GappedWake {
        wake: Round,
        heard: u64,
    }

    impl Program for GappedWake {
        type Msg = u64;
        type Output = u64;
        fn initial_wake(&self) -> Option<Round> {
            Some(self.wake)
        }
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            out.broadcast(view.ident);
        }
        fn receive(&mut self, _view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.heard = inbox.len() as u64;
            Action::Halt
        }
        fn output(&self) -> Option<u64> {
            Some(self.heard)
        }
    }

    #[test]
    fn empty_awake_gaps_between_wheel_wakes() {
        // Pairs meet at rounds 10, 1_000 and 10^9; every round in between
        // has no awake node and must be skipped, not chunked.
        let g = generators::path(6);
        let wakes = [10u64, 10, 1_000, 1_000, 1_000_000_000, 1_000_000_000];
        let mk = || {
            wakes
                .iter()
                .map(|&wake| GappedWake { wake, heard: 0 })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 4, 8]);
        let run = run_threaded(&g, mk(), Config::default(), 4).unwrap();
        assert_eq!(run.metrics.rounds, 1_000_000_000);
        assert_eq!(run.metrics.awake, vec![1; 6]);
        // each pair only hears its partner (outer neighbors sleep)
        assert_eq!(run.outputs, vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn hub_holding_most_degree_agrees_across_worker_counts() {
        // A star plus a leaf-path tail, big enough to stay above the
        // inline cutoff: the hub dominates the degree mass, exercising the
        // splitter's boundary clamps at every worker count.
        let mut b = awake_graphs::GraphBuilder::new(240);
        for v in 1..200u32 {
            b.edge(0, v);
        }
        for v in 200..240u32 {
            b.edge(v - 1, v);
        }
        let g = b.build().unwrap();
        let mk = || {
            (0..240)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 12,
                })
                .collect::<Vec<_>>()
        };
        assert_bitwise_equal(&g, mk, &[1, 2, 3, 4, 8, 16]);
    }

    // ---- error precedence matches the serial engine ----

    struct BadSendAt {
        bad: bool,
    }
    impl Program for BadSendAt {
        type Msg = ();
        type Output = ();
        fn send(&mut self, view: &View, out: &mut Outbox<()>) {
            if self.bad {
                // address a non-neighbor: 2 hops away on a path
                let target = NodeId((view.me.0 + 2) % view.n as u32);
                out.to(target, ());
            }
        }
        fn receive(&mut self, _: &View, _: &[Envelope<()>]) -> Action {
            Action::Halt
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn routing_error_reports_lowest_offending_node() {
        // Round 1 on P_200 has degree mass 598 > INLINE_MASS: the error
        // surfaces from the parallel path, where higher chunks' offenders
        // run concurrently and must lose to node 3's error.
        let g = generators::path(200);
        for workers in [1, 2, 4, 8] {
            let progs: Vec<BadSendAt> = (0..200).map(|v| BadSendAt { bad: v >= 3 }).collect();
            let err = run_threaded(&g, progs, Config::default(), workers).unwrap_err();
            let serial_err = crate::Engine::new(&g, Config::default())
                .run((0..200).map(|v| BadSendAt { bad: v >= 3 }).collect())
                .unwrap_err();
            assert_eq!(err, serial_err, "workers = {workers}");
            assert_eq!(
                err,
                SimError::NotANeighbor {
                    from: NodeId(3),
                    to: NodeId(5)
                }
            );
        }
    }

    struct SleepsBackward {
        offender: bool,
    }
    impl Program for SleepsBackward {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View, _: &mut Outbox<()>) {}
        fn receive(&mut self, view: &View, _: &[Envelope<()>]) -> Action {
            if view.round >= 2 && self.offender {
                Action::SleepUntil(view.round) // invalid: not in the future
            } else if view.round >= 3 {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn invalid_sleep_reports_lowest_offending_node() {
        // C_150 (mass 450): the offending round runs the parallel path.
        let g = generators::cycle(150);
        for workers in [1, 2, 4, 8] {
            let progs: Vec<SleepsBackward> = (0..150)
                .map(|v| SleepsBackward { offender: v >= 4 })
                .collect();
            let err = run_threaded(&g, progs, Config::default(), workers).unwrap_err();
            assert_eq!(
                err,
                SimError::InvalidSleep {
                    node: NodeId(4),
                    round: 2,
                    until: 2
                },
                "workers = {workers}"
            );
        }
    }
}
