//! A multi-threaded executor built on a persistent worker pool.
//!
//! The serial [`Engine`](crate::Engine) is the reference implementation;
//! this executor demonstrates that the [`Program`] abstraction maps onto
//! real parallel hardware without giving up determinism: the two executors
//! agree **bit for bit** — equal outputs *and* equal [`Metrics`] — which
//! the integration tests assert.
//!
//! # Design
//!
//! `workers` threads are spawned once per run and live across all rounds
//! (no per-node-round thread or channel traffic). Each round is two
//! barrier-synchronized phases over the sorted awake set, which is split
//! into at most `workers` **contiguous chunks**; each chunk travels to its
//! worker as one reusable `Batch` carrying the chunk's programs, and
//! comes back with the chunk's results — two channel messages per worker
//! per phase, independent of how many nodes are awake:
//!
//! ```text
//!   main thread                         worker w (persistent)
//!   ───────────                         ─────────────────────
//!   pop awake set for round r
//!   batch[w] ← programs of chunk w  ──▶ send() into the batch outbox
//!   replay outboxes in node order  ◀──  (batch returns, programs inside)
//!   flatten chunk inbox segments
//!   batch[w] ← contiguous inboxes   ──▶ receive() per node
//!   apply actions in node order    ◀──  (batch returns)
//! ```
//!
//! Merging strictly in node order makes scheduling, message routing,
//! metrics (including span attribution order) and outputs identical to the
//! serial engine's; the workers only compute, they never decide order.

use crate::arena::InboxArena;
use crate::engine::{next_awake_set, route_messages, seed_schedule, NEVER};
use crate::metrics::Metrics;
use crate::program::{Action, Envelope, OutEntry, Outbox, Program, View};
use crate::trace::Tracer;
use crate::wheel::WakeWheel;
use crate::{Config, Round, Run, SimError};
use awake_graphs::{Graph, NodeId};
use std::sync::mpsc::{channel, Receiver, Sender};

enum Phase {
    Send,
    Receive,
}

/// One worker's reusable unit of work: a contiguous chunk of the awake set.
struct Batch<P: Program> {
    round: Round,
    phase: Phase,
    /// The chunk's `(node, program)` pairs, ascending by node.
    jobs: Vec<(u32, P)>,
    /// Send phase: concatenated outbox entries of all jobs…
    out_items: Vec<OutEntry<P::Msg>>,
    /// …with per-job `(end offset, span)` (spans are captured before
    /// `send`, exactly as the serial engine attributes them).
    out_index: Vec<(u32, &'static str)>,
    /// Receive phase: the chunk's slice of the inbox arena…
    inbox: Vec<Envelope<P::Msg>>,
    /// …with per-job `[start, end)` offsets into it.
    inbox_ranges: Vec<(u32, u32)>,
    /// Receive phase: per-job chosen action.
    actions: Vec<Action>,
}

impl<P: Program> Batch<P> {
    fn new() -> Self {
        Batch {
            round: 0,
            phase: Phase::Send,
            jobs: Vec::new(),
            out_items: Vec::new(),
            out_index: Vec::new(),
            inbox: Vec::new(),
            inbox_ranges: Vec::new(),
            actions: Vec::new(),
        }
    }
}

fn worker_loop<P: Program>(graph: &Graph, rx: Receiver<Batch<P>>, tx: Sender<Batch<P>>) {
    let n = graph.n();
    while let Ok(mut b) = rx.recv() {
        match b.phase {
            Phase::Send => {
                let mut outbox = Outbox::from_vec(std::mem::take(&mut b.out_items));
                outbox.clear();
                b.out_index.clear();
                for (v, p) in &mut b.jobs {
                    let vid = NodeId(*v);
                    let view = View {
                        round: b.round,
                        me: vid,
                        ident: graph.ident(vid),
                        n,
                        neighbors: graph.neighbors(vid),
                    };
                    let span = p.span();
                    p.send(&view, &mut outbox);
                    b.out_index.push((outbox.len() as u32, span));
                }
                b.out_items = outbox.into_vec();
            }
            Phase::Receive => {
                b.actions.clear();
                let Batch {
                    round,
                    jobs,
                    inbox,
                    inbox_ranges,
                    actions,
                    ..
                } = &mut b;
                for ((v, p), &(start, end)) in jobs.iter_mut().zip(inbox_ranges.iter()) {
                    let vid = NodeId(*v);
                    let view = View {
                        round: *round,
                        me: vid,
                        ident: graph.ident(vid),
                        n,
                        neighbors: graph.neighbors(vid),
                    };
                    actions.push(p.receive(&view, &inbox[start as usize..end as usize]));
                }
            }
        }
        if tx.send(b).is_err() {
            break;
        }
    }
}

/// Run `programs` on `graph` using `workers` threads.
///
/// Semantics are identical to [`Engine::run`](crate::Engine::run); programs
/// must be deterministic for the executors to agree. The worker count does
/// not affect any observable result — it only changes how the awake set is
/// chunked.
///
/// # Errors
/// Same contract as the serial engine ([`SimError`]).
pub fn run_threaded<P>(
    graph: &Graph,
    programs: Vec<P>,
    config: Config,
    workers: usize,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Send,
{
    let n = graph.n();
    if programs.len() != n {
        return Err(SimError::ProgramCountMismatch {
            got: programs.len(),
            expected: n,
        });
    }
    let workers = workers.max(1);
    let mut metrics = Metrics::new(n);
    let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return Ok(Run {
            outputs: vec![],
            metrics,
            trace: vec![],
        });
    }

    let mut next_wake: Vec<Round> = Vec::with_capacity(n);
    let mut wheel = WakeWheel::new();
    seed_schedule(&programs, &mut wheel, &mut next_wake, &mut outputs)?;
    let mut slots: Vec<Option<P>> = programs.into_iter().map(Some).collect();

    // Per-worker channels, both directions; batches are recycled through
    // `pool`, so programs never travel through unbounded queues and the
    // per-round channel traffic is O(workers), not O(awake nodes).
    let mut job_txs: Vec<Sender<Batch<P>>> = Vec::with_capacity(workers);
    let mut job_rxs: Vec<Receiver<Batch<P>>> = Vec::with_capacity(workers);
    let mut done_txs: Vec<Sender<Batch<P>>> = Vec::with_capacity(workers);
    let mut done_rxs: Vec<Receiver<Batch<P>>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (jt, jr) = channel();
        let (dt, dr) = channel();
        job_txs.push(jt);
        job_rxs.push(jr);
        done_txs.push(dt);
        done_rxs.push(dr);
    }
    let mut pool: Vec<Option<Batch<P>>> = (0..workers).map(|_| Some(Batch::new())).collect();

    let result: Result<(), SimError> = std::thread::scope(|scope| {
        for (job_rx, done_tx) in job_rxs.drain(..).zip(done_txs.drain(..)) {
            let graph_ref = &*graph;
            scope.spawn(move || worker_loop(graph_ref, job_rx, done_tx));
        }

        let mut awake: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut stay: Vec<u32> = Vec::new();
        let mut arena: InboxArena<P::Msg> = InboxArena::new(n);
        let mut tracer = Tracer::new(crate::TraceMode::Off);
        let mut prev_round: Round = 0;

        while let Some(round) =
            next_awake_set(&mut wheel, &mut stay, prev_round, &mut awake, &mut scratch)
        {
            if round > config.max_rounds {
                return Err(SimError::RoundBudgetExceeded {
                    limit: config.max_rounds,
                });
            }
            metrics.rounds = round;
            prev_round = round;
            let chunk_size = awake.len().div_ceil(workers);
            let num_chunks = awake.len().div_ceil(chunk_size);

            // ---- send phase ----
            for (w, chunk) in awake.chunks(chunk_size).enumerate() {
                let mut b = pool[w].take().expect("batch parked");
                b.round = round;
                b.phase = Phase::Send;
                b.jobs.clear();
                for &v in chunk {
                    b.jobs
                        .push((v, slots[v as usize].take().expect("program present")));
                }
                job_txs[w].send(b).expect("worker alive");
            }
            for w in 0..num_chunks {
                let mut b = done_rxs[w].recv().expect("worker reply");
                // Replay this chunk's outboxes in node order through the
                // same routing path as the serial engine.
                let mut entries = b.out_items.drain(..);
                let mut start = 0u32;
                for (&(v, _), &(end, span)) in b.jobs.iter().zip(b.out_index.iter()) {
                    let vid = NodeId(v);
                    metrics.note_awake(vid, span);
                    route_messages(
                        graph,
                        entries.by_ref().take((end - start) as usize),
                        &next_wake,
                        round,
                        vid,
                        &mut arena,
                        &mut metrics,
                        &mut tracer,
                    )?;
                    start = end;
                }
                drop(entries);
                pool[w] = Some(b);
            }

            // ---- receive phase ----
            // Flatten each chunk's segments into the batch's contiguous
            // inbox buffer (a sequential move per segment), so one buffer
            // per worker travels regardless of how many nodes are awake.
            for (w, chunk) in awake.chunks(chunk_size).enumerate() {
                let mut b = pool[w].take().expect("batch parked");
                b.phase = Phase::Receive;
                b.inbox.clear();
                b.inbox_ranges.clear();
                for &v in chunk {
                    let range = arena.take_inbox_into(v, &mut b.inbox);
                    b.inbox_ranges.push(range);
                }
                job_txs[w].send(b).expect("worker alive");
            }
            for w in 0..num_chunks {
                let mut b = done_rxs[w].recv().expect("worker reply");
                for ((v, p), &action) in b.jobs.drain(..).zip(b.actions.iter()) {
                    let vid = NodeId(v);
                    match action {
                        Action::Stay => {
                            next_wake[v as usize] = round + 1;
                            stay.push(v);
                        }
                        Action::SleepUntil(until) => {
                            if until <= round {
                                return Err(SimError::InvalidSleep {
                                    node: vid,
                                    round,
                                    until,
                                });
                            }
                            next_wake[v as usize] = until;
                            wheel.schedule(until, v);
                        }
                        Action::Halt => {
                            next_wake[v as usize] = NEVER;
                            match p.output() {
                                Some(o) => outputs[v as usize] = Some(o),
                                None => return Err(SimError::MissingOutput(vid)),
                            }
                        }
                    }
                    slots[v as usize] = Some(p);
                }
                pool[w] = Some(b);
            }
        }
        drop(job_txs);
        Ok(())
    });
    result?;

    let outputs = outputs
        .into_iter()
        .enumerate()
        .map(|(v, o)| o.ok_or(SimError::MissingOutput(NodeId(v as u32))))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Run {
        outputs,
        metrics,
        trace: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outbox;
    use awake_graphs::generators;

    /// Flood the maximum ident seen so far for `n` rounds, then halt.
    #[derive(Clone)]
    struct FloodMax {
        best: u64,
        rounds: u64,
    }

    impl Program for FloodMax {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, _view: &View, out: &mut Outbox<u64>) {
            out.broadcast(self.best);
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.best = self.best.max(view.ident);
            for e in inbox {
                self.best = self.best.max(e.msg);
            }
            if view.round >= self.rounds {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.best)
        }
    }

    #[test]
    fn threaded_matches_serial_flood() {
        let g = generators::random_tree(40, 9);
        let mk = || {
            (0..40)
                .map(|_| FloodMax {
                    best: 0,
                    rounds: 40,
                })
                .collect::<Vec<_>>()
        };
        let serial = crate::Engine::new(&g, Config::default()).run(mk()).unwrap();
        let threaded = run_threaded(&g, mk(), Config::default(), 4).unwrap();
        assert_eq!(serial.outputs, threaded.outputs);
        assert_eq!(serial.metrics, threaded.metrics, "bit-for-bit metrics");
        // everyone learned the max ident (tree has diameter < 40 rounds)
        assert!(serial.outputs.iter().all(|&b| b == 40));
    }

    #[test]
    fn threaded_single_worker() {
        let g = generators::cycle(6);
        let progs = (0..6)
            .map(|_| FloodMax { best: 0, rounds: 3 })
            .collect::<Vec<_>>();
        let run = run_threaded(&g, progs, Config::default(), 1).unwrap();
        assert_eq!(run.metrics.rounds, 3);
    }

    #[test]
    fn more_workers_than_awake_nodes() {
        let g = generators::path(3);
        let progs = (0..3)
            .map(|_| FloodMax { best: 0, rounds: 3 })
            .collect::<Vec<_>>();
        let run = run_threaded(&g, progs, Config::default(), 16).unwrap();
        assert_eq!(run.outputs, vec![3, 3, 3]);
    }

    #[test]
    fn threaded_detects_budget() {
        let g = generators::path(2);
        let progs = (0..2)
            .map(|_| FloodMax {
                best: 0,
                rounds: 100,
            })
            .collect::<Vec<_>>();
        let err = run_threaded(&g, progs, Config::with_max_rounds(5), 2).unwrap_err();
        assert_eq!(err, SimError::RoundBudgetExceeded { limit: 5 });
    }
}
