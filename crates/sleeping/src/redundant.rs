//! Time-redundancy wrapping: fault tolerance for *any* program.
//!
//! [`Redundant<P>`] executes an inner [`Program`] on a stretched clock:
//! inner (*virtual*) round `v` occupies the window of real rounds
//! `(v-1)·S+1 ..= v·S`. During its window a node retransmits its virtual
//! round's messages in **every** real round (each copy tagged with the
//! virtual round and a per-message sequence number), buffers and
//! deduplicates the copies it hears, and steps the inner program exactly
//! once, at the window's last round. The inner program observes precisely
//! the unwrapped Sleeping-model semantics — same views, same sorted
//! inboxes, same round numbers (virtual) — so *any* deterministic program
//! gains fault tolerance without changing a line:
//!
//! * a **dropped** copy is covered by the window's surviving copies;
//! * a **duplicated** copy is removed by sequence-number deduplication;
//! * a **delayed** copy either lands later in the same window (absorbed)
//!   or carries a stale virtual-round tag and is discarded;
//! * a **crash-restart** rolls the wrapper back to its start-of-round
//!   state: a re-capture of the inner send is re-run deterministically, at
//!   most one real round of copies is lost in each direction, and the
//!   crash-forced wake-ups outside the node's scheduled windows simply
//!   re-issue the sleep until the next window.
//!
//! With `S = 2L+2`, any `L` crash-restarts per window per edge endpoint
//! leave at least one round in which a copy is both transmitted and
//! heard; [`crate::faults::redundancy_for`] sizes `S` from a
//! [`crate::FaultPlan`]'s rates. The cost is exact and closed-form: awake
//! and round complexity scale by `S` (plus crash-forced wake-ups), which
//! is what the lab's degraded budgets audit.
//!
//! The wrapper is itself a plain deterministic [`Program`], so serial /
//! threaded bit-for-bit equivalence and checkpoint/restore come for free;
//! [`Persist`] (for crash rollback and snapshots) requires only `P:
//! Persist` and a [`Codec`] message type.

use crate::checkpoint::{CheckpointError, Codec, Persist, Reader, Writer};
use crate::program::{Action, Envelope, OutEntry, Outbox, Program, View};
use crate::Round;
use awake_graphs::NodeId;

/// A message copy on the wire: `(virtual round, sequence number, payload)`.
///
/// The sequence number is the payload's index in the sender's virtual-round
/// outbox, so a receiver reassembles the exact unwrapped inbox — order
/// included — from any sufficient subset of copies.
pub type RedundantMsg<M> = (Round, u32, M);

/// Executes `P` with `S`-fold time redundancy; see the [module
/// docs](self) for the protocol and its guarantees.
#[derive(Debug, Clone)]
pub struct Redundant<P: Program> {
    inner: P,
    /// The stretch factor `S ≥ 1` (1 = no redundancy, pure relabeling).
    s: Round,
    /// The virtual round whose window this node last serviced (0 = none).
    cur: Round,
    /// Whether the inner send for `cur` has been captured.
    sent: bool,
    /// Whether `inner.receive(cur)` is still owed (set at capture, cleared
    /// when the window's inbox is delivered — possibly late, after
    /// crash-restarts pushed the node past its window's last round).
    pending: bool,
    /// The inner program's next scheduled virtual round (0 = halted).
    next_v: Round,
    /// Whether the inner program has halted.
    halted: bool,
    /// The captured inner outbox of `cur`, retransmitted every real round
    /// of the window: `(port or broadcast, payload)` in send order.
    cache: Vec<(Option<NodeId>, P::Msg)>,
    /// Copies heard for `cur`'s window, deduplicated by `(from, seq)`.
    buf: Vec<(u32, u32, P::Msg)>,
    /// Recycled backing buffer for capturing the inner send.
    scratch: Vec<OutEntry<P::Msg>>,
}

impl<P: Program> Redundant<P> {
    /// Wrap `inner` with stretch factor `s` (clamped to at least 1).
    pub fn new(inner: P, s: Round) -> Self {
        let s = s.max(1);
        let next_v = inner.initial_wake().unwrap_or(0);
        Redundant {
            inner,
            s,
            cur: 0,
            sent: false,
            pending: false,
            next_v,
            halted: false,
            cache: Vec::new(),
            buf: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The stretch factor.
    pub fn stretch(&self) -> Round {
        self.s
    }

    /// The wrapped program.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The virtual round whose window contains real `round`.
    #[inline]
    fn vround(&self, round: Round) -> Round {
        (round - 1) / self.s + 1
    }

    /// First real round of virtual round `v`'s window.
    #[inline]
    fn window_start(&self, v: Round) -> Round {
        (v - 1) * self.s + 1
    }

    /// Deliver window `v`'s buffered copies to the inner program as its
    /// virtual-round-`v` inbox and record its next schedule.
    fn step_inner(&mut self, v: Round, view: &View<'_>) {
        // (from, seq) ascending is exactly the unwrapped inbox order:
        // sorted by sending port, send order within a port.
        self.buf.sort_unstable_by_key(|&(from, seq, _)| (from, seq));
        let inbox: Vec<Envelope<P::Msg>> = self
            .buf
            .drain(..)
            .map(|(from, _, msg)| Envelope {
                from: NodeId(from),
                msg,
            })
            .collect();
        let iv = View {
            round: v,
            me: view.me,
            ident: view.ident,
            n: view.n,
            neighbors: view.neighbors,
        };
        let action = self.inner.receive(&iv, &inbox);
        self.pending = false;
        match action {
            Action::Stay => self.next_v = v + 1,
            Action::SleepUntil(u) => {
                debug_assert!(u > v, "inner slept into the past: {u} <= {v}");
                self.next_v = u;
            }
            Action::Halt => {
                self.next_v = 0;
                self.halted = true;
            }
        }
    }
}

impl<P: Program> Program for Redundant<P> {
    type Msg = RedundantMsg<P::Msg>;
    type Output = P::Output;

    fn initial_wake(&self) -> Option<Round> {
        self.inner.initial_wake().map(|v| self.window_start(v))
    }

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        if self.halted {
            return;
        }
        let v = self.vround(view.round);
        // A crash at the window's last round rolled back past the inner
        // step: deliver the (possibly thinned) buffered inbox late, before
        // anything else of this round.
        if self.pending && self.cur < v {
            let cur = self.cur;
            self.step_inner(cur, view);
            if self.halted {
                return;
            }
        }
        if self.next_v != v {
            // Off-schedule wake (crash-forced): nothing to transmit.
            return;
        }
        if self.cur != v {
            self.cur = v;
            self.sent = false;
            self.buf.clear();
        }
        if !self.sent {
            // Capture the inner send exactly once per window. A crash in
            // the capture round rolls `sent` (and the inner state) back,
            // so the deterministic re-capture next round is identical.
            let iv = View {
                round: v,
                me: view.me,
                ident: view.ident,
                n: view.n,
                neighbors: view.neighbors,
            };
            let mut ob = Outbox::from_vec(std::mem::take(&mut self.scratch));
            ob.clear();
            self.inner.send(&iv, &mut ob);
            self.cache.clear();
            self.cache.extend(ob.items.drain(..).map(|e| (e.to, e.msg)));
            self.scratch = ob.into_vec();
            self.sent = true;
            self.pending = true;
        }
        // Retransmit the whole captured outbox, every real round of the
        // window.
        for (seq, (to, msg)) in self.cache.iter().enumerate() {
            let tagged = (v, seq as u32, msg.clone());
            match to {
                Some(p) => out.to(*p, tagged),
                None => out.broadcast(tagged),
            }
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        if self.halted {
            // Only reachable when a late inner step (in this round's send)
            // halted the program.
            return Action::Halt;
        }
        let v = self.vround(view.round);
        if self.next_v == v {
            // Scheduled window: collect and deduplicate this round's
            // copies. Stale tags (delayed copies from earlier windows, or
            // neighbors in other windows) are the unwrapped model's lost
            // messages — discarded.
            for e in inbox {
                let (vr, seq, ref msg) = e.msg;
                if vr != v {
                    continue;
                }
                let from = e.from.0;
                if self.buf.iter().any(|&(f, q, _)| f == from && q == seq) {
                    continue;
                }
                self.buf.push((from, seq, msg.clone()));
            }
            let pos = view.round - self.window_start(v) + 1;
            if pos < self.s {
                return Action::Stay;
            }
            self.step_inner(v, view);
        }
        if self.halted {
            return Action::Halt;
        }
        // Sleep to the start of the next scheduled window; if it is the
        // very next real round, stay awake. Off-schedule wake-ups
        // (`next_v != v`, crash-forced) land here too: `next_v > v`
        // always, because the wrapper only sleeps to window starts.
        let target = self.window_start(self.next_v);
        if target == view.round + 1 {
            Action::Stay
        } else {
            Action::SleepUntil(target)
        }
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }

    fn span(&self) -> &'static str {
        self.inner.span()
    }
}

impl<P> Persist for Redundant<P>
where
    P: Program + Persist,
    P::Msg: Codec,
{
    fn save(&self, w: &mut Writer) {
        self.inner.save(w);
        self.cur.encode(w);
        self.sent.encode(w);
        self.pending.encode(w);
        self.next_v.encode(w);
        self.halted.encode(w);
        self.cache.encode(w);
        self.buf.encode(w);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.inner.restore(r)?;
        self.cur = Round::decode(r)?;
        self.sent = bool::decode(r)?;
        self.pending = bool::decode(r)?;
        self.next_v = Round::decode(r)?;
        self.halted = bool::decode(r)?;
        self.cache = Vec::decode(r)?;
        self.buf = Vec::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::redundancy_for;
    use crate::{Config, Engine, FaultPlan, Run};
    use awake_graphs::generators;

    /// Flood-max: every node repeatedly broadcasts the largest identifier
    /// it knows and halts with it once stable for `diam` rounds — enough
    /// structure to notice any timing or inbox corruption, and a
    /// deterministic output (the global max) to check validity against.
    #[derive(Clone, Debug)]
    struct FloodMax {
        best: u64,
        quiet: u64,
        need: u64,
    }

    impl Program for FloodMax {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, view: &View<'_>, out: &mut Outbox<u64>) {
            if view.round == 1 {
                self.best = view.ident;
            }
            out.broadcast(self.best);
        }
        fn receive(&mut self, _view: &View<'_>, inbox: &[Envelope<u64>]) -> Action {
            let before = self.best;
            for e in inbox {
                self.best = self.best.max(e.msg);
            }
            if self.best == before {
                self.quiet += 1;
            } else {
                self.quiet = 0;
            }
            if self.quiet >= self.need {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.best)
        }
    }

    impl Persist for FloodMax {
        fn save(&self, w: &mut Writer) {
            self.best.encode(w);
            self.quiet.encode(w);
        }
        fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
            self.best = u64::decode(r)?;
            self.quiet = u64::decode(r)?;
            Ok(())
        }
    }

    fn flood(n: usize) -> Vec<FloodMax> {
        (0..n)
            .map(|_| FloodMax {
                best: 0,
                quiet: 0,
                need: n as u64,
            })
            .collect()
    }

    fn run_plain(n: usize) -> Run<u64> {
        let g = generators::cycle(n);
        Engine::new(&g, Config::default()).run(flood(n)).unwrap()
    }

    fn run_wrapped(n: usize, s: Round, plan: Option<FaultPlan>) -> Run<u64> {
        let g = generators::cycle(n);
        let progs: Vec<Redundant<FloodMax>> =
            flood(n).into_iter().map(|p| Redundant::new(p, s)).collect();
        let eng = Engine::new(&g, Config::default());
        match plan {
            None => eng.run(progs).unwrap(),
            Some(p) => eng.run_faulty(progs, &p).unwrap(),
        }
    }

    #[test]
    fn fault_free_wrap_is_a_pure_time_dilation() {
        let plain = run_plain(7);
        for s in [1u64, 2, 3, 5] {
            let wrapped = run_wrapped(7, s, None);
            assert_eq!(wrapped.outputs, plain.outputs, "s={s}: outputs");
            assert_eq!(
                wrapped.metrics.rounds,
                plain.metrics.rounds * s,
                "s={s}: rounds scale exactly"
            );
            assert_eq!(
                wrapped.metrics.max_awake(),
                plain.metrics.max_awake() * s,
                "s={s}: awake scales exactly"
            );
        }
    }

    #[test]
    fn crashes_drops_dups_delays_do_not_change_the_output() {
        let plain = run_plain(9);
        let mut plan = FaultPlan::new(0xC0FFEE);
        plan.drop_ppm = 120_000;
        plan.dup_ppm = 60_000;
        plan.delay_ppm = 60_000;
        plan.delay_rounds = 1;
        plan.crash_ppm = 60_000;
        plan.quiet_after = 400;
        let s = redundancy_for(&plan, 9, plain.metrics.rounds);
        assert!(s >= 2, "plan must force real redundancy, got {s}");
        let run = run_wrapped(9, s, Some(plan));
        assert_eq!(run.outputs, plain.outputs, "degraded run stays valid");
        assert!(
            run.metrics.faults_crashed > 0 && run.metrics.faults_dropped > 0,
            "plan must actually fire: {:?}",
            run.metrics
        );
        assert!(
            run.metrics.recovery_awake > 0,
            "crash recovery must be accounted"
        );
    }

    #[test]
    fn crash_burst_at_decision_rounds_is_survived() {
        let plain = run_plain(6);
        let mut plan = FaultPlan::new(7);
        // Every node crashes in every burst round — the worst case the
        // 2L+2 sizing is built for.
        plan.crash_ppm = 1_000_000;
        plan.burst_start = 4;
        plan.burst_len = 2;
        let s = redundancy_for(&plan, 6, plain.metrics.rounds);
        assert_eq!(s, 2 * 2 + 2, "L=2 crashes per window");
        let run = run_wrapped(6, s, Some(plan));
        assert_eq!(run.outputs, plain.outputs);
        assert!(run.metrics.faults_crashed >= 6, "burst hits every node");
    }

    #[test]
    fn wrapper_persists_through_snapshot_and_restore() {
        let n = 8;
        let g = generators::cycle(n);
        let mut plan = FaultPlan::new(99);
        plan.crash_ppm = 80_000;
        plan.quiet_after = 300;
        let s = redundancy_for(&plan, n, 64);
        let mk = || -> Vec<Redundant<FloodMax>> {
            flood(n).into_iter().map(|p| Redundant::new(p, s)).collect()
        };
        let full = Engine::new(&g, Config::default())
            .run_faulty(mk(), &plan)
            .unwrap();
        // Pause mid-run (while crashes are still firing), resume, compare.
        let paused = Engine::new(&g, Config::default())
            .snapshot_at(mk(), Some(&plan), 9)
            .unwrap();
        let snap = match paused {
            crate::Paused::Snapshot(s) => s,
            crate::Paused::Done(_) => panic!("run finished before pause round"),
        };
        let resumed = Engine::new(&g, Config::default())
            .resume(mk(), &snap)
            .unwrap();
        assert_eq!(resumed.outputs, full.outputs, "resume diverged");
        assert_eq!(resumed.metrics, full.metrics, "metrics diverged");
    }
}
