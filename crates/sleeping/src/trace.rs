//! Optional execution tracing for debugging and tests.

use crate::Round;
use awake_graphs::NodeId;

/// How much tracing to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing (default).
    #[default]
    Off,
    /// Record up to this many events, then stop recording.
    Capped(usize),
}

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Node was awake at a round.
    Awake {
        /// Round number.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A message was delivered.
    Delivered {
        /// Round number.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
    },
    /// A message was lost (recipient asleep or halted).
    Lost {
        /// Round number.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// Node went to sleep until the given round.
    Sleep {
        /// Round at which the decision was made.
        round: Round,
        /// The node.
        node: NodeId,
        /// Wake-up round.
        until: Round,
    },
    /// Node halted.
    Halt {
        /// Round number.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A message was dropped in flight by an injected fault (distinct from
    /// [`Lost`](TraceEvent::Lost), the model's asleep-recipient loss).
    FaultDrop {
        /// Round number.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// A message was delayed in flight by an injected fault; its delivery
    /// will be attempted at `until`.
    FaultDelay {
        /// Round the message was sent.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round at which delivery is attempted.
        until: Round,
    },
    /// A node crash-restarted: its state changes of this round were lost
    /// and it resumes from its start-of-round state at the next round.
    Crash {
        /// Round number.
        round: Round,
        /// The node.
        node: NodeId,
    },
}

#[derive(Debug, Default)]
pub(crate) struct Tracer {
    mode: TraceMode,
    pub(crate) events: Vec<TraceEvent>,
    /// Events discarded past a [`TraceMode::Capped`] cap — surfaced on
    /// [`Run::trace_dropped`](crate::Run::trace_dropped) so a truncated
    /// trace cannot be mistaken for a complete one.
    pub(crate) dropped: u64,
}

impl Tracer {
    pub(crate) fn new(mode: TraceMode) -> Self {
        Tracer {
            mode,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether events should be recorded at all (the threaded executor's
    /// chunk descriptors stage events only when this is true).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    #[inline]
    pub(crate) fn push(&mut self, ev: impl FnOnce() -> TraceEvent) {
        match self.mode {
            TraceMode::Off => {}
            TraceMode::Capped(cap) => {
                if self.events.len() < cap {
                    self.events.push(ev());
                } else {
                    self.dropped += 1;
                }
            }
        }
    }

    /// Merge events staged elsewhere (the threaded executor's per-chunk
    /// staged buffers, absorbed in chunk index order), applying the same
    /// cap/drop accounting as [`push`](Self::push).
    pub(crate) fn absorb(&mut self, staged: &mut Vec<TraceEvent>) {
        for ev in staged.drain(..) {
            self.push(|| ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_tracer_stops_and_counts_drops() {
        let mut t = Tracer::new(TraceMode::Capped(2));
        for i in 0..5 {
            t.push(|| TraceEvent::Awake {
                round: i,
                node: NodeId(0),
            });
        }
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = Tracer::new(TraceMode::Off);
        t.push(|| TraceEvent::Halt {
            round: 1,
            node: NodeId(0),
        });
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 0);
        assert!(!t.enabled());
    }

    #[test]
    fn absorb_applies_the_same_cap() {
        let mut t = Tracer::new(TraceMode::Capped(3));
        let mut staged: Vec<TraceEvent> = (0..5)
            .map(|i| TraceEvent::Awake {
                round: i,
                node: NodeId(0),
            })
            .collect();
        t.absorb(&mut staged);
        assert!(staged.is_empty(), "staged buffer is drained");
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.dropped, 2);
    }
}
