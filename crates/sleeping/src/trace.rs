//! Optional execution tracing for debugging and tests.

use crate::Round;
use awake_graphs::NodeId;

/// How much tracing to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing (default).
    #[default]
    Off,
    /// Record up to this many events, then stop recording.
    Capped(usize),
}

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Node was awake at a round.
    Awake {
        /// Round number.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A message was delivered.
    Delivered {
        /// Round number.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
    },
    /// A message was lost (recipient asleep or halted).
    Lost {
        /// Round number.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// Node went to sleep until the given round.
    Sleep {
        /// Round at which the decision was made.
        round: Round,
        /// The node.
        node: NodeId,
        /// Wake-up round.
        until: Round,
    },
    /// Node halted.
    Halt {
        /// Round number.
        round: Round,
        /// The node.
        node: NodeId,
    },
}

#[derive(Debug, Default)]
pub(crate) struct Tracer {
    mode: TraceMode,
    pub(crate) events: Vec<TraceEvent>,
}

impl Tracer {
    pub(crate) fn new(mode: TraceMode) -> Self {
        Tracer {
            mode,
            events: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, ev: impl FnOnce() -> TraceEvent) {
        match self.mode {
            TraceMode::Off => {}
            TraceMode::Capped(cap) => {
                if self.events.len() < cap {
                    self.events.push(ev());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_tracer_stops() {
        let mut t = Tracer::new(TraceMode::Capped(2));
        for i in 0..5 {
            t.push(|| TraceEvent::Awake {
                round: i,
                node: NodeId(0),
            });
        }
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = Tracer::new(TraceMode::Off);
        t.push(|| TraceEvent::Halt {
            round: 1,
            node: NodeId(0),
        });
        assert!(t.events.is_empty());
    }
}
