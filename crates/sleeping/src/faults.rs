//! Deterministic, seeded fault injection for both executors.
//!
//! The Sleeping model already loses messages "for free" — a message to an
//! asleep node vanishes — so adversarial message loss and crash-restart are
//! natural robustness surfaces for the executors. A [`FaultPlan`] makes
//! them *deterministic*: every fault decision is a pure function of
//! `(plan.seed, round, endpoints, per-sender transmission index)`, so a
//! faulty run is exactly as reproducible as a clean one — same outputs,
//! same [`Metrics`](crate::Metrics), same trace, on the serial engine and
//! on the threaded executor at any worker count. That is what makes fault
//! campaigns testable to equality rather than statistically.
//!
//! Four fault kinds, rolled per transmission (one hash per message) or per
//! node-round (crashes):
//!
//! * **drop** — the message is silently discarded *in flight*. Distinct
//!   from the model's own loss: it is counted in
//!   [`Metrics::faults_dropped`](crate::Metrics::faults_dropped), not in
//!   `messages_lost`, and traced as [`TraceEvent::FaultDrop`].
//! * **duplicate** — the message is delivered twice (each copy then
//!   subject to the normal awake-recipient rule).
//! * **delay** — the message is buffered for
//!   [`delay_rounds`](FaultPlan::delay_rounds) rounds; it is delivered
//!   only if its recipient happens to be awake at exactly the due round,
//!   and is otherwise lost (the model's rule, applied late).
//! * **crash** — an awake node loses all state changes of the current
//!   round: its start-of-round state is saved through
//!   [`Persist`](crate::Persist), its sends still go out (they left the
//!   node before the crash), its inbox is discarded, and it restarts from
//!   the saved state at the next round.
//!
//! [`TraceEvent::FaultDrop`]: crate::TraceEvent::FaultDrop

use crate::Round;
use awake_graphs::NodeId;

/// One full roll range: fault probabilities are in parts-per-million.
pub const PPM_SCALE: u32 = 1_000_000;

const MSG_SALT: u64 = 0x6d65_7373_6167_6573; // "messages"
const CRASH_SALT: u64 = 0x6372_6173_6865_7321; // "crashes!"

/// splitmix64 finalizer: the avalanche stage used to derive independent
/// per-decision rolls from the plan seed.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fate of one transmission under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Delivered normally (the overwhelmingly common roll).
    Deliver,
    /// Discarded in flight.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Buffered for [`FaultPlan::delay_rounds`] rounds.
    Delay,
}

/// A seeded, deterministic fault-injection plan.
///
/// Probabilities are in parts per million and are checked in the fixed
/// precedence drop → duplicate → delay against a single per-transmission
/// roll, so `drop_ppm + dup_ppm + delay_ppm` must be at most [`PPM_SCALE`]
/// for each probability to be honored exactly. Crashes are rolled
/// independently, once per awake node-round.
///
/// The same plan produces the same faults on the serial engine and the
/// threaded executor at any worker count: decisions depend only on the
/// seed, the round, the endpoints, and the sender's per-round transmission
/// index — never on scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Probability (ppm) that a transmission is dropped in flight.
    pub drop_ppm: u32,
    /// Probability (ppm) that a transmission is duplicated.
    pub dup_ppm: u32,
    /// Probability (ppm) that a transmission is delayed.
    pub delay_ppm: u32,
    /// Probability (ppm) that an awake node crash-restarts this round.
    pub crash_ppm: u32,
    /// How many rounds a delayed message is held before its delivery is
    /// attempted (must be ≥ 1; the message is lost unless its recipient is
    /// awake at exactly `round + delay_rounds`).
    pub delay_rounds: Round,
}

impl FaultPlan {
    /// A plan that injects nothing; set the ppm fields to taste.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            crash_ppm: 0,
            delay_rounds: 1,
        }
    }

    #[inline]
    fn roll(&self, salt: u64, a: u64, b: u64, c: u64) -> u64 {
        mix(self.seed ^ mix(salt ^ mix(a ^ mix(b ^ mix(c)))))
    }

    /// The fate of the `k`-th transmission of node `from` at `round`,
    /// addressed to `to`. Pure: both executors call this with identical
    /// arguments regardless of chunking, so they roll identical fates.
    #[inline]
    pub fn message_fate(&self, round: Round, from: u32, to: u32, k: u32) -> FaultKind {
        if self.drop_ppm == 0 && self.dup_ppm == 0 && self.delay_ppm == 0 {
            return FaultKind::Deliver;
        }
        let pair = ((from as u64) << 32) | to as u64;
        let r = (self.roll(MSG_SALT, round, pair, k as u64) % PPM_SCALE as u64) as u32;
        if r < self.drop_ppm {
            FaultKind::Drop
        } else if r < self.drop_ppm + self.dup_ppm {
            FaultKind::Duplicate
        } else if r < self.drop_ppm + self.dup_ppm + self.delay_ppm {
            FaultKind::Delay
        } else {
            FaultKind::Deliver
        }
    }

    /// Whether `node` crash-restarts at `round` (rolled once per awake
    /// node-round, independent of the message rolls).
    #[inline]
    pub fn crashes(&self, round: Round, node: u32) -> bool {
        self.crash_ppm > 0
            && (self.roll(CRASH_SALT, round, node as u64, 0) % PPM_SCALE as u64)
                < self.crash_ppm as u64
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0 || self.dup_ppm > 0 || self.delay_ppm > 0 || self.crash_ppm > 0
    }
}

/// One delayed in-flight message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DelayedMsg<M> {
    /// Round at which delivery is attempted.
    pub(crate) due: Round,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) msg: M,
}

/// The mutable fault-injection state of a run: the plan plus the buffer of
/// delayed in-flight messages (part of a checkpoint, so a resumed faulty
/// run replays the exact same deliveries).
#[derive(Debug)]
pub(crate) struct FaultState<M> {
    pub(crate) plan: FaultPlan,
    /// Delayed messages in decision order (= sender node order within each
    /// round, rounds ascending) — both executors append identically.
    pub(crate) delayed: Vec<DelayedMsg<M>>,
}

impl<M> FaultState<M> {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            delayed: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_always_delivers() {
        let p = FaultPlan::new(7);
        assert!(!p.is_active());
        for k in 0..100 {
            assert_eq!(p.message_fate(3, 0, 1, k), FaultKind::Deliver);
            assert!(!p.crashes(3, k));
        }
    }

    #[test]
    fn fates_are_deterministic_and_seed_sensitive() {
        let mut a = FaultPlan::new(1);
        a.drop_ppm = 250_000;
        a.dup_ppm = 250_000;
        a.delay_ppm = 250_000;
        let b = FaultPlan { seed: 2, ..a };
        let fates_a: Vec<_> = (0..64).map(|k| a.message_fate(5, 3, 4, k)).collect();
        let fates_a2: Vec<_> = (0..64).map(|k| a.message_fate(5, 3, 4, k)).collect();
        let fates_b: Vec<_> = (0..64).map(|k| b.message_fate(5, 3, 4, k)).collect();
        assert_eq!(fates_a, fates_a2, "same plan, same fates");
        assert_ne!(fates_a, fates_b, "different seeds diverge");
        // with 75% fault mass, all four kinds should appear in 64 rolls
        for kind in [
            FaultKind::Deliver,
            FaultKind::Drop,
            FaultKind::Duplicate,
            FaultKind::Delay,
        ] {
            assert!(fates_a.contains(&kind), "missing {kind:?}");
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut p = FaultPlan::new(42);
        p.drop_ppm = 100_000; // 10%
        let n = 20_000;
        let drops = (0..n)
            .filter(|&k| p.message_fate(1, 0, 1, k) == FaultKind::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn crash_rolls_are_independent_of_message_rolls() {
        let mut p = FaultPlan::new(9);
        p.crash_ppm = 500_000;
        let crashes: Vec<bool> = (0..64).map(|v| p.crashes(2, v)).collect();
        assert!(crashes.iter().any(|&c| c));
        assert!(crashes.iter().any(|&c| !c));
        assert_eq!(
            crashes,
            (0..64).map(|v| p.crashes(2, v)).collect::<Vec<_>>()
        );
    }
}
