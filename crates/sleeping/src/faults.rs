//! Deterministic, seeded fault injection for both executors.
//!
//! The Sleeping model already loses messages "for free" — a message to an
//! asleep node vanishes — so adversarial message loss and crash-restart are
//! natural robustness surfaces for the executors. A [`FaultPlan`] makes
//! them *deterministic*: every fault decision is a pure function of
//! `(plan.seed, round, endpoints, per-sender transmission index)`, so a
//! faulty run is exactly as reproducible as a clean one — same outputs,
//! same [`Metrics`](crate::Metrics), same trace, on the serial engine and
//! on the threaded executor at any worker count. That is what makes fault
//! campaigns testable to equality rather than statistically.
//!
//! Four fault kinds, rolled per transmission (one hash per message) or per
//! node-round (crashes):
//!
//! * **drop** — the message is silently discarded *in flight*. Distinct
//!   from the model's own loss: it is counted in
//!   [`Metrics::faults_dropped`](crate::Metrics::faults_dropped), not in
//!   `messages_lost`, and traced as [`TraceEvent::FaultDrop`].
//! * **duplicate** — the message is delivered twice (each copy then
//!   subject to the normal awake-recipient rule).
//! * **delay** — the message is buffered for
//!   [`delay_rounds`](FaultPlan::delay_rounds) rounds; it is delivered
//!   only if its recipient happens to be awake at exactly the due round,
//!   and is otherwise lost (the model's rule, applied late).
//! * **crash** — an awake node loses all state changes of the current
//!   round: its start-of-round state is saved through
//!   [`Persist`](crate::Persist), its sends still go out (they left the
//!   node before the crash), its inbox is discarded, and it restarts from
//!   the saved state at the next round.
//!
//! [`TraceEvent::FaultDrop`]: crate::TraceEvent::FaultDrop

use crate::Round;
use awake_graphs::NodeId;

/// One full roll range: fault probabilities are in parts-per-million.
pub const PPM_SCALE: u32 = 1_000_000;

const MSG_SALT: u64 = 0x6d65_7373_6167_6573; // "messages"
const CRASH_SALT: u64 = 0x6372_6173_6865_7321; // "crashes!"

/// splitmix64 finalizer: the avalanche stage used to derive independent
/// per-decision rolls from the plan seed.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fate of one transmission under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Delivered normally (the overwhelmingly common roll).
    Deliver,
    /// Discarded in flight.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Buffered for [`FaultPlan::delay_rounds`] rounds.
    Delay,
}

/// A seeded, deterministic fault-injection plan.
///
/// Probabilities are in parts per million and are checked in the fixed
/// precedence drop → duplicate → delay against a single per-transmission
/// roll, so `drop_ppm + dup_ppm + delay_ppm` must be at most [`PPM_SCALE`]
/// for each probability to be honored exactly. Crashes are rolled
/// independently, once per awake node-round.
///
/// The same plan produces the same faults on the serial engine and the
/// threaded executor at any worker count: decisions depend only on the
/// seed, the round, the endpoints, and the sender's per-round transmission
/// index — never on scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Probability (ppm) that a transmission is dropped in flight.
    pub drop_ppm: u32,
    /// Probability (ppm) that a transmission is duplicated.
    pub dup_ppm: u32,
    /// Probability (ppm) that a transmission is delayed.
    pub delay_ppm: u32,
    /// Probability (ppm) that an awake node crash-restarts this round.
    pub crash_ppm: u32,
    /// How many rounds a delayed message is held before its delivery is
    /// attempted (must be ≥ 1; the message is lost unless its recipient is
    /// awake at exactly `round + delay_rounds`).
    pub delay_rounds: Round,
    /// First round of the injection window (with [`burst_len`]). Outside
    /// the window every roll is suppressed: messages deliver, nodes don't
    /// crash. `burst_len == 0` disables the window (faults everywhere),
    /// regardless of this field.
    ///
    /// [`burst_len`]: FaultPlan::burst_len
    pub burst_start: Round,
    /// Length of the injection window starting at
    /// [`burst_start`](FaultPlan::burst_start); `0` means "no window" —
    /// faults are injected at every round. Targeted adversaries (crash
    /// bursts at decision rounds, drop bursts along tree phases) are built
    /// from this.
    pub burst_len: Round,
    /// No fault is injected at or after this round — the *quiet period*
    /// of the recovery contract: after the last fault, the run must still
    /// produce a valid output within the degraded budget. `0` means "never
    /// quiet" (no guarantee horizon).
    pub quiet_after: Round,
}

impl FaultPlan {
    /// A plan that injects nothing; set the ppm fields to taste.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            crash_ppm: 0,
            delay_rounds: 1,
            burst_start: 0,
            burst_len: 0,
            quiet_after: 0,
        }
    }

    /// Whether faults may be injected at `round`: inside the burst window
    /// (if any) and before the quiet period (if any). Pure, like the rolls
    /// it gates.
    #[inline]
    pub fn in_window(&self, round: Round) -> bool {
        (self.quiet_after == 0 || round < self.quiet_after)
            && (self.burst_len == 0
                || (round >= self.burst_start
                    && round < self.burst_start.saturating_add(self.burst_len)))
    }

    #[inline]
    fn roll(&self, salt: u64, a: u64, b: u64, c: u64) -> u64 {
        mix(self.seed ^ mix(salt ^ mix(a ^ mix(b ^ mix(c)))))
    }

    /// The fate of the `k`-th transmission of node `from` at `round`,
    /// addressed to `to`. Pure: both executors call this with identical
    /// arguments regardless of chunking, so they roll identical fates.
    #[inline]
    pub fn message_fate(&self, round: Round, from: u32, to: u32, k: u32) -> FaultKind {
        if self.drop_ppm == 0 && self.dup_ppm == 0 && self.delay_ppm == 0 {
            return FaultKind::Deliver;
        }
        if !self.in_window(round) {
            return FaultKind::Deliver;
        }
        let pair = ((from as u64) << 32) | to as u64;
        let r = (self.roll(MSG_SALT, round, pair, k as u64) % PPM_SCALE as u64) as u32;
        if r < self.drop_ppm {
            FaultKind::Drop
        } else if r < self.drop_ppm + self.dup_ppm {
            FaultKind::Duplicate
        } else if r < self.drop_ppm + self.dup_ppm + self.delay_ppm {
            FaultKind::Delay
        } else {
            FaultKind::Deliver
        }
    }

    /// Whether `node` crash-restarts at `round` (rolled once per awake
    /// node-round, independent of the message rolls).
    #[inline]
    pub fn crashes(&self, round: Round, node: u32) -> bool {
        self.crash_ppm > 0
            && self.in_window(round)
            && (self.roll(CRASH_SALT, round, node as u64, 0) % PPM_SCALE as u64)
                < self.crash_ppm as u64
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0 || self.dup_ppm > 0 || self.delay_ppm > 0 || self.crash_ppm > 0
    }
}

/// One delayed in-flight message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DelayedMsg<M> {
    /// Round at which delivery is attempted.
    pub(crate) due: Round,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) msg: M,
}

/// The mutable fault-injection state of a run: the plan plus the buffer of
/// delayed in-flight messages (part of a checkpoint, so a resumed faulty
/// run replays the exact same deliveries).
#[derive(Debug)]
pub(crate) struct FaultState<M> {
    pub(crate) plan: FaultPlan,
    /// Delayed messages in decision order (= sender node order within each
    /// round, rounds ascending) — both executors append identically.
    pub(crate) delayed: Vec<DelayedMsg<M>>,
    /// `recovering[v]`: node `v` has crash-restarted and has not yet taken
    /// a non-[`Stay`](crate::Action::Stay) action — its awake rounds are
    /// recovery overhead, counted in
    /// [`Metrics::recovery_awake`](crate::Metrics::recovery_awake). Sized
    /// to the node count by the executors; part of a snapshot.
    pub(crate) recovering: Vec<bool>,
}

impl<M> FaultState<M> {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            delayed: Vec::new(),
            recovering: Vec::new(),
        }
    }
}

/// The largest window the redundancy sizer will recommend; wider windows
/// multiply every awake and round budget, so plans hot enough to need more
/// are clamped here and covered best-effort (the suite's validity gate
/// still checks the outcome).
pub const MAX_REDUNDANCY: Round = 64;

/// The maximum number of crash rolls any single node takes within any
/// window of `win` consecutive rounds, enumerated exactly over rounds
/// `1..=horizon`. Deterministic in the plan, so both the budget model and
/// the wrapper sizing see the same adversary.
fn max_window_crashes(plan: &FaultPlan, n: usize, horizon: Round, win: Round) -> u64 {
    let mut worst = 0u64;
    let mut hits: Vec<Round> = Vec::new();
    for v in 0..n as u32 {
        hits.clear();
        for r in 1..=horizon {
            if plan.crashes(r, v) {
                hits.push(r);
            }
        }
        let mut lo = 0usize;
        for hi in 0..hits.len() {
            while hits[hi] - hits[lo] >= win {
                lo += 1;
            }
            worst = worst.max((hi - lo + 1) as u64);
        }
    }
    worst
}

/// The time-redundancy window `S` that makes a run of `base_rounds` rounds
/// on `n` nodes tolerate `plan` when every program is wrapped in
/// [`Redundant`](crate::Redundant): each inner round is stretched to `S`
/// real rounds, every message is re-sent at each of them, so a node that
/// loses `L` rounds of a window to crashes (and messages delayed by up to
/// `delay_rounds`) still observes every inner-round exchange.
///
/// Returns `1` (no stretching) for an inactive plan. Otherwise `S` is the
/// maximum of: `2`, `2L + 2` where `L` is the exact worst per-node crash
/// count in any [`MAX_REDUNDANCY`]-round window over a conservative
/// horizon, and `delay_rounds + 2` when delays are enabled — clamped to
/// [`MAX_REDUNDANCY`]. Drops are covered by the surviving copies (each
/// transmission is rolled independently per real round), which the suite
/// verifies per seed rather than by construction.
pub fn redundancy_for(plan: &FaultPlan, n: usize, base_rounds: Round) -> Round {
    if !plan.is_active() {
        return 1;
    }
    let mut need: Round = 2;
    if plan.delay_ppm > 0 {
        need = need.max(plan.delay_rounds.saturating_add(2));
    }
    if plan.crash_ppm > 0 {
        let horizon = base_rounds
            .saturating_mul(8)
            .saturating_add(MAX_REDUNDANCY)
            .min(1 << 20);
        let l = if (n as u64).saturating_mul(horizon) <= 16_000_000 {
            max_window_crashes(plan, n, horizon, MAX_REDUNDANCY)
        } else {
            // Enumeration would be slower than the run itself: fall back
            // to an 8× margin over the expected crash count per window.
            (MAX_REDUNDANCY * plan.crash_ppm as u64 * 8)
                .div_ceil(PPM_SCALE as u64)
                .max(1)
        };
        need = need.max(2 * l + 2);
    }
    need.clamp(2, MAX_REDUNDANCY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_always_delivers() {
        let p = FaultPlan::new(7);
        assert!(!p.is_active());
        for k in 0..100 {
            assert_eq!(p.message_fate(3, 0, 1, k), FaultKind::Deliver);
            assert!(!p.crashes(3, k));
        }
    }

    #[test]
    fn fates_are_deterministic_and_seed_sensitive() {
        let mut a = FaultPlan::new(1);
        a.drop_ppm = 250_000;
        a.dup_ppm = 250_000;
        a.delay_ppm = 250_000;
        let b = FaultPlan { seed: 2, ..a };
        let fates_a: Vec<_> = (0..64).map(|k| a.message_fate(5, 3, 4, k)).collect();
        let fates_a2: Vec<_> = (0..64).map(|k| a.message_fate(5, 3, 4, k)).collect();
        let fates_b: Vec<_> = (0..64).map(|k| b.message_fate(5, 3, 4, k)).collect();
        assert_eq!(fates_a, fates_a2, "same plan, same fates");
        assert_ne!(fates_a, fates_b, "different seeds diverge");
        // with 75% fault mass, all four kinds should appear in 64 rolls
        for kind in [
            FaultKind::Deliver,
            FaultKind::Drop,
            FaultKind::Duplicate,
            FaultKind::Delay,
        ] {
            assert!(fates_a.contains(&kind), "missing {kind:?}");
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut p = FaultPlan::new(42);
        p.drop_ppm = 100_000; // 10%
        let n = 20_000;
        let drops = (0..n)
            .filter(|&k| p.message_fate(1, 0, 1, k) == FaultKind::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn burst_window_and_quiet_period_gate_all_rolls() {
        let mut p = FaultPlan::new(3);
        p.drop_ppm = 900_000;
        p.crash_ppm = 900_000;
        p.burst_start = 10;
        p.burst_len = 5;
        // outside the burst: everything delivers, nobody crashes
        for r in (1..10).chain(15..40) {
            for k in 0..8 {
                assert_eq!(p.message_fate(r, 0, 1, k), FaultKind::Deliver, "round {r}");
            }
            assert!(!p.crashes(r, 0), "round {r}");
        }
        // inside the burst the 90% rates bite
        let in_burst = (10..15)
            .flat_map(|r| (0..8).map(move |k| (r, k)))
            .filter(|&(r, k)| p.message_fate(r, 0, 1, k) == FaultKind::Drop)
            .count();
        assert!(in_burst > 20, "drops inside the burst: {in_burst}");
        assert!((10..15).any(|r| p.crashes(r, 0)));
        // quiet_after wins over the window
        p.quiet_after = 12;
        assert!(p.in_window(11));
        assert!(!p.in_window(12));
        assert_eq!(p.message_fate(13, 0, 1, 0), FaultKind::Deliver);
        assert!(!p.crashes(13, 0));
    }

    #[test]
    fn redundancy_sizing() {
        // inactive plan: no stretching
        assert_eq!(redundancy_for(&FaultPlan::new(1), 16, 100), 1);
        // message-only faults: minimal window
        let mut p = FaultPlan::new(1);
        p.drop_ppm = 100_000;
        assert_eq!(redundancy_for(&p, 16, 100), 2);
        // delays must fit inside the window
        p.delay_ppm = 50_000;
        p.delay_rounds = 3;
        assert_eq!(redundancy_for(&p, 16, 100), 5);
        // crashes widen it to 2L + 2 and it stays clamped
        let mut c = FaultPlan::new(9);
        c.crash_ppm = 30_000;
        let s = redundancy_for(&c, 32, 200);
        assert!((2..=MAX_REDUNDANCY).contains(&s), "s = {s}");
        // a quiet plan with crashes confined to a short burst sizes from
        // the actual rolls, not the rate
        let mut q = FaultPlan::new(9);
        q.crash_ppm = 1_000_000;
        q.burst_start = 5;
        q.burst_len = 2;
        let s = redundancy_for(&q, 8, 50);
        assert_eq!(s, 2 * 2 + 2, "two guaranteed crashes per window");
    }

    #[test]
    fn crash_rolls_are_independent_of_message_rolls() {
        let mut p = FaultPlan::new(9);
        p.crash_ppm = 500_000;
        let crashes: Vec<bool> = (0..64).map(|v| p.crashes(2, v)).collect();
        assert!(crashes.iter().any(|&c| c));
        assert!(crashes.iter().any(|&c| !c));
        assert_eq!(
            crashes,
            (0..64).map(|v| p.crashes(2, v)).collect::<Vec<_>>()
        );
    }
}
