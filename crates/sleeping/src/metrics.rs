//! Awake-complexity and message accounting.

use crate::Round;
use awake_graphs::NodeId;
use std::collections::BTreeMap;

/// Resource accounting for one execution.
///
/// The two headline numbers of the Sleeping model are
/// [`max_awake`](Metrics::max_awake) (the *awake complexity*) and
/// [`rounds`](Metrics::rounds) (the *round complexity*). Spans attribute
/// awake rounds to algorithm phases (driven by [`crate::Program::span`]),
/// which is how the experiment harness reports per-lemma budgets.
///
/// Span labels are interned on first use: each distinct label gets a small
/// integer id and a dense per-node counter column, so the executor's
/// per-node-round accounting is a table lookup plus an increment — no
/// per-node map structures on the hot path. Executions that attribute the
/// same rounds to the same spans in the same order compare equal, which is
/// what the serial/threaded bit-for-bit equivalence tests assert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of awake rounds per node.
    pub awake: Vec<u64>,
    /// Last round at which any node was awake (round complexity).
    pub rounds: Round,
    /// Messages handed to the engine.
    pub messages_sent: u64,
    /// Messages received by an awake node.
    pub messages_delivered: u64,
    /// Messages lost because the recipient was asleep or halted.
    pub messages_lost: u64,
    /// Messages discarded in flight by an injected fault
    /// ([`FaultPlan`](crate::FaultPlan) drops — distinct from the model's
    /// own [`messages_lost`](Metrics::messages_lost)).
    pub faults_dropped: u64,
    /// Messages duplicated in flight by an injected fault (each copy then
    /// delivered or lost normally).
    pub faults_duplicated: u64,
    /// Messages delayed in flight by an injected fault.
    pub faults_delayed: u64,
    /// Node crash-restarts injected by a fault plan.
    pub faults_crashed: u64,
    /// Rounds in which at least one node was recovering from a crash (the
    /// crashed round itself, or a post-crash awake round before the node's
    /// first non-`Stay` action). Zero on fault-free runs — the counter is
    /// only touched on the fault-monomorphized executor paths.
    pub recovery_rounds: u64,
    /// Awake node-rounds spent recovering: after a crash-restart, every
    /// awake round of that node until its first non-`Stay` action. This is
    /// the *energy overhead* of recovery — the quantity the degraded
    /// budgets bound.
    pub recovery_awake: u64,
    /// Total awake node-round events executed — the Sleeping model's cost
    /// unit, and what the event-compressed executors' work is proportional
    /// to. Always equals [`total_awake`](Metrics::total_awake), but kept as
    /// a running counter so reports read it in O(1).
    pub awake_events: u64,
    /// Virtual rounds jumped over without per-round work: rounds in which
    /// no node was awake, skipped by the wheel's batch-cascade. Together
    /// with [`rounds`](Metrics::rounds) this quantifies the compression
    /// (`rounds = executed rounds + rounds_skipped` for a run that starts
    /// at round 1).
    pub rounds_skipped: u64,
    /// Interned span labels, in first-seen order.
    span_names: Vec<&'static str>,
    /// One dense per-node counter column per interned span:
    /// `span_counts[s][v]` = awake rounds of node `v` attributed to span `s`.
    span_counts: Vec<Vec<u64>>,
}

impl Metrics {
    /// Fresh metrics for `n` nodes (also useful for external accounting,
    /// e.g. the Lemma 8 composition helper in `awake-core`).
    pub fn new(n: usize) -> Self {
        Metrics {
            awake: vec![0; n],
            rounds: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_lost: 0,
            faults_dropped: 0,
            faults_duplicated: 0,
            faults_delayed: 0,
            faults_crashed: 0,
            recovery_rounds: 0,
            recovery_awake: 0,
            awake_events: 0,
            rounds_skipped: 0,
            span_names: Vec::new(),
            span_counts: Vec::new(),
        }
    }

    /// The span table for checkpointing: `(labels, per-node counter columns)`.
    pub(crate) fn span_data(&self) -> (&[&'static str], &[Vec<u64>]) {
        (&self.span_names, &self.span_counts)
    }

    /// Overwrite the span table from a checkpoint. Content-based interning
    /// in [`span_id`](Metrics::span_id) keeps restored labels equal to the
    /// originals even though they are distinct allocations.
    pub(crate) fn restore_span_data(&mut self, names: Vec<&'static str>, counts: Vec<Vec<u64>>) {
        debug_assert_eq!(names.len(), counts.len());
        self.span_names = names;
        self.span_counts = counts;
    }

    /// The id of `span`, interning it on first use.
    ///
    /// Labels come from [`crate::Program::span`], so there are a handful per
    /// execution: a linear scan (pointer comparison first) beats any map.
    #[inline]
    fn span_id(&mut self, span: &'static str) -> usize {
        if let Some(id) = self
            .span_names
            .iter()
            .position(|&s| std::ptr::eq(s, span) || s == span)
        {
            return id;
        }
        self.span_names.push(span);
        self.span_counts.push(vec![0; self.awake.len()]);
        self.span_names.len() - 1
    }

    /// Record one awake round for `v`, attributed to `span`.
    #[inline]
    pub fn note_awake(&mut self, v: NodeId, span: &'static str) {
        self.awake[v.index()] += 1;
        self.awake_events += 1;
        let id = self.span_id(span);
        self.span_counts[id][v.index()] += 1;
    }

    /// The awake complexity: `max_v` (#rounds `v` was awake).
    pub fn max_awake(&self) -> u64 {
        self.awake.iter().copied().max().unwrap_or(0)
    }

    /// The `q`-th percentile of the per-node awake distribution
    /// (see [`percentile`]): how many rounds the typical (p50) or the
    /// near-worst (p99) node was awake — the audit columns that catch hot
    /// *nodes*, not just the maximum.
    pub fn awake_percentile(&self, q: u8) -> u64 {
        percentile(&self.awake, q)
    }

    /// Median per-node awake rounds (`awake_percentile(50)`).
    pub fn awake_p50(&self) -> u64 {
        self.awake_percentile(50)
    }

    /// 99th-percentile per-node awake rounds (`awake_percentile(99)`).
    pub fn awake_p99(&self) -> u64 {
        self.awake_percentile(99)
    }

    /// Average awake rounds per node (the *node-averaged* awake complexity).
    pub fn avg_awake(&self) -> f64 {
        if self.awake.is_empty() {
            0.0
        } else {
            self.awake.iter().sum::<u64>() as f64 / self.awake.len() as f64
        }
    }

    /// Total awake node-rounds (≈ simulation work).
    pub fn total_awake(&self) -> u64 {
        self.awake.iter().sum()
    }

    /// All span labels seen, in first-recorded order.
    pub fn span_names(&self) -> &[&'static str] {
        &self.span_names
    }

    /// Max over nodes of awake rounds attributed to `span`.
    pub fn span_max_awake(&self, span: &str) -> u64 {
        self.span_names
            .iter()
            .position(|&s| s == span)
            .map(|id| self.span_counts[id].iter().copied().max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// All span labels seen, with `(max-per-node, total)` awake rounds.
    pub fn span_summary(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for (id, &name) in self.span_names.iter().enumerate() {
            let col = &self.span_counts[id];
            let max = col.iter().copied().max().unwrap_or(0);
            let total: u64 = col.iter().sum();
            let e = out.entry(name).or_insert((0, 0));
            e.0 = e.0.max(max);
            e.1 += total;
        }
        out
    }
}

/// Coordinator-side wall-clock attribution for the threaded executor's
/// pipeline, collected by [`crate::threaded::run_threaded_timed`].
///
/// The accumulators are nanosecond totals over the whole run; the
/// `*_ns_per_round` accessors divide by the number of rounds that actually
/// exercised the corresponding stage, so the numbers stay comparable across
/// runs with different inline/dispatched mixes. Attribution is from the
/// coordinator's point of view: `route`/`deliver` time includes the
/// coordinator *helping* (stealing descriptors) while it waits, which is
/// exactly the wall-clock cost a caller observes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Popping the next awake set, mass-partitioning it into chunks and
    /// publishing the round context plus per-chunk job batches.
    pub partition_ns: u64,
    /// Dispatched rounds: waiting (and helping) until every send
    /// descriptor is executed — routing, fault fate rolls, shard staging.
    pub route_ns: u64,
    /// Dispatched rounds: waiting (and helping) until every receive
    /// descriptor is executed — shard draining and `Program::receive`.
    pub deliver_ns: u64,
    /// Coordinator-side merging of partial results in chunk order: metric
    /// tallies, span attribution, trace absorption, delayed-message
    /// resolution and action application.
    pub merge_ns: u64,
    /// Rounds absorbed whole by the coordinator's inline fast path
    /// (single chunk, no descriptor traffic), end to end.
    pub inline_ns: u64,
    /// Rounds that went through the dispatched multi-chunk pipeline.
    pub dispatched_rounds: u64,
    /// Rounds taken by the inline fast path.
    pub inline_rounds: u64,
}

impl PhaseTimes {
    /// Total executed rounds covered by this accounting.
    pub fn rounds(&self) -> u64 {
        self.dispatched_rounds + self.inline_rounds
    }

    #[inline]
    fn per(ns: u64, rounds: u64) -> f64 {
        if rounds == 0 {
            0.0
        } else {
            ns as f64 / rounds as f64
        }
    }

    /// Partition time per executed round (inline and dispatched alike).
    pub fn partition_ns_per_round(&self) -> f64 {
        Self::per(self.partition_ns, self.rounds())
    }

    /// Send-descriptor (route) wait time per dispatched round.
    pub fn route_ns_per_round(&self) -> f64 {
        Self::per(self.route_ns, self.dispatched_rounds)
    }

    /// Receive-descriptor (deliver) wait time per dispatched round.
    pub fn deliver_ns_per_round(&self) -> f64 {
        Self::per(self.deliver_ns, self.dispatched_rounds)
    }

    /// Merge/apply time per dispatched round.
    pub fn merge_ns_per_round(&self) -> f64 {
        Self::per(self.merge_ns, self.dispatched_rounds)
    }

    /// Inline fast-path time per inline round.
    pub fn inline_ns_per_round(&self) -> f64 {
        Self::per(self.inline_ns, self.inline_rounds)
    }
}

/// Nearest-rank percentile of `values` (`q` in `0..=100`): the smallest
/// element with at least `⌈q·n/100⌉` elements `≤` it. `q = 0` is the
/// minimum, `q = 100` the maximum; an empty slice yields `0`. Exact and
/// deterministic — no interpolation — so report columns derived from it
/// stay byte-stable.
pub fn percentile(values: &[u64], q: u8) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    percentile_of_sorted(&sorted, q)
}

/// [`percentile`] over an already **ascending-sorted** slice — the form
/// for callers reading several ranks out of one sort (e.g. a report row's
/// p50 and p99 columns).
pub fn percentile_of_sorted(sorted: &[u64], q: u8) -> u64 {
    debug_assert!(q <= 100, "percentile out of range: {q}");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * q as usize).div_ceil(100).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut m = Metrics::new(3);
        m.note_awake(NodeId(0), "a");
        m.note_awake(NodeId(0), "a");
        m.note_awake(NodeId(1), "b");
        assert_eq!(m.max_awake(), 2);
        assert_eq!(m.total_awake(), 3);
        assert_eq!(m.awake_events, m.total_awake(), "running counter agrees");
        assert!((m.avg_awake() - 1.0).abs() < 1e-9);
        assert_eq!(m.span_max_awake("a"), 2);
        assert_eq!(m.span_max_awake("missing"), 0);
        let s = m.span_summary();
        assert_eq!(s["a"], (2, 2));
        assert_eq!(s["b"], (1, 1));
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::new(0);
        assert_eq!(m.max_awake(), 0);
        assert_eq!(m.avg_awake(), 0.0);
        assert_eq!(m.awake_p50(), 0);
        assert_eq!(m.awake_p99(), 0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 0), 7);
        assert_eq!(percentile(&[7], 100), 7);
        // 1..=100: pQ is exactly Q.
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&v, 1), 1);
        // Unsorted input, even length: nearest-rank takes the lower of the
        // two middle elements.
        assert_eq!(percentile(&[9, 1, 3, 7], 50), 3);
        assert_eq!(percentile(&[9, 1, 3, 7], 75), 7);
    }

    #[test]
    fn awake_percentiles_summarize_the_distribution() {
        let mut m = Metrics::new(10);
        // one hot node, nine cold ones
        for _ in 0..100 {
            m.note_awake(NodeId(0), "hot");
        }
        for v in 1..10u32 {
            m.note_awake(NodeId(v), "cold");
        }
        assert_eq!(m.max_awake(), 100);
        assert_eq!(m.awake_p50(), 1);
        assert_eq!(m.awake_p99(), 100);
        assert_eq!(m.awake_percentile(90), 1);
    }

    #[test]
    fn interning_is_by_content_and_first_seen_order() {
        let mut m = Metrics::new(2);
        // distinct allocations with identical content must intern together
        let a1: &'static str = Box::leak("phase-x".to_string().into_boxed_str());
        let a2: &'static str = Box::leak("phase-x".to_string().into_boxed_str());
        m.note_awake(NodeId(0), a1);
        m.note_awake(NodeId(1), a2);
        m.note_awake(NodeId(0), "other");
        assert_eq!(m.span_names(), &["phase-x", "other"]);
        assert_eq!(m.span_summary()["phase-x"], (1, 2));
    }

    #[test]
    fn equality_tracks_span_attribution() {
        let mk = || {
            let mut m = Metrics::new(2);
            m.note_awake(NodeId(0), "a");
            m.note_awake(NodeId(1), "b");
            m
        };
        assert_eq!(mk(), mk());
        let mut other = mk();
        other.note_awake(NodeId(1), "a");
        assert_ne!(mk(), other);
    }
}
