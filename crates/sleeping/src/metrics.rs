//! Awake-complexity and message accounting.

use crate::Round;
use awake_graphs::NodeId;
use std::collections::BTreeMap;

/// Resource accounting for one execution.
///
/// The two headline numbers of the Sleeping model are
/// [`max_awake`](Metrics::max_awake) (the *awake complexity*) and
/// [`rounds`](Metrics::rounds) (the *round complexity*). Spans attribute
/// awake rounds to algorithm phases (driven by [`crate::Program::span`]),
/// which is how the experiment harness reports per-lemma budgets.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Number of awake rounds per node.
    pub awake: Vec<u64>,
    /// Last round at which any node was awake (round complexity).
    pub rounds: Round,
    /// Messages handed to the engine.
    pub messages_sent: u64,
    /// Messages received by an awake node.
    pub messages_delivered: u64,
    /// Messages lost because the recipient was asleep or halted.
    pub messages_lost: u64,
    /// Per-node awake rounds attributed to each span label.
    pub node_spans: Vec<BTreeMap<&'static str, u64>>,
}

impl Metrics {
    /// Fresh metrics for `n` nodes (also useful for external accounting,
    /// e.g. the Lemma 8 composition helper in `awake-core`).
    pub fn new(n: usize) -> Self {
        Metrics {
            awake: vec![0; n],
            rounds: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_lost: 0,
            node_spans: vec![BTreeMap::new(); n],
        }
    }

    /// Record one awake round for `v`, attributed to `span`.
    pub fn note_awake(&mut self, v: NodeId, span: &'static str) {
        self.awake[v.index()] += 1;
        *self.node_spans[v.index()].entry(span).or_insert(0) += 1;
    }

    /// The awake complexity: `max_v` (#rounds `v` was awake).
    pub fn max_awake(&self) -> u64 {
        self.awake.iter().copied().max().unwrap_or(0)
    }

    /// Average awake rounds per node (the *node-averaged* awake complexity).
    pub fn avg_awake(&self) -> f64 {
        if self.awake.is_empty() {
            0.0
        } else {
            self.awake.iter().sum::<u64>() as f64 / self.awake.len() as f64
        }
    }

    /// Total awake node-rounds (≈ simulation work).
    pub fn total_awake(&self) -> u64 {
        self.awake.iter().sum()
    }

    /// Max over nodes of awake rounds attributed to `span`.
    pub fn span_max_awake(&self, span: &str) -> u64 {
        self.node_spans
            .iter()
            .filter_map(|m| m.get(span))
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// All span labels seen, with `(max-per-node, total)` awake rounds.
    pub fn span_summary(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for m in &self.node_spans {
            for (&k, &v) in m {
                let e = out.entry(k).or_insert((0, 0));
                e.0 = e.0.max(v);
                e.1 += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut m = Metrics::new(3);
        m.note_awake(NodeId(0), "a");
        m.note_awake(NodeId(0), "a");
        m.note_awake(NodeId(1), "b");
        assert_eq!(m.max_awake(), 2);
        assert_eq!(m.total_awake(), 3);
        assert!((m.avg_awake() - 1.0).abs() < 1e-9);
        assert_eq!(m.span_max_awake("a"), 2);
        assert_eq!(m.span_max_awake("missing"), 0);
        let s = m.span_summary();
        assert_eq!(s["a"], (2, 2));
        assert_eq!(s["b"], (1, 1));
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::new(0);
        assert_eq!(m.max_awake(), 0);
        assert_eq!(m.avg_awake(), 0.0);
    }
}
