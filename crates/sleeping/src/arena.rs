//! Per-round inbox storage: pooled per-recipient segments, no sorting.
//!
//! Messages are delivered straight into their recipient's segment as they
//! are transmitted — **one** write per message. Segments are pooled `Vec`s
//! that are cleared (capacity retained) per round, so the steady state
//! allocates nothing; and because awake nodes transmit in ascending order,
//! each segment is born sorted by sender — the seed engine's per-round
//! `sort_by_key` is replaced by a debug assertion.
//!
//! A flat single-`Vec` arena with per-node offset ranges built by a stable
//! counting sort was implemented and benchmarked first; it loses to the
//! segment pool by ~2.5× per message at experiment scale (n = 4096,
//! Δ = 16) because grouping-by-recipient touches each message ~3 extra
//! times (stage, permute, place) with cache-hostile access patterns, while
//! direct segment delivery touches it once.
//!
//! Two views of the same idea live here:
//!
//! * [`InboxArena`] — the serial engine's node-indexed segment pool over
//!   all `n` recipients.
//! * [`ChunkInboxes`] — a *per-worker* segment view indexed by position
//!   within one chunk of the awake set. Each worker of the threaded
//!   executor owns one and builds its chunk's inboxes locally by draining
//!   the incoming owner shards in source-chunk order (chunks are
//!   contiguous in node order and senders within a chunk ascend, so the
//!   concatenation is a full sort by sender — same born-sorted invariant,
//!   no coordinator copies).

use crate::program::Envelope;
use awake_graphs::NodeId;

/// Round-scratch inbox storage for the serial executor.
#[derive(Debug)]
pub(crate) struct InboxArena<M> {
    /// Per-recipient segments; only awake nodes' segments are touched.
    lists: Vec<Vec<Envelope<M>>>,
}

impl<M> InboxArena<M> {
    pub(crate) fn new(n: usize) -> Self {
        InboxArena {
            lists: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Deliver one message. Callers guarantee `to` is awake this round and
    /// that calls arrive in ascending sender order.
    #[inline]
    pub(crate) fn stage(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.lists[to.index()].push(Envelope { from, msg });
    }

    /// The inbox of awake node `v`, sorted by sender.
    ///
    /// Sortedness is free: the transmission loop runs over the ascending
    /// awake set, so envelopes arrive in sender order (debug-asserted here
    /// — a comparison sort would be redundant work).
    #[inline]
    pub(crate) fn inbox(&self, v: u32) -> &[Envelope<M>] {
        let slice = &self.lists[v as usize];
        debug_assert!(
            slice.windows(2).all(|w| w[0].from <= w[1].from),
            "inbox of {v} must arrive sorted by sender"
        );
        slice
    }

    /// Restore node `v`'s sorted-by-sender invariant after an
    /// out-of-order delivery (a fault-delayed message arriving after the
    /// regular ascending-sender transmission pass). Stable, so envelopes
    /// from the same sender keep their staging order — the serial and
    /// threaded executors stage in the same order and therefore end with
    /// identical inboxes.
    #[inline]
    pub(crate) fn resort_inbox(&mut self, v: u32) {
        self.lists[v as usize].sort_by_key(|e| e.from);
    }

    /// Clear node `v`'s inbox (capacity retained).
    ///
    /// Segments are *self-clearing*: rather than a separate
    /// cold-cache pass over the awake set at round start, the serial
    /// executor clears each inbox right after its `receive` (while the
    /// segment header is hot) — so every round starts with all segments
    /// empty by construction.
    #[inline]
    pub(crate) fn clear_inbox(&mut self, v: u32) {
        self.lists[v as usize].clear();
    }
}

/// A worker-owned segment pool over one chunk of the awake set, indexed by
/// the recipient's *position within the chunk* (dense, not node-indexed:
/// a worker never pays memory for nodes it doesn't own this round).
///
/// The threaded executor's receive phase drains each incoming owner shard
/// — one per source chunk, visited in chunk index order — through
/// [`push`](Self::push), then hands [`inbox`](Self::inbox) straight to
/// `Program::receive` and [`clear`](Self::clear)s the segment while its
/// header is hot, exactly like the serial engine's arena discipline.
/// Capacity is retained across rounds and chunk shapes, so the steady
/// state allocates nothing.
#[derive(Debug)]
pub(crate) struct ChunkInboxes<M> {
    segs: Vec<Vec<Envelope<M>>>,
}

impl<M> ChunkInboxes<M> {
    pub(crate) fn new() -> Self {
        ChunkInboxes { segs: Vec::new() }
    }

    /// Make at least `len` segments addressable (pool only ever grows).
    pub(crate) fn ensure(&mut self, len: usize) {
        if self.segs.len() < len {
            self.segs.resize_with(len, Vec::new);
        }
    }

    /// Deliver one envelope to the recipient at chunk position `local`.
    /// Callers guarantee envelopes for a fixed recipient arrive in
    /// ascending sender order (source chunks visited in chunk order).
    #[inline]
    pub(crate) fn push(&mut self, local: u32, env: Envelope<M>) {
        self.segs[local as usize].push(env);
    }

    /// The inbox of the recipient at chunk position `local`, sorted by
    /// sender (asserted in debug builds, same invariant as [`InboxArena`]).
    #[inline]
    pub(crate) fn inbox(&self, local: usize) -> &[Envelope<M>] {
        let slice = &self.segs[local];
        debug_assert!(
            slice.windows(2).all(|w| w[0].from <= w[1].from),
            "chunk inbox {local} must arrive sorted by sender"
        );
        slice
    }

    /// Drain a shard of `(chunk position, envelope)` deliveries into the
    /// pool — the threaded executor's receive descriptors pull incoming
    /// shards through this, one source chunk at a time in chunk index
    /// order, which preserves the born-sorted invariant checked by
    /// [`inbox`](Self::inbox). Callers [`ensure`](Self::ensure) capacity
    /// for the chunk first.
    #[inline]
    pub(crate) fn extend_from(&mut self, entries: impl Iterator<Item = (u32, Envelope<M>)>) {
        for (local, env) in entries {
            self.segs[local as usize].push(env);
        }
    }

    /// Restore the sorted-by-sender invariant of the segment at chunk
    /// position `local` after late (fault-delayed) deliveries — the stable
    /// counterpart of [`InboxArena::resort_inbox`].
    #[inline]
    pub(crate) fn resort(&mut self, local: usize) {
        self.segs[local].sort_by_key(|e| e.from);
    }

    /// Clear the segment at chunk position `local` (capacity retained).
    #[inline]
    pub(crate) fn clear(&mut self, local: usize) {
        self.segs[local].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_recipient_preserving_sender_order() {
        let mut a: InboxArena<&'static str> = InboxArena::new(4);
        // ascending senders: 0 then 1 then 3; interleaved recipients
        a.stage(NodeId(0), NodeId(1), "0->1");
        a.stage(NodeId(0), NodeId(3), "0->3");
        a.stage(NodeId(1), NodeId(0), "1->0");
        a.stage(NodeId(1), NodeId(3), "1->3a");
        a.stage(NodeId(1), NodeId(3), "1->3b");
        a.stage(NodeId(3), NodeId(0), "3->0");
        let msgs = |a: &InboxArena<&'static str>, v: u32| {
            a.inbox(v).iter().map(|e| e.msg).collect::<Vec<_>>()
        };
        assert_eq!(msgs(&a, 0), ["1->0", "3->0"]);
        assert_eq!(msgs(&a, 1), ["0->1"]);
        assert_eq!(msgs(&a, 3), ["0->3", "1->3a", "1->3b"]);
    }

    #[test]
    fn rounds_reuse_segments_via_self_clearing() {
        let mut a: InboxArena<u64> = InboxArena::new(3);
        a.stage(NodeId(0), NodeId(1), 7);
        assert_eq!(a.inbox(1).len(), 1);
        assert!(a.inbox(0).is_empty());
        // the executor clears an inbox after its receive call
        a.clear_inbox(1);
        a.stage(NodeId(1), NodeId(2), 8);
        assert!(a.inbox(1).is_empty());
        assert_eq!(
            a.inbox(2),
            &[Envelope {
                from: NodeId(1),
                msg: 8
            }]
        );
    }

    #[test]
    fn chunk_inboxes_concatenate_source_runs_in_order() {
        let mut c: ChunkInboxes<u64> = ChunkInboxes::new();
        c.ensure(2);
        // source chunk 0 (senders 0, 1), then source chunk 1 (sender 5):
        // concatenation per recipient stays sorted by sender.
        c.push(
            0,
            Envelope {
                from: NodeId(0),
                msg: 10,
            },
        );
        c.push(
            1,
            Envelope {
                from: NodeId(1),
                msg: 11,
            },
        );
        c.push(
            0,
            Envelope {
                from: NodeId(1),
                msg: 12,
            },
        );
        c.push(
            0,
            Envelope {
                from: NodeId(5),
                msg: 50,
            },
        );
        assert_eq!(
            c.inbox(0)
                .iter()
                .map(|e| (e.from.0, e.msg))
                .collect::<Vec<_>>(),
            vec![(0, 10), (1, 12), (5, 50)]
        );
        assert_eq!(c.inbox(1).len(), 1);
        c.clear(0);
        assert!(c.inbox(0).is_empty(), "cleared, capacity retained");
        // growing the pool keeps existing segments intact
        c.ensure(5);
        assert_eq!(c.inbox(1).len(), 1);
    }
}
