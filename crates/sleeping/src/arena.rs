//! Per-round inbox storage: pooled per-recipient segments, no sorting.
//!
//! Messages are delivered straight into their recipient's segment as they
//! are transmitted — **one** write per message. Segments are pooled `Vec`s
//! that are cleared (capacity retained) per round, so the steady state
//! allocates nothing; and because awake nodes transmit in ascending order,
//! each segment is born sorted by sender — the seed engine's per-round
//! `sort_by_key` is replaced by a debug assertion.
//!
//! A flat single-`Vec` arena with per-node offset ranges built by a stable
//! counting sort was implemented and benchmarked first; it loses to the
//! segment pool by ~2.5× per message at experiment scale (n = 4096,
//! Δ = 16) because grouping-by-recipient touches each message ~3 extra
//! times (stage, permute, place) with cache-hostile access patterns, while
//! direct segment delivery touches it once. The threaded executor, which
//! genuinely needs *contiguous* per-chunk inboxes to ship one buffer per
//! worker, flattens segments in awake order via
//! [`take_inbox_into`](InboxArena::take_inbox_into) — a sequential append
//! that only runs on the executor that profits from it.

use crate::program::Envelope;
use awake_graphs::NodeId;

/// Round-scratch inbox storage shared by the serial and threaded executors.
#[derive(Debug)]
pub(crate) struct InboxArena<M> {
    /// Per-recipient segments; only awake nodes' segments are touched.
    lists: Vec<Vec<Envelope<M>>>,
}

impl<M> InboxArena<M> {
    pub(crate) fn new(n: usize) -> Self {
        InboxArena {
            lists: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Deliver one message. Callers guarantee `to` is awake this round and
    /// that calls arrive in ascending sender order.
    #[inline]
    pub(crate) fn stage(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.lists[to.index()].push(Envelope { from, msg });
    }

    /// The inbox of awake node `v`, sorted by sender.
    ///
    /// Sortedness is free: the transmission loop runs over the ascending
    /// awake set, so envelopes arrive in sender order (debug-asserted here
    /// — a comparison sort would be redundant work).
    #[inline]
    pub(crate) fn inbox(&self, v: u32) -> &[Envelope<M>] {
        let slice = &self.lists[v as usize];
        debug_assert!(
            slice.windows(2).all(|w| w[0].from <= w[1].from),
            "inbox of {v} must arrive sorted by sender"
        );
        slice
    }

    /// Clear node `v`'s inbox (capacity retained).
    ///
    /// Segments are *self-clearing*: rather than a separate
    /// cold-cache pass over the awake set at round start, the serial
    /// executor clears each inbox right after its `receive` (while the
    /// segment header is hot) and the threaded executor drains segments
    /// via [`take_inbox_into`](Self::take_inbox_into) — so every round
    /// starts with all segments empty by construction.
    #[inline]
    pub(crate) fn clear_inbox(&mut self, v: u32) {
        self.lists[v as usize].clear();
    }

    /// Move node `v`'s inbox to the end of `dst`, returning its
    /// `[start, end)` range there (the segment is left empty). The
    /// threaded executor flattens each chunk's segments into one
    /// contiguous buffer this way (a sequential memcpy per segment;
    /// capacity of both sides is retained).
    pub(crate) fn take_inbox_into(&mut self, v: u32, dst: &mut Vec<Envelope<M>>) -> (u32, u32) {
        debug_assert!(
            self.lists[v as usize]
                .windows(2)
                .all(|w| w[0].from <= w[1].from),
            "inbox of {v} must arrive sorted by sender"
        );
        let start = dst.len() as u32;
        dst.append(&mut self.lists[v as usize]);
        (start, dst.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_recipient_preserving_sender_order() {
        let mut a: InboxArena<&'static str> = InboxArena::new(4);
        // ascending senders: 0 then 1 then 3; interleaved recipients
        a.stage(NodeId(0), NodeId(1), "0->1");
        a.stage(NodeId(0), NodeId(3), "0->3");
        a.stage(NodeId(1), NodeId(0), "1->0");
        a.stage(NodeId(1), NodeId(3), "1->3a");
        a.stage(NodeId(1), NodeId(3), "1->3b");
        a.stage(NodeId(3), NodeId(0), "3->0");
        let msgs = |a: &InboxArena<&'static str>, v: u32| {
            a.inbox(v).iter().map(|e| e.msg).collect::<Vec<_>>()
        };
        assert_eq!(msgs(&a, 0), ["1->0", "3->0"]);
        assert_eq!(msgs(&a, 1), ["0->1"]);
        assert_eq!(msgs(&a, 3), ["0->3", "1->3a", "1->3b"]);
    }

    #[test]
    fn rounds_reuse_segments_via_self_clearing() {
        let mut a: InboxArena<u64> = InboxArena::new(3);
        a.stage(NodeId(0), NodeId(1), 7);
        assert_eq!(a.inbox(1).len(), 1);
        assert!(a.inbox(0).is_empty());
        // the executor clears an inbox after its receive call
        a.clear_inbox(1);
        a.stage(NodeId(1), NodeId(2), 8);
        assert!(a.inbox(1).is_empty());
        assert_eq!(
            a.inbox(2),
            &[Envelope {
                from: NodeId(1),
                msg: 8
            }]
        );
    }

    #[test]
    fn take_inbox_into_flattens_in_order() {
        let mut a: InboxArena<u64> = InboxArena::new(3);
        a.stage(NodeId(0), NodeId(1), 10);
        a.stage(NodeId(0), NodeId(2), 20);
        a.stage(NodeId(1), NodeId(2), 21);
        let mut flat = Vec::new();
        assert_eq!(a.take_inbox_into(1, &mut flat), (0, 1));
        assert_eq!(a.take_inbox_into(2, &mut flat), (1, 3));
        assert_eq!(
            flat.iter().map(|e| e.msg).collect::<Vec<_>>(),
            vec![10, 20, 21]
        );
        assert!(a.inbox(1).is_empty(), "moved out");
    }
}
