//! A deterministic simulator for the **Sleeping LOCAL model** of
//! distributed computing, with exact awake-complexity accounting.
//!
//! # The model
//!
//! The Sleeping model (Chatterjee–Gmyr–Pandurangan, PODC 2020) extends the
//! classical LOCAL model: `n` fault-free nodes connected as a graph compute
//! in synchronous lock-step rounds. At each round every node is either
//! **awake** or **asleep**:
//!
//! * an awake node sends a message (of arbitrary size) to any subset of its
//!   neighbors, receives the messages sent *this round* by awake neighbors,
//!   and performs unbounded local computation;
//! * an asleep node does nothing, and **messages sent to it are lost**;
//! * a node chooses, as a function of its local state, how long to sleep;
//! * all nodes are awake at round 1 and know `n`.
//!
//! The **awake complexity** of an algorithm is the maximum over nodes of the
//! number of rounds the node is awake; the **round complexity** is the
//! total number of rounds until the last node terminates.
//!
//! # The simulator
//!
//! [`Engine`] executes a [`Program`] per node. It is a *skip-ahead*
//! simulator: the scheduler jumps directly to the next round in which any
//! node is awake, so simulating an algorithm whose round complexity is
//! `Θ(n²·2^{√log n})` costs wall-clock time proportional only to the total
//! *awake* work — precisely the resource the Sleeping model measures. This
//! matters: the paper's algorithms sleep through the overwhelming majority
//! of rounds.
//!
//! ```
//! use awake_graphs::generators;
//! use awake_sleeping::{Action, Config, Engine, Envelope, Outbox, Program, View};
//!
//! /// Every node broadcasts its identifier once, then sleeps until round 6,
//! /// then halts with the number of identifiers heard.
//! struct Hello { heard: Vec<u64> }
//!
//! impl Program for Hello {
//!     type Msg = u64;
//!     type Output = usize;
//!     fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
//!         if view.round == 1 { out.broadcast(view.ident); }
//!     }
//!     fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
//!         self.heard.extend(inbox.iter().map(|e| e.msg));
//!         if view.round == 1 { Action::SleepUntil(6) } else { Action::Halt }
//!     }
//!     fn output(&self) -> Option<usize> { Some(self.heard.len()) }
//! }
//!
//! let g = generators::cycle(5);
//! let run = Engine::new(&g, Config::default())
//!     .run((0..5).map(|_| Hello { heard: vec![] }).collect())
//!     .unwrap();
//! assert!(run.outputs.iter().all(|&h| h == 2)); // heard both neighbors
//! assert_eq!(run.metrics.max_awake(), 2);       // round 1 + round 6
//! assert_eq!(run.metrics.rounds, 6);
//! ```
//!
//! # The hot path: sending via [`Outbox`]
//!
//! [`Program::send`] does not return a `Vec` of messages; it writes into an
//! **engine-owned, reusable** [`Outbox`]. The executor clears the buffer
//! (retaining capacity) between node-rounds, so a steady-state round
//! performs **zero heap allocations** no matter how many nodes broadcast:
//!
//! * [`Outbox::to`] queues a message to one port,
//! * [`Outbox::broadcast`] queues a message to every neighbor,
//! * [`Outbox::push`]/[`Extend`] accept the legacy [`Outgoing`] value form,
//!   for helper layers that build message lists independently of a buffer.
//!
//! Inboxes are pooled per-recipient segments: each delivered message is one
//! write into its recipient's reusable buffer, and because awake nodes
//! transmit in ascending order, envelopes arrive already sorted by sending
//! port — no per-round sort (see the `arena` module source for the design
//! notes and the benchmarked flat counting-sort alternative it replaced).
//!
//! # The scheduler: bucketed wake-ups + a `Stay` fast lane
//!
//! Wake times live in a hierarchical bucket (calendar) queue over the full
//! `u64` round space — amortized O(1) per event with bitmap probes to find
//! the next non-empty bucket, rather than a binary heap's `O(log n)` per
//! node-round. The dominant action, [`Action::Stay`], never touches the
//! queue at all: nodes staying awake ride a pre-sorted *stay lane* straight
//! into the next round's awake set.
//!
//! Two executors share these mechanics: the serial [`Engine`] (the
//! reference semantics) and [`threaded::run_threaded`] (a persistent worker
//! pool over degree-weighted contiguous chunks of the awake set, with
//! message routing and inbox construction running *inside* the workers
//! through owner-sharded delivery buffers — see the [`threaded`] module
//! docs for the pipeline). They are required to agree **bit for bit**,
//! outputs and [`Metrics`] alike, for deterministic programs.
//!
//! # Checkpointing and fault injection
//!
//! Both executors can pause at any round boundary into a versioned binary
//! [`Snapshot`] ([`Engine::snapshot_at`] / [`threaded::snapshot_at_threaded`])
//! and resume it later — on either executor, at any worker count — to a run
//! bit-for-bit identical to the uninterrupted one; per-node program state
//! travels through the [`Persist`] trait. A seeded [`FaultPlan`]
//! deterministically drops, duplicates, and delays messages and
//! crash-restarts nodes from their start-of-round state, with per-fault
//! counters in [`Metrics`]. See the [`checkpoint`] and [`faults`] module
//! docs for the formats and contracts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod checkpoint;
mod engine;
pub mod faults;
mod metrics;
mod program;
pub mod redundant;
pub mod threaded;
mod trace;
mod wheel;

pub use checkpoint::{
    CheckpointError, Codec, Paused, Persist, Reader, ResumeError, Snapshot, Writer,
};
pub use engine::{Config, Engine, Run, SimError};
pub use faults::{redundancy_for, FaultKind, FaultPlan, MAX_REDUNDANCY};
pub use metrics::{percentile, percentile_of_sorted, Metrics, PhaseTimes};
pub use program::{Action, Envelope, Outbox, Outgoing, Program, View};
pub use redundant::{Redundant, RedundantMsg};
pub use trace::{TraceEvent, TraceMode};

/// Round numbers are 1-based; all nodes are awake at [`FIRST_ROUND`].
pub type Round = u64;

/// The first round of every execution.
pub const FIRST_ROUND: Round = 1;
