//! A deterministic simulator for the **Sleeping LOCAL model** of
//! distributed computing, with exact awake-complexity accounting.
//!
//! # The model
//!
//! The Sleeping model (Chatterjee–Gmyr–Pandurangan, PODC 2020) extends the
//! classical LOCAL model: `n` fault-free nodes connected as a graph compute
//! in synchronous lock-step rounds. At each round every node is either
//! **awake** or **asleep**:
//!
//! * an awake node sends a message (of arbitrary size) to any subset of its
//!   neighbors, receives the messages sent *this round* by awake neighbors,
//!   and performs unbounded local computation;
//! * an asleep node does nothing, and **messages sent to it are lost**;
//! * a node chooses, as a function of its local state, how long to sleep;
//! * all nodes are awake at round 1 and know `n`.
//!
//! The **awake complexity** of an algorithm is the maximum over nodes of the
//! number of rounds the node is awake; the **round complexity** is the
//! total number of rounds until the last node terminates.
//!
//! # The simulator
//!
//! [`Engine`] executes a [`Program`] per node. It is a *skip-ahead*
//! simulator: a priority queue of wake times jumps directly to the next
//! round in which any node is awake, so simulating an algorithm whose round
//! complexity is `Θ(n²·2^{√log n})` costs wall-clock time proportional only
//! to the total *awake* work — precisely the resource the Sleeping model
//! measures. This matters: the paper's algorithms sleep through the
//! overwhelming majority of rounds.
//!
//! ```
//! use awake_graphs::generators;
//! use awake_sleeping::{Action, Config, Engine, Envelope, Outgoing, Program, View};
//!
//! /// Every node broadcasts its identifier once, then sleeps until round 6,
//! /// then halts with the number of identifiers heard.
//! struct Hello { heard: Vec<u64> }
//!
//! impl Program for Hello {
//!     type Msg = u64;
//!     type Output = usize;
//!     fn send(&mut self, view: &View) -> Vec<Outgoing<u64>> {
//!         if view.round == 1 { vec![Outgoing::Broadcast(view.ident)] } else { vec![] }
//!     }
//!     fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
//!         self.heard.extend(inbox.iter().map(|e| e.msg));
//!         if view.round == 1 { Action::SleepUntil(6) } else { Action::Halt }
//!     }
//!     fn output(&self) -> Option<usize> { Some(self.heard.len()) }
//! }
//!
//! let g = generators::cycle(5);
//! let run = Engine::new(&g, Config::default())
//!     .run((0..5).map(|_| Hello { heard: vec![] }).collect())
//!     .unwrap();
//! assert!(run.outputs.iter().all(|&h| h == 2)); // heard both neighbors
//! assert_eq!(run.metrics.max_awake(), 2);       // round 1 + round 6
//! assert_eq!(run.metrics.rounds, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod metrics;
mod program;
pub mod threaded;
mod trace;

pub use engine::{Config, Engine, Run, SimError};
pub use metrics::Metrics;
pub use program::{Action, Envelope, Outgoing, Program, View};
pub use trace::{TraceEvent, TraceMode};

/// Round numbers are 1-based; all nodes are awake at [`FIRST_ROUND`].
pub type Round = u64;

/// The first round of every execution.
pub const FIRST_ROUND: Round = 1;
