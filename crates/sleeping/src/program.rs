//! The node-program abstraction.

use crate::Round;
use awake_graphs::NodeId;

/// What a node sees when it is awake at a round.
///
/// Faithful to the LOCAL model with port numbering: a node knows `n`, its
/// own identifier, the current round, and has addressable *ports* to its
/// neighbors (represented by the neighbors' [`NodeId`]s, which algorithm
/// implementations must treat as opaque addresses — neighbor *identifiers*
/// must be learned through messages).
#[derive(Debug, Clone, Copy)]
pub struct View<'a> {
    /// Current round (1-based).
    pub round: Round,
    /// This node's position (engine address).
    pub me: NodeId,
    /// This node's unique identifier (≥ 1).
    pub ident: u64,
    /// Number of nodes in the graph (known to all nodes, per the model).
    pub n: usize,
    /// Ports to neighbors. Opaque addresses for [`Outgoing::To`].
    pub neighbors: &'a [NodeId],
}

impl View<'_> {
    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// A message handed to the engine for delivery *this round*.
#[derive(Debug, Clone)]
pub enum Outgoing<M> {
    /// Send to one neighbor (must be in `view.neighbors`).
    To(NodeId, M),
    /// Send to every neighbor.
    Broadcast(M),
}

/// A message received from an awake neighbor this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sending neighbor's port.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
}

/// What a node does at the end of an awake round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Remain awake at the next round.
    Stay,
    /// Sleep; wake up again at the given (strictly later) round.
    SleepUntil(Round),
    /// Terminate. [`Program::output`] must return `Some` afterwards.
    Halt,
}

impl Action {
    /// Convenience matching the paper's phrasing: a node asleep for `t`
    /// rounds at the end of round `now` wakes up at round `now + t + 1`.
    /// `sleep_for(now, 0)` is equivalent to [`Action::Stay`].
    pub fn sleep_for(now: Round, t: u64) -> Action {
        if t == 0 {
            Action::Stay
        } else {
            Action::SleepUntil(now + t + 1)
        }
    }
}

/// A per-node program for the Sleeping LOCAL model.
///
/// At every round where the node is awake the engine first calls
/// [`send`](Program::send) (messages transmitted this round), then
/// [`receive`](Program::receive) with the messages sent this round by awake
/// neighbors. This mirrors the model: transmission and reception happen
/// within the same synchronous round, based on state from the previous
/// round.
///
/// Programs must be deterministic functions of `(state, view, inbox)` —
/// the serial and threaded executors are required to agree bit-for-bit.
pub trait Program {
    /// Message type (arbitrary size, per the model).
    type Msg: Clone + std::fmt::Debug + Send + Sync;
    /// The node's final output.
    type Output: Clone + std::fmt::Debug + Send + Sync;

    /// Messages to transmit at the current round.
    fn send(&mut self, view: &View<'_>) -> Vec<Outgoing<Self::Msg>>;

    /// Process this round's inbox and choose what to do next.
    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action;

    /// The final output; must be `Some` once the program halts.
    fn output(&self) -> Option<Self::Output>;

    /// A label for the algorithm phase the node is currently in; awake
    /// rounds are attributed to spans in [`crate::Metrics`].
    fn span(&self) -> &'static str {
        "main"
    }

    /// First round at which this node is awake.
    ///
    /// The default, `Some(FIRST_ROUND)`, is the Sleeping model's rule that
    /// every node starts awake. The other values exist for *composing*
    /// algorithms per Lemma 8 of the paper: when a long algorithm is
    /// executed as a sequence of engine runs, a node that scheduled its
    /// next wake-up for a round inside a later stage starts that stage
    /// asleep (`Some(r)` with `r > 1`), and a node that already terminated
    /// sleeps through the whole stage (`None`: the node is never awake and
    /// halts immediately with its [`output`](Program::output)).
    fn initial_wake(&self) -> Option<crate::Round> {
        Some(crate::FIRST_ROUND)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_for_zero_is_stay() {
        assert_eq!(Action::sleep_for(10, 0), Action::Stay);
    }

    #[test]
    fn sleep_for_positive() {
        // sleeping for t rounds starting after round r means waking at r+t+1,
        // matching the paper's "asleep for t rounds, wakes at round r+t+1".
        assert_eq!(Action::sleep_for(10, 3), Action::SleepUntil(14));
    }
}
