//! The node-program abstraction.

use crate::Round;
use awake_graphs::NodeId;

/// What a node sees when it is awake at a round.
///
/// Faithful to the LOCAL model with port numbering: a node knows `n`, its
/// own identifier, the current round, and has addressable *ports* to its
/// neighbors (represented by the neighbors' [`NodeId`]s, which algorithm
/// implementations must treat as opaque addresses — neighbor *identifiers*
/// must be learned through messages).
#[derive(Debug, Clone, Copy)]
pub struct View<'a> {
    /// Current round (1-based).
    pub round: Round,
    /// This node's position (engine address).
    pub me: NodeId,
    /// This node's unique identifier (≥ 1).
    pub ident: u64,
    /// Number of nodes in the graph (known to all nodes, per the model).
    pub n: usize,
    /// Ports to neighbors. Opaque addresses for [`Outbox::to`].
    pub neighbors: &'a [NodeId],
}

impl View<'_> {
    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// A message handed to the engine for delivery *this round*.
///
/// Retained as the *value form* of an outbox entry so helper layers can
/// build message lists independently of an [`Outbox`] (see
/// [`Outbox::push`]); [`Program::send`] itself writes into the engine-owned
/// [`Outbox`] and never allocates a `Vec` of these on the hot path.
#[derive(Debug, Clone)]
pub enum Outgoing<M> {
    /// Send to one neighbor (must be in `view.neighbors`).
    To(NodeId, M),
    /// Send to every neighbor.
    Broadcast(M),
}

/// One queued outbox entry: `to == None` means broadcast.
#[derive(Debug, Clone)]
pub(crate) struct OutEntry<M> {
    pub(crate) to: Option<NodeId>,
    pub(crate) msg: M,
}

/// The engine-owned, reusable send buffer handed to [`Program::send`].
///
/// The executor clears and re-passes one `Outbox` for every awake
/// node-round, so steady-state sending performs **zero heap allocations**:
/// the buffer's capacity is retained across nodes and rounds. Programs
/// queue messages with [`to`](Outbox::to) and
/// [`broadcast`](Outbox::broadcast); [`push`](Outbox::push) and
/// [`Extend`] accept the legacy [`Outgoing`] value form.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) items: Vec<OutEntry<M>>,
}

impl<M> Outbox<M> {
    /// An empty outbox (executors construct and reuse these).
    pub(crate) fn new() -> Self {
        Outbox { items: Vec::new() }
    }

    /// Wrap an existing backing buffer (worker pools recycle buffers).
    pub(crate) fn from_vec(items: Vec<OutEntry<M>>) -> Self {
        Outbox { items }
    }

    /// Recover the backing buffer.
    pub(crate) fn into_vec(self) -> Vec<OutEntry<M>> {
        self.items
    }

    /// Queue a message to one neighbor (must be a port in
    /// [`View::neighbors`], or the engine aborts with
    /// [`SimError::NotANeighbor`](crate::SimError::NotANeighbor)).
    #[inline]
    pub fn to(&mut self, port: NodeId, msg: M) {
        self.items.push(OutEntry {
            to: Some(port),
            msg,
        });
    }

    /// Queue a message to every neighbor.
    #[inline]
    pub fn broadcast(&mut self, msg: M) {
        self.items.push(OutEntry { to: None, msg });
    }

    /// Queue an [`Outgoing`] value (compatibility with helpers that build
    /// message lists as values).
    #[inline]
    pub fn push(&mut self, out: Outgoing<M>) {
        match out {
            Outgoing::To(p, m) => self.to(p, m),
            Outgoing::Broadcast(m) => self.broadcast(m),
        }
    }

    /// Number of queued entries (broadcasts count once).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the outbox empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    pub(crate) fn clear(&mut self) {
        self.items.clear();
    }
}

impl<M> Extend<Outgoing<M>> for Outbox<M> {
    fn extend<I: IntoIterator<Item = Outgoing<M>>>(&mut self, iter: I) {
        for out in iter {
            self.push(out);
        }
    }
}

/// A message received from an awake neighbor this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sending neighbor's port.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
}

/// What a node does at the end of an awake round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Remain awake at the next round.
    Stay,
    /// Sleep; wake up again at the given (strictly later) round.
    SleepUntil(Round),
    /// Terminate. [`Program::output`] must return `Some` afterwards.
    Halt,
}

impl Action {
    /// Convenience matching the paper's phrasing: a node asleep for `t`
    /// rounds at the end of round `now` wakes up at round `now + t + 1`.
    /// `sleep_for(now, 0)` is equivalent to [`Action::Stay`].
    pub fn sleep_for(now: Round, t: u64) -> Action {
        if t == 0 {
            Action::Stay
        } else {
            Action::SleepUntil(now + t + 1)
        }
    }
}

/// A per-node program for the Sleeping LOCAL model.
///
/// At every round where the node is awake the engine first calls
/// [`send`](Program::send) (messages transmitted this round), then
/// [`receive`](Program::receive) with the messages sent this round by awake
/// neighbors. This mirrors the model: transmission and reception happen
/// within the same synchronous round, based on state from the previous
/// round.
///
/// Programs must be deterministic functions of `(state, view, inbox)` —
/// the serial and threaded executors are required to agree bit-for-bit.
pub trait Program {
    /// Message type (arbitrary size, per the model).
    type Msg: Clone + std::fmt::Debug + Send + Sync;
    /// The node's final output.
    type Output: Clone + std::fmt::Debug + Send + Sync;

    /// Queue the messages to transmit at the current round into the
    /// engine-owned [`Outbox`] (cleared before every call, reused across
    /// node-rounds — sending is allocation-free in steady state).
    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>);

    /// Process this round's inbox and choose what to do next.
    ///
    /// Envelopes arrive sorted by sending port, ascending.
    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action;

    /// The final output; must be `Some` once the program halts.
    fn output(&self) -> Option<Self::Output>;

    /// A label for the algorithm phase the node is currently in; awake
    /// rounds are attributed to spans in [`crate::Metrics`].
    fn span(&self) -> &'static str {
        "main"
    }

    /// First round at which this node is awake.
    ///
    /// The default, `Some(FIRST_ROUND)`, is the Sleeping model's rule that
    /// every node starts awake. The other values exist for *composing*
    /// algorithms per Lemma 8 of the paper: when a long algorithm is
    /// executed as a sequence of engine runs, a node that scheduled its
    /// next wake-up for a round inside a later stage starts that stage
    /// asleep (`Some(r)` with `r > 1`), and a node that already terminated
    /// sleeps through the whole stage (`None`: the node is never awake and
    /// halts immediately with its [`output`](Program::output)).
    fn initial_wake(&self) -> Option<crate::Round> {
        Some(crate::FIRST_ROUND)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_for_zero_is_stay() {
        assert_eq!(Action::sleep_for(10, 0), Action::Stay);
    }

    #[test]
    fn sleep_for_positive() {
        // sleeping for t rounds starting after round r means waking at r+t+1,
        // matching the paper's "asleep for t rounds, wakes at round r+t+1".
        assert_eq!(Action::sleep_for(10, 3), Action::SleepUntil(14));
    }

    #[test]
    fn outbox_accumulates_and_clears_without_reallocating() {
        let mut ob: Outbox<u32> = Outbox::new();
        ob.to(NodeId(1), 10);
        ob.broadcast(20);
        ob.push(Outgoing::To(NodeId(2), 30));
        ob.extend([Outgoing::Broadcast(40)]);
        assert_eq!(ob.len(), 4);
        let cap = ob.items.capacity();
        ob.clear();
        assert!(ob.is_empty());
        assert_eq!(ob.items.capacity(), cap, "clear retains capacity");
    }
}
