//! The deterministic skip-ahead executor.
//!
//! # Hot-path design
//!
//! The per-node-round loop is allocation-free in steady state:
//!
//! * **Sending** — programs write into one engine-owned [`Outbox`] that is
//!   cleared (capacity retained) between nodes; no `Vec` is returned per
//!   `send` call.
//! * **Scheduling** — wake-ups live in a hierarchical bucket queue
//!   ([`crate::wheel`]) instead of a binary heap, and [`Action::Stay`] — the
//!   dominant action in dense phases — bypasses the queue entirely via a
//!   *stay lane*: nodes that remain awake are carried to the next round in
//!   an already-sorted `Vec`.
//! * **Inboxes** — messages are delivered straight into pooled
//!   per-recipient segments (one write per message, capacity reused across
//!   rounds). Because awake nodes transmit in ascending order, each inbox
//!   is born sorted by sender — no per-round comparison sort (asserted in
//!   debug builds; see [`crate::arena`] for the design notes and the
//!   benchmarked alternative).

use crate::arena::InboxArena;
use crate::checkpoint::{
    decode_snapshot, encode_snapshot, rebuild_wheel, Codec, CrashIo, EngineStateRef, Paused,
    Persist, ProgramsRef, Reader, RestoredState, ResumeError, Snapshot,
};
use crate::faults::{DelayedMsg, FaultPlan, FaultState};
use crate::metrics::Metrics;
use crate::program::{Action, Outbox, Program, View};
use crate::trace::{TraceEvent, TraceMode, Tracer};
use crate::wheel::WakeWheel;
use crate::Round;
use awake_graphs::{Graph, NodeId};
use std::fmt;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Abort if the next scheduled round exceeds this bound.
    pub max_rounds: Round,
    /// Tracing mode.
    pub trace: TraceMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // Generous but finite: the paper's round complexities are
            // polynomial; anything beyond this is a runaway schedule bug.
            max_rounds: u64::MAX / 4,
            trace: TraceMode::Off,
        }
    }
}

impl Config {
    /// Config with a specific round budget.
    pub fn with_max_rounds(max_rounds: Round) -> Self {
        Config {
            max_rounds,
            ..Config::default()
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A program slept to a round not strictly in the future.
    InvalidSleep {
        /// The offending node.
        node: NodeId,
        /// Current round.
        round: Round,
        /// Requested wake round.
        until: Round,
    },
    /// A program halted but returned no output.
    MissingOutput(
        /// The offending node.
        NodeId,
    ),
    /// A program addressed a message to a non-neighbor.
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// The schedule exceeded [`Config::max_rounds`].
    RoundBudgetExceeded {
        /// The configured budget.
        limit: Round,
    },
    /// The number of programs didn't match the number of nodes.
    ProgramCountMismatch {
        /// Programs supplied.
        got: usize,
        /// Nodes in the graph.
        expected: usize,
    },
    /// A program's [`Program::initial_wake`] was before [`crate::FIRST_ROUND`].
    InvalidInitialWake {
        /// The offending node.
        node: NodeId,
        /// The requested first awake round.
        round: Round,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSleep { node, round, until } => write!(
                f,
                "node {node} at round {round} requested non-future wake round {until}"
            ),
            SimError::MissingOutput(v) => write!(f, "node {v} halted without an output"),
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} sent a message to non-neighbor {to}")
            }
            SimError::RoundBudgetExceeded { limit } => {
                write!(f, "round budget {limit} exceeded")
            }
            SimError::ProgramCountMismatch { got, expected } => {
                write!(f, "got {got} programs for {expected} nodes")
            }
            SimError::InvalidInitialWake { node, round } => {
                write!(
                    f,
                    "node {node} requested initial wake round {round}, before round {}",
                    crate::FIRST_ROUND
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A completed execution.
#[derive(Debug)]
pub struct Run<O> {
    /// Output of each node (indexed by [`NodeId`]).
    pub outputs: Vec<O>,
    /// Resource accounting.
    pub metrics: Metrics,
    /// Recorded events (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Events discarded past a [`TraceMode::Capped`] cap — non-zero means
    /// [`trace`](Run::trace) is a truncated prefix, not the full record.
    pub trace_dropped: u64,
}

/// `next_wake` sentinel for "halted / never wakes" (rounds are 1-based, so
/// 0 is free; a plain `Round` stamp is half the size of `Option<Round>`,
/// which matters because the delivery check reads it once per message).
pub(crate) const NEVER: Round = 0;

/// Initialize `next_wake`/`outputs` and seed the scheduler from
/// [`Program::initial_wake`]. Shared by the serial and threaded executors.
pub(crate) fn seed_schedule<P: Program>(
    programs: &[P],
    wheel: &mut WakeWheel,
    next_wake: &mut Vec<Round>,
    outputs: &mut [Option<P::Output>],
) -> Result<(), SimError> {
    for (v, p) in programs.iter().enumerate() {
        match p.initial_wake() {
            Some(r) => {
                if r < crate::FIRST_ROUND {
                    // Round 0 would alias the NEVER sentinel and violate the
                    // wheel's strictly-future invariant; reject it typed.
                    return Err(SimError::InvalidInitialWake {
                        node: NodeId(v as u32),
                        round: r,
                    });
                }
                next_wake.push(r);
                wheel.schedule(r, v as u32);
            }
            None => {
                // Node sleeps through the whole stage (Lemma 8 composition).
                next_wake.push(NEVER);
                match p.output() {
                    Some(o) => outputs[v] = Some(o),
                    None => return Err(SimError::MissingOutput(NodeId(v as u32))),
                }
            }
        }
    }
    Ok(())
}

/// Pop the next round's awake set into `awake` (ascending), merging the
/// stay lane (nodes that chose [`Action::Stay`] at `prev_round`, already
/// sorted) with the wheel. Returns `None` when nothing is pending.
///
/// A non-empty stay lane wakes at `prev_round + 1`, which is the earliest
/// any pending event can be — so the wheel only participates when its
/// minimum is exactly that round, and the common dense case (everybody
/// `Stay`s) never touches the wheel at all.
pub(crate) fn next_awake_set(
    wheel: &mut WakeWheel,
    stay: &mut Vec<u32>,
    prev_round: Round,
    awake: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) -> Option<Round> {
    awake.clear();
    if stay.is_empty() {
        let round = wheel.pop_next(awake)?;
        awake.sort_unstable();
        return Some(round);
    }
    let round = prev_round + 1;
    if wheel.peek_min() == Some(round) {
        scratch.clear();
        let popped = wheel.pop_next(scratch);
        debug_assert_eq!(popped, Some(round));
        scratch.sort_unstable();
        // Merge two sorted, disjoint sets.
        let mut si = 0;
        let mut wi = 0;
        while si < stay.len() && wi < scratch.len() {
            if stay[si] < scratch[wi] {
                awake.push(stay[si]);
                si += 1;
            } else {
                awake.push(scratch[wi]);
                wi += 1;
            }
        }
        awake.extend_from_slice(&stay[si..]);
        awake.extend_from_slice(&scratch[wi..]);
        stay.clear();
        scratch.clear();
    } else {
        awake.append(stay); // fast lane: already sorted
    }
    Some(round)
}

/// The mutable fault-injection context of one executor: the seeded state
/// (plan + delayed-message buffer) plus the crash-restart machinery — the
/// [`Persist`] entry points of the concrete program type (captured as
/// function pointers so the executor core needs no `Persist` bound) and
/// the current round's crash blobs, saved at start-of-round and consumed
/// in phase B.
pub(crate) struct FaultCtx<P: Program> {
    pub(crate) state: FaultState<P::Msg>,
    pub(crate) crash_io: CrashIo<P>,
    /// `(node, start-of-round state)` of nodes that crash this round, in
    /// node order (phase A order); emptied by phase B.
    crashed: Vec<(u32, Vec<u8>)>,
}

impl<P: Program> FaultCtx<P> {
    pub(crate) fn new(plan: FaultPlan, crash_io: CrashIo<P>) -> Self {
        FaultCtx {
            state: FaultState::new(plan),
            crash_io,
            crashed: Vec::new(),
        }
    }

    pub(crate) fn from_state(state: FaultState<P::Msg>, crash_io: CrashIo<P>) -> Self {
        FaultCtx {
            state,
            crash_io,
            crashed: Vec::new(),
        }
    }
}

/// The serial executor's full mutable state, factored out of
/// [`Engine::run`] so checkpointing can pause between rounds: `step`
/// executes exactly one round, `peek_next` answers "what round would run
/// next" without committing anything, and `state_ref` exposes the round
/// boundary for snapshot encoding.
struct SerialExec<'g, P: Program> {
    graph: &'g Graph,
    config: Config,
    programs: Vec<P>,
    metrics: Metrics,
    tracer: Tracer,
    outputs: Vec<Option<P::Output>>,
    /// `next_wake[v] = r`: v will be awake at round r; NEVER: halted.
    next_wake: Vec<Round>,
    wheel: WakeWheel,
    // Round-scratch state, all reused: zero allocations per node-round
    // once capacities have grown to the workload's high-water mark.
    awake: Vec<u32>,
    scratch: Vec<u32>,
    stay: Vec<u32>,
    outbox: Outbox<P::Msg>,
    arena: InboxArena<P::Msg>,
    prev_round: Round,
    faults: Option<FaultCtx<P>>,
}

impl<'g, P: Program> SerialExec<'g, P> {
    fn new(
        graph: &'g Graph,
        config: Config,
        programs: Vec<P>,
        faults: Option<FaultCtx<P>>,
    ) -> Result<Self, SimError> {
        let n = graph.n();
        if programs.len() != n {
            return Err(SimError::ProgramCountMismatch {
                got: programs.len(),
                expected: n,
            });
        }
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut next_wake: Vec<Round> = Vec::with_capacity(n);
        let mut wheel = WakeWheel::new();
        seed_schedule(&programs, &mut wheel, &mut next_wake, &mut outputs)?;
        let mut faults = faults;
        if let Some(f) = faults.as_mut() {
            f.state.recovering.resize(n, false);
        }
        Ok(SerialExec {
            graph,
            config,
            programs,
            metrics: Metrics::new(n),
            tracer: Tracer::new(config.trace),
            outputs,
            next_wake,
            wheel,
            awake: Vec::new(),
            scratch: Vec::new(),
            stay: Vec::new(),
            outbox: Outbox::new(),
            arena: InboxArena::new(n),
            prev_round: 0,
            faults,
        })
    }

    /// Reassemble an executor at the round boundary a snapshot captured.
    /// `programs` are the snapshot's restored programs; everything else
    /// comes from the decoded state (including the config the snapshot was
    /// taken under, which wins over the resuming engine's — a resumed run
    /// must behave like the uninterrupted one).
    fn from_restored(
        graph: &'g Graph,
        programs: Vec<P>,
        rs: RestoredState<P::Msg, P::Output>,
        crash_io: CrashIo<P>,
    ) -> Self {
        SerialExec {
            graph,
            config: rs.config,
            programs,
            metrics: rs.metrics,
            tracer: rs.tracer,
            outputs: rs.outputs,
            next_wake: rs.next_wake,
            wheel: rebuild_wheel(&rs.wheel_events),
            awake: Vec::new(),
            scratch: Vec::new(),
            stay: rs.stay,
            outbox: Outbox::new(),
            arena: InboxArena::new(graph.n()),
            prev_round: rs.prev_round,
            faults: rs.faults.map(|s| FaultCtx::from_state(s, crash_io)),
        }
    }

    /// The round the next `step` would execute, without committing the
    /// scheduler (a non-empty stay lane wakes at `prev_round + 1`, which
    /// is the earliest any pending event can be).
    fn peek_next(&mut self) -> Option<Round> {
        if !self.stay.is_empty() {
            Some(self.prev_round + 1)
        } else {
            self.wheel.peek_min()
        }
    }

    /// Execute one round; `Ok(false)` means nothing was pending.
    fn step(&mut self) -> Result<bool, SimError> {
        // Monomorphized on fault presence: compiled with `FAULTY = false`
        // every crash/delay block in the body is dead code, so the
        // fault-free round loop optimizes exactly as it did before fault
        // injection existed (the bench gate holds the engine to that).
        if self.faults.is_some() {
            self.step_body::<true>()
        } else {
            self.step_body::<false>()
        }
    }

    fn step_body<const FAULTY: bool>(&mut self) -> Result<bool, SimError> {
        // Disjoint field borrows throughout the round body.
        let SerialExec {
            graph,
            config,
            programs,
            metrics,
            tracer,
            outputs,
            next_wake,
            wheel,
            awake,
            scratch,
            stay,
            outbox,
            arena,
            prev_round,
            faults,
        } = self;
        let n = graph.n();
        let Some(round) = next_awake_set(wheel, stay, *prev_round, awake, scratch) else {
            return Ok(false);
        };
        if round > config.max_rounds {
            return Err(SimError::RoundBudgetExceeded {
                limit: config.max_rounds,
            });
        }
        // Rounds between the previous executed round and this one had no
        // awake node: the wheel jumped them in one batch-cascade, and they
        // are accounted here so `rounds = executed + skipped` stays exact
        // under compression (identically in the threaded coordinator).
        metrics.rounds_skipped += round - *prev_round - 1;
        metrics.rounds = round;
        *prev_round = round;

        // Phase A: all awake nodes transmit.
        for &v in awake.iter() {
            let vid = NodeId(v);
            let view = View {
                round,
                me: vid,
                ident: graph.ident(vid),
                n,
                neighbors: graph.neighbors(vid),
            };
            metrics.note_awake(vid, programs[v as usize].span());
            tracer.push(|| TraceEvent::Awake { round, node: vid });
            if FAULTY {
                if let Some(f) = faults.as_mut() {
                    if f.state.plan.crashes(round, v) {
                        // Save the start-of-round state *before* the node
                        // acts: a crashed node loses this round's state
                        // changes but its sends still go out (they left
                        // before the crash).
                        let mut w = crate::checkpoint::Writer::new();
                        (f.crash_io.save)(&programs[v as usize], &mut w);
                        f.crashed.push((v, w.into_bytes()));
                    }
                }
            }
            outbox.clear();
            programs[v as usize].send(&view, outbox);
            if FAULTY {
                let f = faults.as_mut().expect("FAULTY step implies a plan");
                route_messages_faulty(
                    graph,
                    outbox.items.drain(..),
                    next_wake,
                    round,
                    vid,
                    arena,
                    metrics,
                    tracer,
                    &mut f.state,
                )?;
            } else {
                route_messages(
                    graph,
                    outbox.items.drain(..),
                    next_wake,
                    round,
                    vid,
                    arena,
                    metrics,
                    tracer,
                )?;
            }
        }

        // Between phases: resolve fault-delayed messages that have come
        // due. A delayed message is delivered only if its recipient is
        // awake at exactly its due round; a due round nobody executed (or
        // an asleep recipient) loses it — the model's rule, applied late.
        if let Some(f) = faults.as_mut().filter(|_| FAULTY) {
            if f.state.delayed.iter().any(|d| d.due <= round) {
                let mut kept = Vec::with_capacity(f.state.delayed.len());
                scratch.clear();
                for d in f.state.delayed.drain(..) {
                    if d.due > round {
                        kept.push(d);
                        continue;
                    }
                    let (due, from, to) = (d.due, d.from, d.to);
                    if due == round && next_wake[to.index()] == round {
                        metrics.messages_delivered += 1;
                        tracer.push(|| TraceEvent::Delivered { round, from, to });
                        arena.stage(from, to, d.msg);
                        scratch.push(to.0);
                    } else {
                        metrics.messages_lost += 1;
                        tracer.push(|| TraceEvent::Lost {
                            round: due,
                            from,
                            to,
                        });
                    }
                }
                f.state.delayed = kept;
                // Late deliveries land after the ascending-sender pass;
                // restore each touched inbox's sorted-by-sender invariant.
                scratch.sort_unstable();
                scratch.dedup();
                for &v in scratch.iter() {
                    arena.resort_inbox(v);
                }
                scratch.clear();
            }
        }

        // Phase B: all awake nodes receive and choose their next action
        // (crashed nodes instead lose the round and restart).
        let mut crash_i = 0usize;
        let mut rec_round = false;
        for &v in awake.iter() {
            let vid = NodeId(v);
            if let Some(f) = faults.as_mut().filter(|_| FAULTY) {
                if f.crashed.get(crash_i).is_some_and(|c| c.0 == v) {
                    let blob = &f.crashed[crash_i].1;
                    crash_i += 1;
                    arena.clear_inbox(v);
                    let mut r = Reader::new(blob);
                    (f.crash_io.restore)(&mut programs[v as usize], &mut r)
                        .expect("Persist round-trip: restore must accept its own save");
                    tracer.push(|| TraceEvent::Crash { round, node: vid });
                    metrics.faults_crashed += 1;
                    f.state.recovering[v as usize] = true;
                    rec_round = true;
                    next_wake[v as usize] = round + 1;
                    stay.push(v);
                    continue;
                }
            }
            let view = View {
                round,
                me: vid,
                ident: graph.ident(vid),
                n,
                neighbors: graph.neighbors(vid),
            };
            let action = programs[v as usize].receive(&view, arena.inbox(v));
            // Clear while the segment header is hot (see `arena`).
            arena.clear_inbox(v);
            // A recovering node's awake rounds are overhead until its first
            // non-Stay action puts it back on its schedule.
            if FAULTY {
                if let Some(f) = faults.as_mut() {
                    if f.state.recovering[v as usize] {
                        metrics.recovery_awake += 1;
                        rec_round = true;
                        if action != Action::Stay {
                            f.state.recovering[v as usize] = false;
                        }
                    }
                }
            }
            match action {
                Action::Stay => {
                    next_wake[v as usize] = round + 1;
                    stay.push(v); // fast lane: never touches the wheel
                }
                Action::SleepUntil(until) => {
                    if until <= round {
                        return Err(SimError::InvalidSleep {
                            node: vid,
                            round,
                            until,
                        });
                    }
                    tracer.push(|| TraceEvent::Sleep {
                        round,
                        node: vid,
                        until,
                    });
                    next_wake[v as usize] = until;
                    wheel.schedule(until, v);
                }
                Action::Halt => {
                    tracer.push(|| TraceEvent::Halt { round, node: vid });
                    next_wake[v as usize] = NEVER;
                    match programs[v as usize].output() {
                        Some(o) => outputs[v as usize] = Some(o),
                        None => return Err(SimError::MissingOutput(vid)),
                    }
                }
            }
        }
        if let Some(f) = faults.as_mut().filter(|_| FAULTY) {
            f.crashed.clear();
        }
        if FAULTY && rec_round {
            metrics.recovery_rounds += 1;
        }
        Ok(true)
    }

    /// Finalize: account still-buffered delayed messages as lost and
    /// unwrap the outputs.
    fn finish(mut self) -> Result<Run<P::Output>, SimError> {
        if let Some(f) = self.faults.as_mut() {
            for d in f.state.delayed.drain(..) {
                self.metrics.messages_lost += 1;
                self.tracer.push(|| TraceEvent::Lost {
                    round: d.due,
                    from: d.from,
                    to: d.to,
                });
            }
        }
        let outputs = self
            .outputs
            .into_iter()
            .enumerate()
            .map(|(v, o)| o.ok_or(SimError::MissingOutput(NodeId(v as u32))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Run {
            outputs,
            metrics: self.metrics,
            trace: self.tracer.events,
            trace_dropped: self.tracer.dropped,
        })
    }

    /// The round boundary as snapshot input.
    fn state_ref(&self) -> EngineStateRef<'_, P> {
        EngineStateRef {
            prev_round: self.prev_round,
            next_wake: &self.next_wake,
            stay: &self.stay,
            wheel_events: self.wheel.pending_events(),
            outputs: &self.outputs,
            programs: ProgramsRef::Flat(&self.programs),
            metrics: &self.metrics,
            tracer: &self.tracer,
            faults: self.faults.as_ref().map(|f| &f.state),
        }
    }

    fn run_out(mut self) -> Result<Run<P::Output>, SimError> {
        while self.step()? {}
        self.finish()
    }
}

/// The serial deterministic executor.
///
/// See the [crate docs](crate) for a worked example.
pub struct Engine<'g> {
    graph: &'g Graph,
    config: Config,
}

impl<'g> Engine<'g> {
    /// Create an engine over `graph`.
    pub fn new(graph: &'g Graph, config: Config) -> Self {
        Engine { graph, config }
    }

    /// Execute `programs` (one per node, indexed by [`NodeId`]) to completion.
    ///
    /// # Errors
    /// Any [`SimError`]; see the variants for the contract each program must
    /// uphold.
    pub fn run<P: Program>(&self, programs: Vec<P>) -> Result<Run<P::Output>, SimError> {
        SerialExec::new(self.graph, self.config, programs, None)?.run_out()
    }

    /// Execute `programs` to completion under a seeded fault plan.
    ///
    /// Deterministic: the same plan yields the same outputs, `Metrics`,
    /// and trace as the threaded executor under the same plan at any
    /// worker count. Requires [`Persist`] because crash-restart saves and
    /// restores per-node state through it.
    ///
    /// # Errors
    /// Any [`SimError`], as [`run`](Engine::run).
    pub fn run_faulty<P: Program + Persist>(
        &self,
        programs: Vec<P>,
        plan: &FaultPlan,
    ) -> Result<Run<P::Output>, SimError> {
        let faults = FaultCtx::new(*plan, CrashIo::<P>::of());
        SerialExec::new(self.graph, self.config, programs, Some(faults))?.run_out()
    }

    /// Run until the next pending round would exceed `pause_after`, then
    /// snapshot the paused state; completes normally if the run finishes
    /// first. Pass a fault plan to snapshot a fault-injected run (the
    /// plan and its delayed-message buffer are part of the snapshot).
    ///
    /// # Errors
    /// Any [`SimError`] from the rounds executed before the pause.
    pub fn snapshot_at<P: Program + Persist>(
        &self,
        programs: Vec<P>,
        plan: Option<&FaultPlan>,
        pause_after: Round,
    ) -> Result<Paused<P::Output>, SimError>
    where
        P::Msg: Codec,
        P::Output: Codec,
    {
        let faults = plan.map(|p| FaultCtx::new(*p, CrashIo::<P>::of()));
        let mut exec = SerialExec::new(self.graph, self.config, programs, faults)?;
        loop {
            match exec.peek_next() {
                None => return Ok(Paused::Done(exec.finish()?)),
                Some(next) if next > pause_after => {
                    return Ok(Paused::Snapshot(encode_snapshot(
                        self.graph,
                        self.config,
                        exec.state_ref(),
                    )));
                }
                Some(_) => {
                    exec.step()?;
                }
            }
        }
    }

    /// Continue a snapshotted run to completion, bit-for-bit identical to
    /// the uninterrupted run (outputs, `Metrics`, trace).
    ///
    /// `programs` must be the *freshly constructed initial* programs of
    /// the original run (same inputs, same order) — [`Persist::restore`]
    /// overwrites their dynamic state from the snapshot. The snapshot's
    /// `Config` wins over this engine's, so a resumed run keeps the round
    /// budget and trace mode it started under.
    ///
    /// # Errors
    /// [`ResumeError::Checkpoint`] if the snapshot is corrupt, truncated,
    /// or from a different graph; [`ResumeError::Sim`] if the continued
    /// run fails.
    pub fn resume<P: Program + Persist>(
        &self,
        mut programs: Vec<P>,
        snapshot: &Snapshot,
    ) -> Result<Run<P::Output>, ResumeError>
    where
        P::Msg: Codec,
        P::Output: Codec,
    {
        let n = self.graph.n();
        if programs.len() != n {
            return Err(ResumeError::Sim(SimError::ProgramCountMismatch {
                got: programs.len(),
                expected: n,
            }));
        }
        let rs = decode_snapshot::<P>(self.graph, snapshot, &mut programs)?;
        let exec = SerialExec::from_restored(self.graph, programs, rs, CrashIo::<P>::of());
        exec.run_out().map_err(ResumeError::Sim)
    }

    /// Run to completion, handing a snapshot to `sink` whenever at least
    /// `every` rounds have elapsed since the last one (no snapshot is
    /// taken once the run has finished — the final state is the returned
    /// [`Run`]). Resuming from any emitted snapshot continues to the same
    /// bit-for-bit result.
    ///
    /// # Panics
    /// If `every` is zero.
    ///
    /// # Errors
    /// Any [`SimError`], as [`run`](Engine::run).
    pub fn run_checkpointed<P: Program + Persist>(
        &self,
        programs: Vec<P>,
        plan: Option<&FaultPlan>,
        every: Round,
        mut sink: impl FnMut(&Snapshot),
    ) -> Result<Run<P::Output>, SimError>
    where
        P::Msg: Codec,
        P::Output: Codec,
    {
        assert!(every > 0, "checkpoint interval must be at least 1 round");
        let faults = plan.map(|p| FaultCtx::new(*p, CrashIo::<P>::of()));
        let mut exec = SerialExec::new(self.graph, self.config, programs, faults)?;
        let mut last_emit: Round = 0;
        while exec.step()? {
            if exec.prev_round >= last_emit.saturating_add(every) && exec.peek_next().is_some() {
                last_emit = exec.prev_round;
                sink(&encode_snapshot(self.graph, self.config, exec.state_ref()));
            }
        }
        exec.finish()
    }
}

/// Validate and expand one node's outbox entries: the shared addressing
/// checker of both executors. Each directed addressing is checked against
/// the graph ([`SimError::NotANeighbor`] on the first violation, in entry
/// order), broadcasts are expanded over the sender's neighbor list in
/// adjacency order, `messages_sent` is counted, and every transmission is
/// handed to `transmit(to, msg)` — the caller decides delivery (arena
/// staging on the serial engine, owner-shard staging inside the threaded
/// executor's workers). Because expansion order and error precedence live
/// here, the two executors count and order identically by construction.
pub(crate) fn route_entries<M: Clone>(
    graph: &Graph,
    entries: impl Iterator<Item = crate::program::OutEntry<M>>,
    from: NodeId,
    messages_sent: &mut u64,
    mut transmit: impl FnMut(NodeId, M),
) -> Result<(), SimError> {
    for entry in entries {
        match entry.to {
            Some(w) => {
                if !graph.has_edge(from, w) {
                    return Err(SimError::NotANeighbor { from, to: w });
                }
                *messages_sent += 1;
                transmit(w, entry.msg);
            }
            None => {
                let neighbors = graph.neighbors(from);
                *messages_sent += neighbors.len() as u64;
                for &w in neighbors {
                    transmit(w, entry.msg.clone());
                }
            }
        }
    }
    Ok(())
}

/// Route one node's outbox entries on the serial engine: validate through
/// [`route_entries`], then stage every transmitted message into the arena
/// (or count it lost).
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_messages<M: Clone>(
    graph: &Graph,
    entries: impl Iterator<Item = crate::program::OutEntry<M>>,
    next_wake: &[Round],
    round: Round,
    from: NodeId,
    arena: &mut InboxArena<M>,
    metrics: &mut Metrics,
    tracer: &mut Tracer,
) -> Result<(), SimError> {
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let mut lost = 0u64;
    let result = route_entries(graph, entries, from, &mut sent, |to, msg| {
        // A recipient is listening iff it is awake at exactly this round.
        if next_wake[to.index()] == round {
            delivered += 1;
            tracer.push(|| TraceEvent::Delivered { round, from, to });
            arena.stage(from, to, msg);
        } else {
            lost += 1;
            tracer.push(|| TraceEvent::Lost { round, from, to });
        }
    });
    metrics.messages_sent += sent;
    metrics.messages_delivered += delivered;
    metrics.messages_lost += lost;
    result
}

/// [`route_messages`] under a fault plan: every transmission first rolls
/// its fate — keyed by `(seed, round, endpoints, k)` where `k` is the
/// sender's per-round transmission index, so the threaded executor rolls
/// identical fates regardless of chunking. Dropped messages vanish (traced
/// and counted as `faults_dropped`, *not* `messages_lost`), duplicates
/// deliver two copies (each then subject to the awake-recipient rule),
/// delayed messages enter the buffer for later resolution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_messages_faulty<M: Clone>(
    graph: &Graph,
    entries: impl Iterator<Item = crate::program::OutEntry<M>>,
    next_wake: &[Round],
    round: Round,
    from: NodeId,
    arena: &mut InboxArena<M>,
    metrics: &mut Metrics,
    tracer: &mut Tracer,
    fstate: &mut FaultState<M>,
) -> Result<(), SimError> {
    let plan = fstate.plan;
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let mut lost = 0u64;
    let mut fdropped = 0u64;
    let mut fduplicated = 0u64;
    let mut fdelayed = 0u64;
    let mut k = 0u32;
    let delayed = &mut fstate.delayed;
    let result = route_entries(graph, entries, from, &mut sent, |to, msg| {
        let fate = plan.message_fate(round, from.0, to.0, k);
        k += 1;
        let mut deliver_copy = |m: M| {
            if next_wake[to.index()] == round {
                delivered += 1;
                tracer.push(|| TraceEvent::Delivered { round, from, to });
                arena.stage(from, to, m);
            } else {
                lost += 1;
                tracer.push(|| TraceEvent::Lost { round, from, to });
            }
        };
        match fate {
            crate::faults::FaultKind::Deliver => deliver_copy(msg),
            crate::faults::FaultKind::Duplicate => {
                fduplicated += 1;
                deliver_copy(msg.clone());
                deliver_copy(msg);
            }
            crate::faults::FaultKind::Drop => {
                let _ = deliver_copy; // end the closure's borrows for the tracer below
                fdropped += 1;
                tracer.push(|| TraceEvent::FaultDrop { round, from, to });
            }
            crate::faults::FaultKind::Delay => {
                let _ = deliver_copy; // end the closure's borrows for the tracer below
                fdelayed += 1;
                let until = round + plan.delay_rounds;
                tracer.push(|| TraceEvent::FaultDelay {
                    round,
                    from,
                    to,
                    until,
                });
                delayed.push(DelayedMsg {
                    due: until,
                    from,
                    to,
                    msg,
                });
            }
        }
    });
    metrics.messages_sent += sent;
    metrics.messages_delivered += delivered;
    metrics.messages_lost += lost;
    metrics.faults_dropped += fdropped;
    metrics.faults_duplicated += fduplicated;
    metrics.faults_delayed += fdelayed;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Envelope;
    use awake_graphs::generators;

    /// Broadcasts ident at round 1; collects neighbor idents; halts.
    #[derive(Default)]
    struct OneShot {
        heard: Vec<u64>,
    }

    impl Program for OneShot {
        type Msg = u64;
        type Output = Vec<u64>;
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            out.broadcast(view.ident);
        }
        fn receive(&mut self, _view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.heard = inbox.iter().map(|e| e.msg).collect();
            Action::Halt
        }
        fn output(&self) -> Option<Vec<u64>> {
            Some(self.heard.clone())
        }
    }

    #[test]
    fn round_one_exchange() {
        let g = generators::path(3);
        let run = Engine::new(&g, Config::default())
            .run(vec![
                OneShot::default(),
                OneShot::default(),
                OneShot::default(),
            ])
            .unwrap();
        assert_eq!(run.outputs[0], vec![2]);
        assert_eq!(run.outputs[1], vec![1, 3]);
        assert_eq!(run.metrics.rounds, 1);
        assert_eq!(run.metrics.max_awake(), 1);
        assert_eq!(run.metrics.messages_sent, 4);
        assert_eq!(run.metrics.messages_delivered, 4);
        assert_eq!(run.metrics.messages_lost, 0);
    }

    /// Node 0 stays awake 3 rounds broadcasting; node 1 sleeps immediately
    /// until round 3: the round-2 message must be lost.
    struct Phased {
        is_sender: bool,
        got: Vec<(Round, u64)>,
    }

    impl Program for Phased {
        type Msg = u64;
        type Output = Vec<(Round, u64)>;
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            if self.is_sender {
                out.broadcast(view.round * 10);
            }
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            for e in inbox {
                self.got.push((view.round, e.msg));
            }
            if self.is_sender {
                if view.round < 3 {
                    Action::Stay
                } else {
                    Action::Halt
                }
            } else if view.round == 1 {
                Action::SleepUntil(3)
            } else {
                Action::Halt
            }
        }
        fn output(&self) -> Option<Self::Output> {
            Some(self.got.clone())
        }
    }

    #[test]
    fn messages_to_sleeping_nodes_are_lost() {
        let g = generators::path(2);
        let run = Engine::new(&g, Config::default())
            .run(vec![
                Phased {
                    is_sender: true,
                    got: vec![],
                },
                Phased {
                    is_sender: false,
                    got: vec![],
                },
            ])
            .unwrap();
        // receiver hears round 1 and round 3, but not round 2
        assert_eq!(run.outputs[1], vec![(1, 10), (3, 30)]);
        assert_eq!(run.metrics.messages_lost, 1);
        assert_eq!(run.metrics.awake[1], 2);
        assert_eq!(run.metrics.awake[0], 3);
    }

    struct Sleeper(Round);
    impl Program for Sleeper {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View, _: &mut Outbox<()>) {}
        fn receive(&mut self, view: &View, _: &[Envelope<()>]) -> Action {
            if view.round == 1 {
                Action::SleepUntil(self.0)
            } else {
                Action::Halt
            }
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn skip_ahead_is_cheap_for_huge_gaps() {
        // The property under test is algorithmic, not wall-clock: the run
        // must cost O(awake node-rounds), not O(rounds). With a 10^12-round
        // gap, a per-round scan could not finish within any test timeout,
        // so completing at all — with exactly two awake rounds per node —
        // is the skip-ahead guarantee.
        let g = generators::path(2);
        let far = 1_000_000_000_000;
        let run = Engine::new(&g, Config::default())
            .run(vec![Sleeper(far), Sleeper(far)])
            .unwrap();
        assert_eq!(run.metrics.rounds, far);
        assert_eq!(run.metrics.max_awake(), 2);
        assert_eq!(run.metrics.awake, vec![2, 2]);
    }

    #[test]
    fn invalid_sleep_detected() {
        let g = generators::path(2);
        let err = Engine::new(&g, Config::default())
            .run(vec![Sleeper(1), Sleeper(5)])
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidSleep { until: 1, .. }));
    }

    #[test]
    fn round_budget_enforced() {
        let g = generators::path(2);
        let err = Engine::new(&g, Config::with_max_rounds(10))
            .run(vec![Sleeper(50), Sleeper(50)])
            .unwrap_err();
        assert_eq!(err, SimError::RoundBudgetExceeded { limit: 10 });
    }

    struct BadSend;
    impl Program for BadSend {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View, out: &mut Outbox<()>) {
            out.to(NodeId(2), ()); // not a neighbor on a path of 3
        }
        fn receive(&mut self, _: &View, _: &[Envelope<()>]) -> Action {
            Action::Halt
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn non_neighbor_send_detected() {
        let g = generators::path(3);
        let err = Engine::new(&g, Config::default())
            .run(vec![BadSend, BadSend, BadSend])
            .unwrap_err();
        assert!(matches!(err, SimError::NotANeighbor { .. }));
    }

    struct NoOutput;
    impl Program for NoOutput {
        type Msg = ();
        type Output = u32;
        fn send(&mut self, _: &View, _: &mut Outbox<()>) {}
        fn receive(&mut self, _: &View, _: &[Envelope<()>]) -> Action {
            Action::Halt
        }
        fn output(&self) -> Option<u32> {
            None
        }
    }

    #[test]
    fn missing_output_detected() {
        let g = generators::path(2);
        let err = Engine::new(&g, Config::default())
            .run(vec![NoOutput, NoOutput])
            .unwrap_err();
        assert!(matches!(err, SimError::MissingOutput(_)));
    }

    #[test]
    fn program_count_mismatch() {
        let g = generators::path(3);
        let err = Engine::new(&g, Config::default())
            .run(vec![NoOutput])
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::ProgramCountMismatch {
                got: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn empty_graph_runs() {
        let g = awake_graphs::GraphBuilder::new(0).build().unwrap();
        let run = Engine::new(&g, Config::default())
            .run(Vec::<OneShot>::new())
            .unwrap();
        assert!(run.outputs.is_empty());
        assert_eq!(run.metrics.rounds, 0);
    }

    #[test]
    fn trace_records_events() {
        let g = generators::path(2);
        let cfg = Config {
            trace: TraceMode::Capped(100),
            ..Config::default()
        };
        let run = Engine::new(&g, cfg)
            .run(vec![OneShot::default(), OneShot::default()])
            .unwrap();
        assert!(run
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. })));
        assert!(run
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Halt { .. })));
        assert_eq!(run.trace_dropped, 0, "uncapped trace is complete");
    }

    #[test]
    fn capped_trace_reports_dropped_events() {
        let g = generators::path(2);
        let full = Engine::new(
            &g,
            Config {
                trace: TraceMode::Capped(1000),
                ..Config::default()
            },
        )
        .run(vec![OneShot::default(), OneShot::default()])
        .unwrap();
        assert!(full.trace.len() > 2);
        let capped = Engine::new(
            &g,
            Config {
                trace: TraceMode::Capped(2),
                ..Config::default()
            },
        )
        .run(vec![OneShot::default(), OneShot::default()])
        .unwrap();
        // The capped trace is the exact prefix of the full one, and the
        // drop counter accounts for everything past it.
        assert_eq!(capped.trace.as_slice(), &full.trace[..2]);
        assert_eq!(capped.trace_dropped, full.trace.len() as u64 - 2);
    }

    struct WakesAtZero;
    impl Program for WakesAtZero {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View, _: &mut Outbox<()>) {}
        fn receive(&mut self, _: &View, _: &[Envelope<()>]) -> Action {
            Action::Halt
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
        fn initial_wake(&self) -> Option<Round> {
            Some(0)
        }
    }

    #[test]
    fn initial_wake_before_first_round_is_a_typed_error() {
        let g = generators::path(2);
        let err = Engine::new(&g, Config::default())
            .run(vec![WakesAtZero, WakesAtZero])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidInitialWake {
                node: NodeId(0),
                round: 0
            }
        );
        assert!(err.to_string().contains("initial wake"));
    }

    #[test]
    fn error_display() {
        let e = SimError::NotANeighbor {
            from: NodeId(0),
            to: NodeId(9),
        };
        assert!(e.to_string().contains("non-neighbor"));
    }

    /// Stay-lane and wheel wakes interleaving: node 0 stays every round,
    /// node 1 sleeps in jumps; they must meet exactly when scheduled.
    struct Mixed {
        jumps: bool,
        meetings: Vec<Round>,
    }

    impl Program for Mixed {
        type Msg = u64;
        type Output = Vec<Round>;
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            out.broadcast(view.round);
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            if !inbox.is_empty() {
                self.meetings.push(view.round);
            }
            if self.jumps {
                if view.round >= 20 {
                    Action::Halt
                } else {
                    Action::SleepUntil(view.round + 7)
                }
            } else if view.round >= 22 {
                Action::Halt
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<Vec<Round>> {
            Some(self.meetings.clone())
        }
    }

    #[test]
    fn stay_lane_meets_wheel_wakes() {
        let g = generators::path(2);
        let run = Engine::new(&g, Config::default())
            .run(vec![
                Mixed {
                    jumps: false,
                    meetings: vec![],
                },
                Mixed {
                    jumps: true,
                    meetings: vec![],
                },
            ])
            .unwrap();
        // node 1 awake at 1, 8, 15, 22; node 0 awake 1..=22: they exchange
        // exactly at node 1's wake rounds.
        assert_eq!(run.outputs[0], vec![1, 8, 15, 22]);
        assert_eq!(run.outputs[1], vec![1, 8, 15, 22]);
        assert_eq!(run.metrics.awake[1], 4);
        assert_eq!(run.metrics.awake[0], 22);
    }

    /// A fully scripted node: first wakes at `initial`, optionally sleeps
    /// once (`at` round, until `until`), halts at `halt_at`, stays
    /// otherwise; broadcasts its ident and records everything it hears.
    struct Scripted {
        initial: Round,
        sleep: Option<(Round, Round)>,
        halt_at: Round,
        heard: Vec<(Round, u64)>,
    }

    impl Scripted {
        fn new(initial: Round, sleep: Option<(Round, Round)>, halt_at: Round) -> Self {
            Scripted {
                initial,
                sleep,
                halt_at,
                heard: vec![],
            }
        }
    }

    impl Program for Scripted {
        type Msg = u64;
        type Output = Vec<(Round, u64)>;
        fn initial_wake(&self) -> Option<Round> {
            Some(self.initial)
        }
        fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
            out.broadcast(view.ident);
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            for e in inbox {
                self.heard.push((view.round, e.msg));
            }
            if view.round >= self.halt_at {
                Action::Halt
            } else if let Some((at, until)) = self.sleep {
                if view.round == at {
                    return Action::SleepUntil(until);
                }
                Action::Stay
            } else {
                Action::Stay
            }
        }
        fn output(&self) -> Option<Self::Output> {
            Some(self.heard.clone())
        }
    }

    /// Regression for the wheel's stale-min memo: initial wakes at 65/66
    /// make the seed events cascade across the first 64-round block
    /// boundary, after which the memo used to still hold the popped round
    /// 65 — so at round 66 the stay lane (node 0) took the fast path and
    /// node 1's wheel wake was skipped. Node 0 then heard nothing at 66,
    /// and node 1 was popped *after* round 70, regressing metrics.rounds.
    #[test]
    fn wheel_wake_coinciding_with_stay_round_after_cascade() {
        let g = generators::path(2);
        let run = Engine::new(&g, Config::default())
            .run(vec![
                Scripted::new(65, None, 70),
                Scripted::new(66, None, 66),
            ])
            .unwrap();
        // They are both awake exactly at round 66 and must exchange there.
        assert_eq!(run.outputs[0], vec![(66, 2)]);
        assert_eq!(run.outputs[1], vec![(66, 1)]);
        assert_eq!(run.metrics.rounds, 70, "rounds must stay monotone");
        assert_eq!(run.metrics.awake[0], 6); // rounds 65..=70
        assert_eq!(run.metrics.awake[1], 1); // round 66 only
    }

    /// Regression for the memo's other stale path: after round 65's pop,
    /// node 2 schedules a far sleep (round 100) while node 0's wake at 66
    /// is still pending in the wheel. The memo must not adopt 100 as the
    /// minimum, or round 66's stay lane (node 1) would skip node 0's wake.
    #[test]
    fn schedule_after_pop_does_not_hide_pending_wheel_wake() {
        let g = generators::path(3);
        let run = Engine::new(&g, Config::default())
            .run(vec![
                Scripted::new(66, None, 66),
                Scripted::new(65, None, 70),
                Scripted::new(65, Some((65, 100)), 100),
            ])
            .unwrap();
        // Nodes 1 and 2 exchange at 65; nodes 0 and 1 must still exchange
        // at 66 even though node 2's sleep was scheduled in between.
        assert_eq!(run.outputs[0], vec![(66, 2)]);
        assert_eq!(run.outputs[1], vec![(65, 3), (66, 1)]);
        assert_eq!(run.outputs[2], vec![(65, 2)]);
        assert_eq!(run.metrics.rounds, 100);
        assert_eq!(run.metrics.awake, vec![1, 6, 2]);
    }
}
