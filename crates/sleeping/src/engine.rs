//! The deterministic skip-ahead executor.

use crate::metrics::Metrics;
use crate::program::{Action, Envelope, Outgoing, Program, View};
use crate::trace::{TraceEvent, TraceMode, Tracer};
use crate::Round;
use awake_graphs::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Abort if the next scheduled round exceeds this bound.
    pub max_rounds: Round,
    /// Tracing mode.
    pub trace: TraceMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // Generous but finite: the paper's round complexities are
            // polynomial; anything beyond this is a runaway schedule bug.
            max_rounds: u64::MAX / 4,
            trace: TraceMode::Off,
        }
    }
}

impl Config {
    /// Config with a specific round budget.
    pub fn with_max_rounds(max_rounds: Round) -> Self {
        Config {
            max_rounds,
            ..Config::default()
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A program slept to a round not strictly in the future.
    InvalidSleep {
        /// The offending node.
        node: NodeId,
        /// Current round.
        round: Round,
        /// Requested wake round.
        until: Round,
    },
    /// A program halted but returned no output.
    MissingOutput(
        /// The offending node.
        NodeId,
    ),
    /// A program addressed a message to a non-neighbor.
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// The schedule exceeded [`Config::max_rounds`].
    RoundBudgetExceeded {
        /// The configured budget.
        limit: Round,
    },
    /// The number of programs didn't match the number of nodes.
    ProgramCountMismatch {
        /// Programs supplied.
        got: usize,
        /// Nodes in the graph.
        expected: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSleep { node, round, until } => write!(
                f,
                "node {node} at round {round} requested non-future wake round {until}"
            ),
            SimError::MissingOutput(v) => write!(f, "node {v} halted without an output"),
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} sent a message to non-neighbor {to}")
            }
            SimError::RoundBudgetExceeded { limit } => {
                write!(f, "round budget {limit} exceeded")
            }
            SimError::ProgramCountMismatch { got, expected } => {
                write!(f, "got {got} programs for {expected} nodes")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A completed execution.
#[derive(Debug)]
pub struct Run<O> {
    /// Output of each node (indexed by [`NodeId`]).
    pub outputs: Vec<O>,
    /// Resource accounting.
    pub metrics: Metrics,
    /// Recorded events (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

/// The serial deterministic executor.
///
/// See the [crate docs](crate) for a worked example.
pub struct Engine<'g> {
    graph: &'g Graph,
    config: Config,
}

impl<'g> Engine<'g> {
    /// Create an engine over `graph`.
    pub fn new(graph: &'g Graph, config: Config) -> Self {
        Engine { graph, config }
    }

    /// Execute `programs` (one per node, indexed by [`NodeId`]) to completion.
    ///
    /// # Errors
    /// Any [`SimError`]; see the variants for the contract each program must
    /// uphold.
    pub fn run<P: Program>(&self, mut programs: Vec<P>) -> Result<Run<P::Output>, SimError> {
        let n = self.graph.n();
        if programs.len() != n {
            return Err(SimError::ProgramCountMismatch {
                got: programs.len(),
                expected: n,
            });
        }
        let mut metrics = Metrics::new(n);
        let mut tracer = Tracer::new(self.config.trace);
        if n == 0 {
            return Ok(Run {
                outputs: vec![],
                metrics,
                trace: tracer.events,
            });
        }

        // next_wake[v] = Some(r): v will be awake at round r. None: halted.
        let mut next_wake: Vec<Option<Round>> = Vec::with_capacity(n);
        let mut heap: BinaryHeap<Reverse<(Round, u32)>> = BinaryHeap::with_capacity(n);
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        for v in 0..n {
            match programs[v].initial_wake() {
                Some(r) => {
                    next_wake.push(Some(r));
                    heap.push(Reverse((r, v as u32)));
                }
                None => {
                    // Node sleeps through the whole stage (Lemma 8 composition).
                    next_wake.push(None);
                    match programs[v].output() {
                        Some(o) => outputs[v] = Some(o),
                        None => return Err(SimError::MissingOutput(NodeId(v as u32))),
                    }
                }
            }
        }

        // Scratch buffers reused across rounds.
        let mut awake: Vec<u32> = Vec::new();
        let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();

        while let Some(&Reverse((round, _))) = heap.peek() {
            if round > self.config.max_rounds {
                return Err(SimError::RoundBudgetExceeded {
                    limit: self.config.max_rounds,
                });
            }
            metrics.rounds = round;

            awake.clear();
            while let Some(&Reverse((r, v))) = heap.peek() {
                if r != round {
                    break;
                }
                heap.pop();
                awake.push(v);
            }
            awake.sort_unstable();

            // Phase A: all awake nodes transmit.
            for &v in &awake {
                let vid = NodeId(v);
                let view = View {
                    round,
                    me: vid,
                    ident: self.graph.ident(vid),
                    n,
                    neighbors: self.graph.neighbors(vid),
                };
                metrics.note_awake(vid, programs[v as usize].span());
                tracer.push(|| TraceEvent::Awake { round, node: vid });
                for out in programs[v as usize].send(&view) {
                    match out {
                        Outgoing::To(w, m) => {
                            if !self.graph.has_edge(vid, w) {
                                return Err(SimError::NotANeighbor { from: vid, to: w });
                            }
                            metrics.messages_sent += 1;
                            deliver(
                                &mut inboxes,
                                &next_wake,
                                round,
                                vid,
                                w,
                                m,
                                &mut metrics,
                                &mut tracer,
                            );
                        }
                        Outgoing::Broadcast(m) => {
                            for &w in self.graph.neighbors(vid) {
                                metrics.messages_sent += 1;
                                deliver(
                                    &mut inboxes,
                                    &next_wake,
                                    round,
                                    vid,
                                    w,
                                    m.clone(),
                                    &mut metrics,
                                    &mut tracer,
                                );
                            }
                        }
                    }
                }
            }

            // Phase B: all awake nodes receive and choose their next action.
            for &v in &awake {
                let vid = NodeId(v);
                let view = View {
                    round,
                    me: vid,
                    ident: self.graph.ident(vid),
                    n,
                    neighbors: self.graph.neighbors(vid),
                };
                let mut inbox = std::mem::take(&mut inboxes[v as usize]);
                inbox.sort_by_key(|e| e.from);
                match programs[v as usize].receive(&view, &inbox) {
                    Action::Stay => {
                        next_wake[v as usize] = Some(round + 1);
                        heap.push(Reverse((round + 1, v)));
                    }
                    Action::SleepUntil(until) => {
                        if until <= round {
                            return Err(SimError::InvalidSleep {
                                node: vid,
                                round,
                                until,
                            });
                        }
                        tracer.push(|| TraceEvent::Sleep {
                            round,
                            node: vid,
                            until,
                        });
                        next_wake[v as usize] = Some(until);
                        heap.push(Reverse((until, v)));
                    }
                    Action::Halt => {
                        tracer.push(|| TraceEvent::Halt { round, node: vid });
                        next_wake[v as usize] = None;
                        match programs[v as usize].output() {
                            Some(o) => outputs[v as usize] = Some(o),
                            None => return Err(SimError::MissingOutput(vid)),
                        }
                    }
                }
                inbox.clear();
                inboxes[v as usize] = inbox; // return the buffer
            }
        }

        let outputs = outputs
            .into_iter()
            .enumerate()
            .map(|(v, o)| o.ok_or(SimError::MissingOutput(NodeId(v as u32))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Run {
            outputs,
            metrics,
            trace: tracer.events,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn deliver<M>(
    inboxes: &mut [Vec<Envelope<M>>],
    next_wake: &[Option<Round>],
    round: Round,
    from: NodeId,
    to: NodeId,
    msg: M,
    metrics: &mut Metrics,
    tracer: &mut Tracer,
) {
    // A recipient is listening iff it is awake at exactly this round.
    if next_wake[to.index()] == Some(round) {
        metrics.messages_delivered += 1;
        tracer.push(|| TraceEvent::Delivered { round, from, to });
        inboxes[to.index()].push(Envelope { from, msg });
    } else {
        metrics.messages_lost += 1;
        tracer.push(|| TraceEvent::Lost { round, from, to });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::generators;

    /// Broadcasts ident at round 1; collects neighbor idents; halts.
    #[derive(Default)]
    struct OneShot {
        heard: Vec<u64>,
    }

    impl Program for OneShot {
        type Msg = u64;
        type Output = Vec<u64>;
        fn send(&mut self, view: &View) -> Vec<Outgoing<u64>> {
            vec![Outgoing::Broadcast(view.ident)]
        }
        fn receive(&mut self, _view: &View, inbox: &[Envelope<u64>]) -> Action {
            self.heard = inbox.iter().map(|e| e.msg).collect();
            Action::Halt
        }
        fn output(&self) -> Option<Vec<u64>> {
            Some(self.heard.clone())
        }
    }

    #[test]
    fn round_one_exchange() {
        let g = generators::path(3);
        let run = Engine::new(&g, Config::default())
            .run(vec![OneShot::default(), OneShot::default(), OneShot::default()])
            .unwrap();
        assert_eq!(run.outputs[0], vec![2]);
        assert_eq!(run.outputs[1], vec![1, 3]);
        assert_eq!(run.metrics.rounds, 1);
        assert_eq!(run.metrics.max_awake(), 1);
        assert_eq!(run.metrics.messages_sent, 4);
        assert_eq!(run.metrics.messages_delivered, 4);
        assert_eq!(run.metrics.messages_lost, 0);
    }

    /// Node 0 stays awake 3 rounds broadcasting; node 1 sleeps immediately
    /// until round 3: the round-2 message must be lost.
    struct Phased {
        is_sender: bool,
        got: Vec<(Round, u64)>,
    }

    impl Program for Phased {
        type Msg = u64;
        type Output = Vec<(Round, u64)>;
        fn send(&mut self, view: &View) -> Vec<Outgoing<u64>> {
            if self.is_sender {
                vec![Outgoing::Broadcast(view.round * 10)]
            } else {
                vec![]
            }
        }
        fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
            for e in inbox {
                self.got.push((view.round, e.msg));
            }
            if self.is_sender {
                if view.round < 3 {
                    Action::Stay
                } else {
                    Action::Halt
                }
            } else if view.round == 1 {
                Action::SleepUntil(3)
            } else {
                Action::Halt
            }
        }
        fn output(&self) -> Option<Self::Output> {
            Some(self.got.clone())
        }
    }

    #[test]
    fn messages_to_sleeping_nodes_are_lost() {
        let g = generators::path(2);
        let run = Engine::new(&g, Config::default())
            .run(vec![
                Phased {
                    is_sender: true,
                    got: vec![],
                },
                Phased {
                    is_sender: false,
                    got: vec![],
                },
            ])
            .unwrap();
        // receiver hears round 1 and round 3, but not round 2
        assert_eq!(run.outputs[1], vec![(1, 10), (3, 30)]);
        assert_eq!(run.metrics.messages_lost, 1);
        assert_eq!(run.metrics.awake[1], 2);
        assert_eq!(run.metrics.awake[0], 3);
    }

    struct Sleeper(Round);
    impl Program for Sleeper {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View) -> Vec<Outgoing<()>> {
            vec![]
        }
        fn receive(&mut self, view: &View, _: &[Envelope<()>]) -> Action {
            if view.round == 1 {
                Action::SleepUntil(self.0)
            } else {
                Action::Halt
            }
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn skip_ahead_is_cheap_for_huge_gaps() {
        let g = generators::path(2);
        let far = 1_000_000_000_000;
        let t0 = std::time::Instant::now();
        let run = Engine::new(&g, Config::default())
            .run(vec![Sleeper(far), Sleeper(far)])
            .unwrap();
        assert_eq!(run.metrics.rounds, far);
        assert_eq!(run.metrics.max_awake(), 2);
        assert!(t0.elapsed().as_millis() < 100, "skip-ahead must be O(awake)");
    }

    #[test]
    fn invalid_sleep_detected() {
        let g = generators::path(2);
        let err = Engine::new(&g, Config::default())
            .run(vec![Sleeper(1), Sleeper(5)])
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidSleep { until: 1, .. }));
    }

    #[test]
    fn round_budget_enforced() {
        let g = generators::path(2);
        let err = Engine::new(&g, Config::with_max_rounds(10))
            .run(vec![Sleeper(50), Sleeper(50)])
            .unwrap_err();
        assert_eq!(err, SimError::RoundBudgetExceeded { limit: 10 });
    }

    struct BadSend;
    impl Program for BadSend {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &View) -> Vec<Outgoing<()>> {
            vec![Outgoing::To(NodeId(2), ())] // not a neighbor on a path of 3
        }
        fn receive(&mut self, _: &View, _: &[Envelope<()>]) -> Action {
            Action::Halt
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn non_neighbor_send_detected() {
        let g = generators::path(3);
        let err = Engine::new(&g, Config::default())
            .run(vec![BadSend, BadSend, BadSend])
            .unwrap_err();
        assert!(matches!(err, SimError::NotANeighbor { .. }));
    }

    struct NoOutput;
    impl Program for NoOutput {
        type Msg = ();
        type Output = u32;
        fn send(&mut self, _: &View) -> Vec<Outgoing<()>> {
            vec![]
        }
        fn receive(&mut self, _: &View, _: &[Envelope<()>]) -> Action {
            Action::Halt
        }
        fn output(&self) -> Option<u32> {
            None
        }
    }

    #[test]
    fn missing_output_detected() {
        let g = generators::path(2);
        let err = Engine::new(&g, Config::default())
            .run(vec![NoOutput, NoOutput])
            .unwrap_err();
        assert!(matches!(err, SimError::MissingOutput(_)));
    }

    #[test]
    fn program_count_mismatch() {
        let g = generators::path(3);
        let err = Engine::new(&g, Config::default())
            .run(vec![NoOutput])
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::ProgramCountMismatch {
                got: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn empty_graph_runs() {
        let g = awake_graphs::GraphBuilder::new(0).build().unwrap();
        let run = Engine::new(&g, Config::default())
            .run(Vec::<OneShot>::new())
            .unwrap();
        assert!(run.outputs.is_empty());
        assert_eq!(run.metrics.rounds, 0);
    }

    #[test]
    fn trace_records_events() {
        let g = generators::path(2);
        let mut cfg = Config::default();
        cfg.trace = TraceMode::Capped(100);
        let run = Engine::new(&g, cfg)
            .run(vec![OneShot::default(), OneShot::default()])
            .unwrap();
        assert!(run
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. })));
        assert!(run.trace.iter().any(|e| matches!(e, TraceEvent::Halt { .. })));
    }

    #[test]
    fn error_display() {
        let e = SimError::NotANeighbor {
            from: NodeId(0),
            to: NodeId(9),
        };
        assert!(e.to_string().contains("non-neighbor"));
    }
}
