//! The event-compression equivalence property.
//!
//! The production executors jump virtual time across idle gaps in one
//! wheel batch-cascade, so their cost is proportional to awake *events*,
//! not elapsed rounds. This file checks that the jump is unobservable: on
//! randomized schedules — including 10⁹-round idle gaps, fault delays
//! whose due rounds land inside a jumped span, and snapshots taken inside
//! one — the serial engine and the threaded executor at 1/2/4/8 workers
//! are bit-for-bit identical (outputs, `Metrics`, trace, snapshot bytes)
//! to a *reference per-round stepper* implemented here from the model's
//! definition, with none of the engine's machinery: no wheel, no stay
//! lane, no inbox arena. The reference derives each executed round by a
//! brute-force scan over every node's next wake round, which is the
//! Sleeping model's semantics stated directly.

use awake_graphs::{generators, Graph, NodeId};
use awake_sleeping::checkpoint::{Paused, Persist, Reader, Snapshot, Writer};
use awake_sleeping::threaded::{
    resume_threaded, run_threaded, run_threaded_faulty, snapshot_at_threaded,
};
use awake_sleeping::{
    Action, Config, Engine, Envelope, FaultKind, FaultPlan, Metrics, Outbox, Program, Run,
    TraceEvent, TraceMode, View,
};

/// The idle-gap magnitude the compression must jump in O(1) bucket work: a
/// per-round reference could never scan 10⁹ rounds, so the reference below
/// *derives* empty rounds from the wake-round minimum instead of visiting
/// them — same semantics, stated directly.
const GAP: u64 = 1_000_000_000;

/// Trace cap for every run in this file — large enough that no test here
/// ever drops an event (asserted via `trace_dropped == 0` comparisons).
const CAP: usize = 200_000;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

// ---------------------------------------------------------------------------
// A fully scripted program: its behavior is a pure function of the round,
// so the reference stepper can replay it without running the program.

/// Wakes at exactly the rounds in `wakes` (strictly increasing), broadcasts
/// its ident each awake round, records everything it hears, and halts after
/// its last scripted wake. Awake at an unscripted round (crash-restart puts
/// it there), it simply rejoins the script at the next wake after it.
#[derive(Clone)]
struct ScriptProg {
    wakes: Vec<u64>,
    heard: Vec<(u64, u64)>,
}

/// The next scripted wake strictly after `round`, shared by the program
/// and the reference stepper so both sides follow one schedule rule.
fn next_wake_after(wakes: &[u64], round: u64) -> Option<u64> {
    match wakes.binary_search(&(round + 1)) {
        Ok(i) => Some(wakes[i]),
        Err(i) => wakes.get(i).copied(),
    }
}

impl Program for ScriptProg {
    type Msg = u64;
    type Output = Vec<(u64, u64)>;
    fn initial_wake(&self) -> Option<u64> {
        self.wakes.first().copied()
    }
    fn send(&mut self, view: &View, out: &mut Outbox<u64>) {
        out.broadcast(view.ident);
    }
    fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
        for e in inbox {
            self.heard.push((view.round, e.msg));
        }
        match next_wake_after(&self.wakes, view.round) {
            None => Action::Halt,
            Some(w) if w == view.round + 1 => Action::Stay,
            Some(w) => Action::SleepUntil(w),
        }
    }
    fn output(&self) -> Option<Self::Output> {
        Some(self.heard.clone())
    }
}

impl Persist for ScriptProg {
    fn save(&self, w: &mut Writer) {
        use awake_sleeping::checkpoint::Codec;
        self.heard.encode(w);
    }
    fn restore(
        &mut self,
        r: &mut Reader<'_>,
    ) -> Result<(), awake_sleeping::checkpoint::CheckpointError> {
        use awake_sleeping::checkpoint::Codec;
        self.heard = Vec::decode(r)?;
        Ok(())
    }
}

fn progs(scripts: &[Vec<u64>]) -> Vec<ScriptProg> {
    scripts
        .iter()
        .map(|w| ScriptProg {
            wakes: w.clone(),
            heard: Vec::new(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Randomized schedules.

/// xorshift64 — deterministic schedule randomness without external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Per-node wake scripts mixing every gap shape the compression must
/// handle: consecutive rounds (stay lane), short and medium sleeps, sleeps
/// that cross a 64-round wheel block boundary, and 10⁹-round jumps. Half
/// the nodes share a rendezvous round on the far side of the big gap so
/// messages actually cross it.
fn random_scripts(rng: &mut Rng, n: usize) -> Vec<Vec<u64>> {
    let rendezvous = GAP + 137;
    (0..n)
        .map(|_| {
            let mut cur = 1 + rng.below(6);
            let mut wakes = vec![cur];
            for _ in 0..3 + rng.below(5) {
                cur += match rng.below(5) {
                    0 => 1,
                    1 => 2 + rng.below(4),
                    2 => 6 + rng.below(75),
                    3 => GAP + rng.below(1000),
                    _ => 64 + rng.below(64),
                };
                wakes.push(cur);
            }
            if rng.below(2) == 0 {
                wakes.push(rendezvous);
                wakes.sort_unstable();
                wakes.dedup();
            }
            wakes
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The reference per-round stepper.

struct RefTrace {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl RefTrace {
    fn push(&mut self, e: TraceEvent) {
        if self.events.len() < CAP {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }
}

/// Deliver one transmission under the model's rule: received iff the
/// recipient is awake at exactly this round, otherwise lost.
#[allow(clippy::too_many_arguments)]
fn deliver_one(
    round: u64,
    from: NodeId,
    to: NodeId,
    msg: u64,
    next_wake: &[u64],
    metrics: &mut Metrics,
    tr: &mut RefTrace,
    inbox: &mut [Vec<(u32, u64)>],
) {
    if next_wake[to.index()] == round {
        metrics.messages_delivered += 1;
        tr.push(TraceEvent::Delivered { round, from, to });
        inbox[to.index()].push((from.0, msg));
    } else {
        metrics.messages_lost += 1;
        tr.push(TraceEvent::Lost { round, from, to });
    }
}

/// Execute `scripts` on `g` by the definition: the next executed round is
/// the minimum pending wake round over all nodes (found by brute-force
/// scan), every round between it and the previous one is an empty round,
/// and each executed round runs phase A (all awake nodes transmit), late
/// fault-delay resolution, then phase B (receive and choose). Returns the
/// exact `Run` the production executors must reproduce.
fn reference_run(g: &Graph, scripts: &[Vec<u64>], plan: Option<FaultPlan>) -> Run<Vec<(u64, u64)>> {
    let n = g.n();
    let mut metrics = Metrics::new(n);
    let mut tr = RefTrace {
        events: Vec::new(),
        dropped: 0,
    };
    // 0 = halted/never (rounds are 1-based).
    let mut next_wake: Vec<u64> = scripts.iter().map(|w| w[0]).collect();
    let mut heard: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let mut outputs: Vec<Option<Vec<(u64, u64)>>> = vec![None; n];
    let mut inbox: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    // (due, from, to, msg) in decision order, as the executors keep it.
    let mut delayed: Vec<(u64, u32, u32, u64)> = Vec::new();
    // Crash-restarted nodes still recovering (no non-Stay action yet).
    let mut recovering: Vec<bool> = vec![false; n];
    let mut prev = 0u64;

    while let Some(round) = (0..n).map(|v| next_wake[v]).filter(|&r| r != 0).min() {
        let awake: Vec<u32> = (0..n as u32)
            .filter(|&v| next_wake[v as usize] == round)
            .collect();
        metrics.rounds_skipped += round - prev - 1;
        metrics.rounds = round;
        prev = round;

        // Phase A: all awake nodes transmit, ascending node order.
        let mut crashed: Vec<u32> = Vec::new();
        for &v in &awake {
            let from = NodeId(v);
            metrics.note_awake(from, "main");
            tr.push(TraceEvent::Awake { round, node: from });
            if let Some(p) = plan {
                if p.crashes(round, v) {
                    crashed.push(v);
                }
            }
            let ident = g.ident(from);
            for (k, &to) in g.neighbors(from).iter().enumerate() {
                let k = k as u32;
                metrics.messages_sent += 1;
                let fate = plan.map_or(FaultKind::Deliver, |p| p.message_fate(round, v, to.0, k));
                match fate {
                    FaultKind::Deliver => {
                        deliver_one(
                            round,
                            from,
                            to,
                            ident,
                            &next_wake,
                            &mut metrics,
                            &mut tr,
                            &mut inbox,
                        );
                    }
                    FaultKind::Duplicate => {
                        metrics.faults_duplicated += 1;
                        for _ in 0..2 {
                            deliver_one(
                                round,
                                from,
                                to,
                                ident,
                                &next_wake,
                                &mut metrics,
                                &mut tr,
                                &mut inbox,
                            );
                        }
                    }
                    FaultKind::Drop => {
                        metrics.faults_dropped += 1;
                        tr.push(TraceEvent::FaultDrop { round, from, to });
                    }
                    FaultKind::Delay => {
                        metrics.faults_delayed += 1;
                        let until = round + plan.expect("delay fate implies a plan").delay_rounds;
                        tr.push(TraceEvent::FaultDelay {
                            round,
                            from,
                            to,
                            until,
                        });
                        delayed.push((until, v, to.0, ident));
                    }
                }
            }
        }

        // Between phases: delayed messages that have come due. A due round
        // nobody executed — e.g. one inside a jumped gap — loses the
        // message, stamped with its due round.
        if delayed.iter().any(|d| d.0 <= round) {
            let mut kept = Vec::new();
            let mut touched: Vec<u32> = Vec::new();
            for d in std::mem::take(&mut delayed) {
                let (due, fv, tv, msg) = d;
                if due > round {
                    kept.push(d);
                } else if due == round && next_wake[tv as usize] == round {
                    metrics.messages_delivered += 1;
                    tr.push(TraceEvent::Delivered {
                        round,
                        from: NodeId(fv),
                        to: NodeId(tv),
                    });
                    inbox[tv as usize].push((fv, msg));
                    touched.push(tv);
                } else {
                    metrics.messages_lost += 1;
                    tr.push(TraceEvent::Lost {
                        round: due,
                        from: NodeId(fv),
                        to: NodeId(tv),
                    });
                }
            }
            delayed = kept;
            touched.sort_unstable();
            touched.dedup();
            for v in touched {
                // restore sorted-by-sender (stable, as the arena does)
                inbox[v as usize].sort_by_key(|e| e.0);
            }
        }

        // Phase B: receive and choose, ascending node order. A crashed node
        // loses the round — inbox discarded, state unchanged — and restarts
        // at the next round.
        let mut rec_round = false;
        for &v in &awake {
            let vi = v as usize;
            if crashed.contains(&v) {
                inbox[vi].clear();
                tr.push(TraceEvent::Crash {
                    round,
                    node: NodeId(v),
                });
                metrics.faults_crashed += 1;
                recovering[vi] = true;
                rec_round = true;
                next_wake[vi] = round + 1;
                continue;
            }
            for &(_, msg) in &inbox[vi] {
                heard[vi].push((round, msg));
            }
            inbox[vi].clear();
            let mut stayed = false;
            match next_wake_after(&scripts[vi], round) {
                None => {
                    tr.push(TraceEvent::Halt {
                        round,
                        node: NodeId(v),
                    });
                    next_wake[vi] = 0;
                    outputs[vi] = Some(heard[vi].clone());
                }
                Some(w) if w == round + 1 => {
                    next_wake[vi] = round + 1;
                    stayed = true;
                }
                Some(w) => {
                    tr.push(TraceEvent::Sleep {
                        round,
                        node: NodeId(v),
                        until: w,
                    });
                    next_wake[vi] = w;
                }
            }
            // A recovering node pays recovery energy each awake round
            // until its first non-Stay action ends the recovery.
            if recovering[vi] {
                metrics.recovery_awake += 1;
                rec_round = true;
                if !stayed {
                    recovering[vi] = false;
                }
            }
        }
        if rec_round {
            metrics.recovery_rounds += 1;
        }
    }

    // Still-buffered delayed messages are lost at the end of the run.
    for (due, fv, tv, _) in delayed {
        metrics.messages_lost += 1;
        tr.push(TraceEvent::Lost {
            round: due,
            from: NodeId(fv),
            to: NodeId(tv),
        });
    }
    Run {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every scripted node halts"))
            .collect(),
        metrics,
        trace: tr.events,
        trace_dropped: tr.dropped,
    }
}

// ---------------------------------------------------------------------------
// Assertions and fixtures.

fn cfg() -> Config {
    Config {
        trace: TraceMode::Capped(CAP),
        ..Config::default()
    }
}

fn assert_runs_equal(tag: &str, want: &Run<Vec<(u64, u64)>>, got: &Run<Vec<(u64, u64)>>) {
    assert_eq!(got.outputs, want.outputs, "[{tag}] outputs diverge");
    assert_eq!(got.metrics, want.metrics, "[{tag}] metrics diverge");
    assert_eq!(got.trace, want.trace, "[{tag}] traces diverge");
    assert_eq!(got.trace_dropped, want.trace_dropped, "[{tag}] drop count");
}

fn graph_for(case: u64, n: usize) -> Graph {
    match case % 3 {
        0 => generators::path(n),
        1 => generators::cycle(n),
        _ => generators::gnp(n, 0.4, case),
    }
}

// ---------------------------------------------------------------------------
// The properties.

#[test]
fn compressed_executors_match_the_reference_stepper() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for case in 0..10u64 {
        let n = 4 + (case as usize % 5) * 2;
        let g = graph_for(case, n);
        let scripts = random_scripts(&mut rng, g.n());
        let want = reference_run(&g, &scripts, None);
        let got = Engine::new(&g, cfg()).run(progs(&scripts)).unwrap();
        assert_runs_equal(&format!("case {case} serial"), &want, &got);

        // The compression invariant: every virtual round is either an
        // executed round (it appears in the trace) or a skipped one.
        let executed: std::collections::BTreeSet<u64> = got
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Awake { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(
            executed.len() as u64 + got.metrics.rounds_skipped,
            got.metrics.rounds,
            "case {case}: rounds = executed + skipped"
        );
        assert!(
            got.metrics.rounds_skipped >= GAP - 1_000,
            "case {case}: the 10⁹-round gap must be jumped, not executed"
        );
        assert_eq!(got.metrics.awake_events, got.metrics.total_awake());

        for workers in WORKER_COUNTS {
            let got = run_threaded(&g, progs(&scripts), cfg(), workers).unwrap();
            assert_runs_equal(&format!("case {case} threaded w{workers}"), &want, &got);
        }
    }
}

#[test]
fn faulty_runs_with_delays_spanning_jumps_match_the_reference() {
    let mut rng = Rng(42);
    for case in 0..9u64 {
        let n = 5 + (case as usize % 4) * 2;
        let g = graph_for(case, n);
        let scripts = random_scripts(&mut rng, g.n());
        let mut plan = FaultPlan::new(1_000 + case);
        plan.drop_ppm = 120_000;
        plan.dup_ppm = 120_000;
        plan.delay_ppm = 200_000;
        plan.crash_ppm = 80_000;
        // The third shape parks due rounds deep inside jumped gaps, so the
        // executors must lose those messages at the next *executed* round.
        plan.delay_rounds = match case % 3 {
            0 => 1,
            1 => 7,
            _ => GAP / 2,
        };
        let want = reference_run(&g, &scripts, Some(plan));
        let got = Engine::new(&g, cfg())
            .run_faulty(progs(&scripts), &plan)
            .unwrap();
        assert_runs_equal(&format!("case {case} serial faulty"), &want, &got);
        for workers in WORKER_COUNTS {
            let got = run_threaded_faulty(&g, progs(&scripts), cfg(), workers, &plan).unwrap();
            assert_runs_equal(
                &format!("case {case} threaded faulty w{workers}"),
                &want,
                &got,
            );
        }
    }
}

#[test]
fn snapshots_anywhere_inside_a_jumped_span_are_byte_identical() {
    // Dense prologue (rounds 1..=4), a shared 10⁹-round idle gap, then an
    // epilogue on the far side. Every pause point inside the gap must see
    // the same round-4 boundary state — the jump leaves no residue that
    // depends on *where* in the gap the pause landed.
    let g = generators::cycle(6);
    let scripts: Vec<Vec<u64>> = (0..6u64)
        .map(|v| vec![1, 2, 3, 4, GAP + 5, GAP + 6 + (v % 2)])
        .collect();
    let uninterrupted = Engine::new(&g, cfg()).run(progs(&scripts)).unwrap();
    let reference = reference_run(&g, &scripts, None);
    assert_runs_equal("gap fixture", &reference, &uninterrupted);

    let snap_at = |pause| match Engine::new(&g, cfg())
        .snapshot_at(progs(&scripts), None, pause)
        .unwrap()
    {
        Paused::Snapshot(s) => s,
        Paused::Done(_) => panic!("run finished before pause {pause}"),
    };
    let snaps: Vec<Snapshot> = [4, 5, 1_000, GAP / 2, GAP + 4]
        .into_iter()
        .map(snap_at)
        .collect();
    assert_eq!(snaps[0].round(), 4, "paused at the round-4 boundary");
    for (i, s) in snaps.iter().enumerate() {
        assert_eq!(
            s, &snaps[0],
            "pause point {i} inside the gap changed the snapshot bytes"
        );
    }
    // The threaded executor pauses to the very same bytes.
    for workers in WORKER_COUNTS {
        match snapshot_at_threaded(&g, progs(&scripts), cfg(), workers, None, GAP / 2).unwrap() {
            Paused::Snapshot(s) => assert_eq!(
                s, snaps[0],
                "threaded w{workers} snapshot differs from serial"
            ),
            Paused::Done(_) => panic!("threaded run finished before the pause"),
        }
    }
    // And every pause resumes — on either executor — to the uninterrupted run.
    for s in &snaps {
        let resumed = Engine::new(&g, cfg()).resume(progs(&scripts), s).unwrap();
        assert_runs_equal("serial resume", &uninterrupted, &resumed);
        let resumed = resume_threaded(&g, progs(&scripts), s, 4).unwrap();
        assert_runs_equal("threaded resume", &uninterrupted, &resumed);
    }
}

#[test]
fn snapshot_with_delayed_messages_pending_across_a_jump_resumes_identically() {
    // Half of all transmissions are delayed by GAP+1 rounds: messages sent
    // in the prologue come due around the epilogue, so the snapshot taken
    // mid-gap carries a delayed-message buffer whose due rounds lie beyond
    // the jump. Resuming must replay exactly those deliveries and losses.
    let g = generators::complete(5);
    let scripts: Vec<Vec<u64>> = (0..5u64)
        .map(|v| vec![1, 2, 3, 4, GAP + 5, GAP + 6 + (v % 2)])
        .collect();
    let mut plan = FaultPlan::new(7);
    plan.delay_ppm = 500_000;
    plan.delay_rounds = GAP + 1;
    let uninterrupted = Engine::new(&g, cfg())
        .run_faulty(progs(&scripts), &plan)
        .unwrap();
    let reference = reference_run(&g, &scripts, Some(plan));
    assert_runs_equal("delayed fixture", &reference, &uninterrupted);
    assert!(
        uninterrupted.metrics.faults_delayed > 0,
        "fixture must actually delay messages"
    );
    assert!(
        uninterrupted
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { round, .. } if *round > GAP)),
        "some delayed message must be delivered on the far side of the jump"
    );

    let snap = match Engine::new(&g, cfg())
        .snapshot_at(progs(&scripts), Some(&plan), GAP / 2)
        .unwrap()
    {
        Paused::Snapshot(s) => s,
        Paused::Done(_) => panic!("run finished before the mid-gap pause"),
    };
    let resumed = Engine::new(&g, cfg())
        .resume(progs(&scripts), &snap)
        .unwrap();
    assert_runs_equal("serial resume", &uninterrupted, &resumed);
    for workers in WORKER_COUNTS {
        let resumed = resume_threaded(&g, progs(&scripts), &snap, workers).unwrap();
        assert_runs_equal(
            &format!("threaded resume w{workers}"),
            &uninterrupted,
            &resumed,
        );
    }
}
