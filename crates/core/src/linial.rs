//! Linial's iterated color reduction \[Lin92\]: from any `m₀`-coloring to
//! `O(Δ²)` colors in `O(log* m₀)` rounds.
//!
//! # Construction
//!
//! One reduction step maps a proper `m`-coloring to a proper `q²`-coloring:
//! pick the smallest degree `d ≥ 1` and prime `q > d·Δ` with `q^{d+1} ≥ m`
//! (a polynomial-code cover-free family). Encode color `c` as the
//! polynomial `p_c` over `GF(q)` whose coefficients are the base-`q` digits
//! of `c`. Distinct colors give distinct polynomials, which agree on at
//! most `d` points; a node with `Δ` neighbors therefore has at most
//! `d·Δ < q` *bad* evaluation points and picks the smallest good `x`,
//! adopting the new color `x·q + p_c(x) < q²`.
//!
//! Iterating from `m₀` reaches the fixpoint `(next_prime(Δ+2))² = O(Δ²)`
//! in `O(log* m₀)` steps ([`schedule`] computes the exact step sequence,
//! identically at every node). [`final_palette`] is the paper's `a·b²`
//! (with `Δ = b`), computed exactly instead of bounded.
//!
//! The same kernel serves three deployments:
//! * [`ColorReduction`] — a Sleeping-model [`Program`] on `G` (always awake
//!   for its `O(log* n)` rounds, as in BM21);
//! * the distance-2 variant [`ColorReductionD2`] (two rounds per step:
//!   colors, then neighbor-color tables) for coloring `G²` (Lemma 15's
//!   first step in the general-identifier regime);
//! * plain function calls inside virtual programs (Lemma 15 on `H[U]`).

use awake_sleeping::{
    Action, CheckpointError, Codec, Envelope, Outbox, Persist, Program, Reader, View, Writer,
};

/// Parameters of one reduction step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Input palette size `m` (colors are `0..m`).
    pub m: u64,
    /// Polynomial degree bound `d`.
    pub d: u64,
    /// Field size (prime) `q > d·Δ`, `q^{d+1} ≥ m`.
    pub q: u64,
}

impl Step {
    /// Output palette size `q²`.
    pub fn out_palette(&self) -> u64 {
        self.q * self.q
    }
}

/// Is `x` prime? (trial division; inputs are small).
fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut f = 3;
    while f * f <= x {
        if x.is_multiple_of(f) {
            return false;
        }
        f += 2;
    }
    true
}

/// Smallest prime `≥ x`.
pub fn next_prime(x: u64) -> u64 {
    let mut p = x.max(2);
    while !is_prime(p) {
        p += 1;
    }
    p
}

/// Smallest `r` with `r^(e) ≥ m`.
fn int_root_ceil(m: u64, e: u32) -> u64 {
    if m <= 1 {
        return 1;
    }
    let mut r = (m as f64).powf(1.0 / e as f64).floor() as u64;
    // Float imprecision: adjust in both directions.
    while pow_at_least(r, e, m) && r > 1 {
        r -= 1;
    }
    while !pow_at_least(r, e, m) {
        r += 1;
    }
    r
}

fn pow_at_least(base: u64, e: u32, m: u64) -> bool {
    let mut acc: u128 = 1;
    for _ in 0..e {
        acc = acc.saturating_mul(base as u128);
        if acc >= m as u128 {
            return true;
        }
    }
    acc >= m as u128
}

/// Parameters for reducing an `m`-coloring at degree bound `delta`.
///
/// For each degree `d`, the field must satisfy both constraints
/// `q > d·delta` (conflict-freeness) and `q^{d+1} ≥ m` (injective
/// encoding); the step picks the `d` minimizing the output palette `q²`.
pub fn step_params(m: u64, delta: u64) -> Step {
    let delta = delta.max(1);
    let mut best: Option<Step> = None;
    for d in 1..=64u64 {
        let q = next_prime((d * delta + 1).max(int_root_ceil(m, d as u32 + 1)));
        let cand = Step { m, d, q };
        if best.is_none_or(|b| cand.out_palette() < b.out_palette()) {
            best = Some(cand);
        }
        // Once d·delta alone exceeds the best q, larger d cannot win.
        if let Some(b) = best {
            if d * delta + 1 > b.q {
                break;
            }
        }
    }
    best.expect("some degree is always feasible")
}

/// The palette Linial stabilizes at for degree bound `delta`:
/// `next_prime(2·delta+1)²` — every schedule reaches it (a degree-2 step
/// shrinks anything above it), and this is the paper's `a·b²` when
/// `delta = b`.
pub fn final_palette(delta: u64) -> u64 {
    let q = next_prime(2 * delta.max(1) + 1);
    q * q
}

/// The deterministic step sequence from an `m₀`-palette down to at most
/// [`final_palette`]. Every node computes this identically; its length is
/// the number of communication rounds (`O(log* m₀)`).
///
/// # Panics
/// Panics if a step fails to shrink the palette above the fixpoint
/// (impossible by the degree-2 analysis; kept as a hard invariant).
pub fn schedule(m0: u64, delta: u64) -> Vec<Step> {
    let target = final_palette(delta);
    let mut steps = Vec::new();
    let mut m = m0.max(1);
    while m > target {
        let s = step_params(m, delta);
        assert!(
            s.out_palette() < m,
            "Linial step must shrink above the fixpoint: {s:?}"
        );
        steps.push(s);
        m = s.out_palette();
    }
    steps
}

/// Evaluate the polynomial encoding of `color` at `x` over `GF(q)`.
fn poly_eval(color: u64, d: u64, q: u64, x: u64) -> u64 {
    // coefficients: base-q digits of color (d+1 of them), Horner order.
    let mut coeffs = Vec::with_capacity(d as usize + 1);
    let mut c = color;
    for _ in 0..=d {
        coeffs.push(c % q);
        c /= q;
    }
    let mut acc: u128 = 0;
    for &co in coeffs.iter().rev() {
        acc = (acc * x as u128 + co as u128) % q as u128;
    }
    acc as u64
}

/// One node's reduction: smallest `x` whose evaluation differs from every
/// neighbor's polynomial. Neighbors with a color equal to ours are ignored
/// (they cannot occur in a proper input coloring; distance-2 tables may
/// echo our own color back).
///
/// # Panics
/// Panics if no good point exists — impossible when `#neighbors·d < q`.
pub fn reduce_color(my_color: u64, neighbor_colors: &[u64], step: Step) -> u64 {
    let Step { d, q, .. } = step;
    for x in 0..q {
        let mine = poly_eval(my_color, d, q, x);
        let clash = neighbor_colors
            .iter()
            .any(|&nc| nc != my_color && poly_eval(nc, d, q, x) == mine);
        if !clash {
            return x * q + mine;
        }
    }
    panic!(
        "no conflict-free evaluation point: {} neighbors, step {:?}",
        neighbor_colors.len(),
        step
    );
}

/// Distributed Linial on `G`: always awake for `schedule.len()` rounds.
#[derive(Debug)]
pub struct ColorReduction {
    color: u64,
    steps: Vec<Step>,
    t: usize,
}

impl ColorReduction {
    /// Start from an explicit proper coloring value in `0..m0`.
    ///
    /// # Panics
    /// Panics if `initial_color ≥ m0`.
    pub fn new(initial_color: u64, m0: u64, delta_bound: u64) -> Self {
        assert!(initial_color < m0, "color {initial_color} ≥ palette {m0}");
        ColorReduction {
            color: initial_color,
            steps: schedule(m0, delta_bound),
            t: 0,
        }
    }

    /// Start from the node's identifier (a proper `ident_bound`-coloring).
    pub fn from_ident(ident: u64, ident_bound: u64, delta_bound: u64) -> Self {
        Self::new(ident - 1, ident_bound, delta_bound)
    }

    /// Number of communication rounds this schedule takes.
    pub fn rounds(&self) -> u64 {
        self.steps.len() as u64
    }
}

impl Program for ColorReduction {
    type Msg = u64;
    type Output = u64;

    fn send(&mut self, _view: &View<'_>, out: &mut Outbox<u64>) {
        if self.t < self.steps.len() {
            out.broadcast(self.color);
        }
    }

    fn receive(&mut self, _view: &View<'_>, inbox: &[Envelope<u64>]) -> Action {
        if self.t >= self.steps.len() {
            return Action::Halt;
        }
        let neighbor_colors: Vec<u64> = inbox.iter().map(|e| e.msg).collect();
        self.color = reduce_color(self.color, &neighbor_colors, self.steps[self.t]);
        self.t += 1;
        if self.t == self.steps.len() {
            Action::Halt
        } else {
            Action::Stay
        }
    }

    fn output(&self) -> Option<u64> {
        Some(self.color)
    }

    fn span(&self) -> &'static str {
        "linial"
    }
}

/// Dynamic state: the current color and the schedule cursor. The step
/// sequence is a pure function of the constructor arguments.
impl Persist for ColorReduction {
    fn save(&self, w: &mut Writer) {
        self.color.encode(w);
        self.t.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.color = r.get()?;
        self.t = r.get()?;
        Ok(())
    }
}

/// Distance-2 variant: colors `G²` using two `G`-rounds per step
/// (broadcast own color, then broadcast the collected neighbor table).
#[derive(Debug)]
pub struct ColorReductionD2 {
    color: u64,
    steps: Vec<Step>,
    t: usize,
    /// Colors heard at the odd round (distance-1 neighbors).
    ring1: Vec<u64>,
    phase2: bool,
}

impl ColorReductionD2 {
    /// Start from an explicit proper distance-2 coloring value in `0..m0`
    /// (identifiers always qualify). `delta_bound` must bound `Δ(G²)`,
    /// e.g. `Δ²` or `n`.
    ///
    /// # Panics
    /// Panics if `initial_color ≥ m0`.
    pub fn new(initial_color: u64, m0: u64, delta_bound: u64) -> Self {
        assert!(initial_color < m0, "color {initial_color} ≥ palette {m0}");
        ColorReductionD2 {
            color: initial_color,
            steps: schedule(m0, delta_bound),
            t: 0,
            ring1: Vec::new(),
            phase2: false,
        }
    }

    /// Number of communication rounds (two per step).
    pub fn rounds(&self) -> u64 {
        2 * self.steps.len() as u64
    }
}

impl Program for ColorReductionD2 {
    type Msg = Vec<u64>;
    type Output = u64;

    fn send(&mut self, _view: &View<'_>, out: &mut Outbox<Vec<u64>>) {
        if self.t >= self.steps.len() {
            return;
        }
        if !self.phase2 {
            out.broadcast(vec![self.color]);
        } else {
            let mut table = vec![self.color];
            table.extend(self.ring1.iter().copied());
            out.broadcast(table);
        }
    }

    fn receive(&mut self, _view: &View<'_>, inbox: &[Envelope<Vec<u64>>]) -> Action {
        if self.t >= self.steps.len() {
            return Action::Halt;
        }
        if !self.phase2 {
            self.ring1 = inbox.iter().map(|e| e.msg[0]).collect();
            self.phase2 = true;
            Action::Stay
        } else {
            // Union of neighbors' tables = colors at distance ≤ 2.
            let mut d2: Vec<u64> = inbox.iter().flat_map(|e| e.msg.iter().copied()).collect();
            d2.sort_unstable();
            d2.dedup();
            self.color = reduce_color(self.color, &d2, self.steps[self.t]);
            self.t += 1;
            self.phase2 = false;
            self.ring1.clear();
            if self.t == self.steps.len() {
                Action::Halt
            } else {
                Action::Stay
            }
        }
    }

    fn output(&self) -> Option<u64> {
        Some(self.color)
    }

    fn span(&self) -> &'static str {
        "linial-d2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::{coloring, generators, ops};
    use awake_sleeping::{Config, Engine};

    #[test]
    fn primes() {
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(11), 11);
        assert!(is_prime(2) && is_prime(97) && !is_prime(91));
    }

    #[test]
    fn poly_eval_linear() {
        // color 7 base 5 → digits [2, 1] → p(x) = 2 + x over GF(5)
        assert_eq!(poly_eval(7, 1, 5, 0), 2);
        assert_eq!(poly_eval(7, 1, 5, 1), 3);
        assert_eq!(poly_eval(7, 1, 5, 4), 1);
    }

    #[test]
    fn schedule_reaches_fixpoint_fast() {
        // log* behaviour: even from an astronomically large palette the
        // schedule is short.
        let steps = schedule(u64::MAX / 2, 8);
        assert!(steps.len() <= 6, "got {} steps", steps.len());
        assert_eq!(schedule(final_palette(8), 8).len(), 0);
    }

    #[test]
    fn single_step_is_proper() {
        let g = generators::gnp(60, 0.12, 3);
        let delta = g.max_degree() as u64;
        let m0 = g.n() as u64;
        let step = step_params(m0, delta);
        let colors: Vec<u64> = g.nodes().map(|v| g.ident(v) - 1).collect();
        let reduced: Vec<u64> = g
            .nodes()
            .map(|v| {
                let nb: Vec<u64> = g.neighbors(v).iter().map(|&u| colors[u.index()]).collect();
                reduce_color(colors[v.index()], &nb, step)
            })
            .collect();
        coloring::check_proper(&g, &reduced).unwrap();
        assert!(reduced.iter().all(|&c| c < step.out_palette()));
    }

    #[test]
    fn distributed_linial_colors_properly() {
        for g in [
            generators::gnp(80, 0.08, 5),
            generators::random_regular(64, 6, 2),
            generators::cycle(33),
            generators::complete(10),
        ] {
            let delta = g.max_degree() as u64;
            let programs: Vec<ColorReduction> = g
                .nodes()
                .map(|v| ColorReduction::from_ident(g.ident(v), g.ident_bound(), delta))
                .collect();
            let expected_rounds = programs[0].rounds();
            let run = Engine::new(&g, Config::default()).run(programs).unwrap();
            coloring::check_proper(&g, &run.outputs).unwrap();
            assert!(
                run.outputs.iter().all(|&c| c < final_palette(delta)),
                "palette O(Δ²)"
            );
            assert_eq!(run.metrics.max_awake(), expected_rounds.max(1));
            // O(log* n): tiny round count
            assert!(run.metrics.rounds <= 8);
        }
    }

    #[test]
    fn distributed_d2_colors_the_square() {
        let g = generators::random_with_max_degree(50, 5, 7);
        let d2_bound = (g.max_degree() * g.max_degree()) as u64;
        let programs: Vec<ColorReductionD2> = g
            .nodes()
            .map(|v| ColorReductionD2::new(g.ident(v) - 1, g.ident_bound(), d2_bound))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        coloring::check_proper(&ops::square(&g), &run.outputs).unwrap();
        assert!(run.outputs.iter().all(|&c| c < final_palette(d2_bound)));
    }

    #[test]
    fn already_small_palette_is_noop() {
        let g = generators::path(4);
        let colors = [0u64, 1, 0, 1];
        let programs: Vec<ColorReduction> = g
            .nodes()
            .map(|v| ColorReduction::new(colors[v.index()], 2, 2))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        assert_eq!(run.outputs, colors.to_vec());
        assert_eq!(run.metrics.rounds, 1); // mandatory round 1, no steps
    }

    #[test]
    fn equal_colors_in_tables_are_ignored() {
        // distance-2 tables may echo our own color back; no panic.
        let step = step_params(100, 4);
        let c = reduce_color(42, &[42, 17, 9], step);
        assert!(c < step.out_palette());
    }

    #[test]
    fn final_palette_is_quadratic() {
        for b in [1u64, 2, 4, 16, 64, 256] {
            let fp = final_palette(b);
            assert!(fp >= (b + 1) * (b + 1));
            assert!(fp <= 17 * (b + 1) * (b + 1), "Bertrand-ish bound, b={b}");
        }
    }

    #[test]
    fn schedule_always_terminates_below_fixpoint() {
        // Grid over (m₀, Δ): the schedule must reach ≤ final_palette and
        // never assert (shrinkage above the fixpoint).
        for delta in [1u64, 2, 3, 5, 8, 16, 100] {
            for m0 in [2u64, 10, 50, 61, 100, 1000, 1 << 20, 1 << 40] {
                let steps = schedule(m0, delta);
                let final_m = steps.last().map(|s| s.out_palette()).unwrap_or(m0);
                assert!(
                    final_m <= final_palette(delta).max(m0),
                    "m0={m0} delta={delta}: final {final_m}"
                );
                assert!(steps.len() < 10, "log* bound: {} steps", steps.len());
            }
        }
    }
}
