//! The crash-recovery contract shared by every solver in the crate.
//!
//! A solver stage is made resilient by wrapping each node's program in
//! [`Redundant`] time redundancy: the stretch factor `S` comes from
//! [`redundancy_for`] applied to the stage's *closed-form* round bound
//! (the same figure [`crate::bounds`] degrades, so the audit and the
//! execution always agree), and the engine's round cap becomes the
//! degraded stage budget. The contract is:
//!
//! * under any seeded [`FaultPlan`] with a quiet period after the last
//!   fault, the run still produces a valid output;
//! * its awake/round usage stays within
//!   [`crate::bounds::degraded_budget_for`];
//! * the run is bit-for-bit identical on the serial engine and the
//!   worker-pool executor at any worker count.
//!
//! With an inactive plan nothing is wrapped and the stage executes
//! exactly as its fault-free counterpart — same config, same engine path,
//! same metrics.

use awake_graphs::Graph;
use awake_sleeping::{
    redundancy_for, threaded, Codec, Config, Engine, FaultPlan, Persist, Program, Redundant, Run,
    SimError,
};

/// Execute one solver stage under the recovery contract.
///
/// `config` is the stage's fault-free engine configuration, used verbatim
/// when `plan` is absent or inactive. `base_rounds` is the stage's
/// closed-form round bound — the input to [`redundancy_for`] and
/// [`crate::bounds::degraded_stage_rounds`]. `workers` selects the
/// worker-pool executor (`None`: the serial engine); both produce
/// identical results.
///
/// # Errors
/// Propagates engine errors.
pub fn run_stage<P>(
    g: &Graph,
    programs: Vec<P>,
    config: Config,
    base_rounds: u64,
    plan: Option<&FaultPlan>,
    workers: Option<usize>,
) -> Result<Run<P::Output>, SimError>
where
    P: Program + Persist + Send,
    P::Msg: Codec,
{
    match plan.filter(|p| p.is_active()) {
        None => match workers {
            None => Engine::new(g, config).run(programs),
            Some(w) => threaded::run_threaded(g, programs, config, w),
        },
        Some(pl) => {
            let s = redundancy_for(pl, g.n(), base_rounds);
            let cap = crate::bounds::degraded_stage_rounds(base_rounds, s, pl);
            let cfg = Config {
                max_rounds: cap,
                ..config
            };
            let wrapped: Vec<Redundant<P>> =
                programs.into_iter().map(|p| Redundant::new(p, s)).collect();
            match workers {
                None => Engine::new(g, cfg).run_faulty(wrapped, pl),
                Some(w) => threaded::run_threaded_faulty(g, wrapped, cfg, w, pl),
            }
        }
    }
}
