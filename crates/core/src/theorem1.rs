//! Theorem 1 — the paper's headline result: any O-LOCAL problem is solved
//! deterministically with awake complexity `O(√log n · log* n)`.
//!
//! Composition of [Theorem 13](crate::theorem13) (compute a colored
//! BFS-clustering with `2^{O(√log n)}` colors) and
//! [Theorem 9](crate::theorem9) (solve the problem on top of it with
//! awake complexity logarithmic in the color count).

use crate::clustering::Clustering;
use crate::compose::Composition;
use crate::params::Params;
use crate::theorem13::{self, IterationStats};
use crate::theorem9;
use awake_graphs::Graph;
use awake_olocal::OLocalProblem;
use awake_sleeping::{Codec, FaultPlan, SimError};

/// Options for [`solve`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Override the derived parameters (`None`: derive from the graph).
    pub params: Option<Params>,
}

/// Result of an end-to-end run.
#[derive(Debug)]
pub struct Theorem1Result<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// Stage-by-stage accounting across both theorems (Lemma 8 totals).
    pub composition: Composition,
    /// The intermediate colored BFS-clustering.
    pub clustering: Clustering,
    /// Theorem 13's per-iteration statistics.
    pub iteration_stats: Vec<IterationStats>,
    /// The parameters used.
    pub params: Params,
}

/// Solve `problem` on `g` end to end, using the problem's trivial inputs.
///
/// # Errors
/// Propagates simulator errors.
pub fn solve<P>(
    g: &Graph,
    problem: &P,
    options: Options,
) -> Result<Theorem1Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone,
{
    let inputs = problem.trivial_inputs(g);
    solve_with_inputs(g, problem, &inputs, options)
}

/// Solve `problem` on `g` end to end with explicit per-node inputs.
///
/// # Errors
/// Propagates simulator errors.
pub fn solve_with_inputs<P>(
    g: &Graph,
    problem: &P,
    inputs: &[P::Input],
    options: Options,
) -> Result<Theorem1Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone,
{
    let params = options.params.unwrap_or_else(|| Params::for_graph(g));
    let t13 = theorem13::compute(g, &params)?;
    let t9 = theorem9::solve(g, problem, inputs, &t13.clustering, params.color_bound())?;
    let mut composition = Composition::new();
    composition.extend_prefixed("theorem1", t13.composition);
    composition.extend_prefixed("theorem1", t9.composition);
    Ok(Theorem1Result {
        outputs: t9.outputs,
        composition,
        clustering: t13.clustering,
        iteration_stats: t13.iteration_stats,
        params,
    })
}

/// [`solve`] under the crate's [recovery contract](crate::resilient):
/// every stage of both theorems runs wrapped in
/// [`Redundant`](awake_sleeping::Redundant) time redundancy sized from
/// `plan`, serially or (with `workers`) on the worker-pool executor —
/// bit-for-bit identical either way. An inactive plan runs exactly like
/// [`solve`].
///
/// # Errors
/// Propagates simulator errors.
pub fn solve_faulty<P>(
    g: &Graph,
    problem: &P,
    options: Options,
    plan: &FaultPlan,
    workers: Option<usize>,
) -> Result<Theorem1Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone + Send + Sync,
    P::Input: Codec,
    P::Output: Codec,
{
    let inputs = problem.trivial_inputs(g);
    solve_with_inputs_faulty(g, problem, &inputs, options, plan, workers)
}

/// [`solve_with_inputs`] under the recovery contract — see
/// [`solve_faulty`].
///
/// # Errors
/// Propagates simulator errors.
pub fn solve_with_inputs_faulty<P>(
    g: &Graph,
    problem: &P,
    inputs: &[P::Input],
    options: Options,
    plan: &FaultPlan,
    workers: Option<usize>,
) -> Result<Theorem1Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone + Send + Sync,
    P::Input: Codec,
    P::Output: Codec,
{
    let params = options.params.unwrap_or_else(|| Params::for_graph(g));
    let t13 = theorem13::compute_faulty(g, &params, plan, workers)?;
    let t9 = theorem9::solve_faulty(
        g,
        problem,
        inputs,
        &t13.clustering,
        params.color_bound(),
        plan,
        workers,
    )?;
    let mut composition = Composition::new();
    composition.extend_prefixed("theorem1", t13.composition);
    composition.extend_prefixed("theorem1", t9.composition);
    Ok(Theorem1Result {
        outputs: t9.outputs,
        composition,
        clustering: t13.clustering,
        iteration_stats: t13.iteration_stats,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use awake_graphs::generators;
    use awake_olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};

    #[test]
    fn end_to_end_coloring_and_mis() {
        for g in [
            generators::gnp(40, 0.15, 1),
            generators::cycle(15),
            generators::complete(9),
        ] {
            let r = solve(&g, &DeltaPlusOneColoring, Options::default()).unwrap();
            DeltaPlusOneColoring
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();
            assert!(
                r.composition.max_awake() <= bounds::theorem1_awake(&r.params),
                "awake {} > bound {}",
                r.composition.max_awake(),
                bounds::theorem1_awake(&r.params)
            );

            let r = solve(&g, &MaximalIndependentSet, Options::default()).unwrap();
            MaximalIndependentSet
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();
        }
    }
}
