//! Global parameters of the clustering pipeline (§5 of the paper).
//!
//! Every node derives the *same* parameter set from public knowledge
//! (`n` and the identifier bound), which is what makes the stage-by-stage
//! composition of Lemma 8 legitimate: all round budgets below are
//! deterministic functions of these values.

use crate::linial;

/// Parameters shared by all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of nodes (known to every node, per the model).
    pub n: usize,
    /// Upper bound on node identifiers (`n^c` in the paper; `n` when the
    /// identifiers are `{1..n}`, the Remark's fast case).
    pub ident_bound: u64,
    /// `b = 2^⌈√log₂ n⌉` — the degree threshold / shrink factor of Lemma 15.
    pub b: u64,
    /// `k = 2·⌈√log₂ n⌉` — iteration count of Theorem 13; chosen so that
    /// `b^k ≥ n²`, guaranteeing the virtual graph is exhausted.
    pub iterations: u32,
    /// `a·b²` — the exact palette Linial's algorithm stabilizes at on
    /// graphs of maximum degree `b` (the paper's `a` is our constant,
    /// computed rather than bounded).
    pub ab2: u64,
    /// Depth bound used by every depth-synchronized convergecast/broadcast
    /// (`D = n`: no BFS cluster is deeper).
    pub depth_bound: u32,
}

impl Params {
    /// Derive parameters for an `n`-node graph with identifiers `≤ ident_bound`.
    pub fn new(n: usize, ident_bound: u64) -> Params {
        let n1 = n.max(2);
        let log2n = (usize::BITS - (n1 - 1).leading_zeros()) as u64; // ⌈log₂ n⌉
        let s = int_sqrt_ceil(log2n).max(1);
        let b = 1u64 << s.min(32);
        let iterations = (2 * s) as u32;
        let ab2 = linial::final_palette(b);
        Params {
            n,
            ident_bound: ident_bound.max(n as u64),
            b,
            iterations,
            ab2,
            depth_bound: n as u32,
        }
    }

    /// Derive parameters from a graph (identifiers `{1..n}` by default).
    pub fn for_graph(g: &awake_graphs::Graph) -> Params {
        Params::new(g.n(), g.ident_bound())
    }

    /// Upper bound on cluster labels at the start of iteration `i`
    /// (1-based): iteration 1 sees raw identifiers; every later iteration
    /// sees labels of the form `ℓ_aux + a·b²` where `ℓ_aux` was a previous
    /// label.
    pub fn label_bound(&self, iteration: u32) -> u64 {
        self.ident_bound + (iteration as u64).saturating_sub(1) * self.ab2
    }

    /// Number of colors the final colored BFS-clustering may use:
    /// `k · a·b² = 2^{O(√log n)}` (Theorem 13).
    pub fn color_bound(&self) -> u64 {
        self.iterations as u64 * self.ab2
    }

    /// Sanity check: `b^k ≥ n²`, so at most `k` iterations empty the graph.
    pub fn shrinkage_sufficient(&self) -> bool {
        let mut acc: u128 = 1;
        for _ in 0..self.iterations {
            acc = acc.saturating_mul(self.b as u128);
            if acc >= (self.n as u128) * (self.n as u128) {
                return true;
            }
        }
        acc >= (self.n as u128) * (self.n as u128)
    }
}

/// `⌈√x⌉` over integers.
pub fn int_sqrt_ceil(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).sqrt() as u64;
    while r * r < x {
        r += 1;
    }
    while r >= 1 && (r - 1) * (r - 1) >= x {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_sqrt_ceil_exact() {
        assert_eq!(int_sqrt_ceil(0), 0);
        assert_eq!(int_sqrt_ceil(1), 1);
        assert_eq!(int_sqrt_ceil(2), 2);
        assert_eq!(int_sqrt_ceil(4), 2);
        assert_eq!(int_sqrt_ceil(5), 3);
        assert_eq!(int_sqrt_ceil(9), 3);
        assert_eq!(int_sqrt_ceil(10), 4);
    }

    #[test]
    fn params_guarantee_shrinkage() {
        for n in [2usize, 3, 7, 16, 100, 1000, 4096, 100_000] {
            let p = Params::new(n, n as u64);
            assert!(p.shrinkage_sufficient(), "n={n}: {p:?}");
            assert!(p.b >= 2);
            assert!(p.iterations >= 2);
        }
    }

    #[test]
    fn color_bound_is_subpolynomial() {
        // 2^{O(√log n)} ≪ n^ε: spot-check that the bound is far below n
        // for large n.
        let p = Params::new(1 << 20, 1 << 20);
        assert!((p.color_bound() as usize) < (1 << 20) / 4);
    }

    #[test]
    fn label_bound_grows_by_ab2() {
        let p = Params::new(256, 256);
        assert_eq!(p.label_bound(1), 256);
        assert_eq!(p.label_bound(2), 256 + p.ab2);
        assert_eq!(p.label_bound(3), 256 + 2 * p.ab2);
    }

    #[test]
    fn tiny_n_is_safe() {
        let p = Params::new(1, 1);
        assert!(p.b >= 2);
        assert!(p.shrinkage_sufficient());
    }
}
