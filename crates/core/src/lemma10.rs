//! Lemma 10: the palette-tree mapping `φ` and `r` (Figure 1 of the paper).
//!
//! For a power of two `q`, consider the complete binary tree whose nodes
//! are labeled `{1, …, 2q−1}` by an in-order traversal: the root is `q`,
//! leaves are the odd labels. For a color `c ∈ {1, …, q}`:
//!
//! * `φ(c) = 2c − 1` — the label of the `c`-th leaf;
//! * `r(c)` — the set of labels on the root-to-leaf path to `φ(c)`.
//!
//! Properties (proved here by direct computation, property-tested for all
//! `q ≤ 2¹²`):
//! 1. `|r(c)| = 1 + log₂ q`;
//! 2. `φ(c) ∈ r(c)`;
//! 3. for distinct `c₁, c₂` there is `x ∈ r(c₁) ∩ r(c₂)` with
//!    `min(φ(c₁), φ(c₂)) < x < max(φ(c₁), φ(c₂))` — the lowest common
//!    ancestor.
//!
//! These wake-schedule sets drive Lemma 11: a node of color `c` is awake
//! exactly at the rounds in `r(c)`.

/// The palette tree for a power-of-two `q`.
///
/// # Example (Figure 1: `q = 8`)
/// ```
/// # use awake_core::lemma10::PaletteTree;
/// let t = PaletteTree::new(8);
/// assert_eq!(t.phi(2), 3);
/// assert_eq!(t.r(2), vec![2, 3, 4, 8]);
/// assert_eq!(t.phi(4), 7);
/// assert_eq!(t.r(4), vec![4, 6, 7, 8]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaletteTree {
    q: u64,
}

impl PaletteTree {
    /// Build the tree for `q` colors.
    ///
    /// # Panics
    /// Panics unless `q` is a power of two and `q ≥ 1`.
    pub fn new(q: u64) -> Self {
        assert!(q.is_power_of_two(), "q must be a power of two, got {q}");
        PaletteTree { q }
    }

    /// The smallest power-of-two palette covering `k` colors.
    pub fn covering(k: u64) -> Self {
        PaletteTree::new(k.max(1).next_power_of_two())
    }

    /// The number of colors `q`.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The schedule horizon: labels live in `{1, …, 2q−1}`, so Lemma 11
    /// finishes within `2q − 1` rounds.
    pub fn horizon(&self) -> u64 {
        2 * self.q - 1
    }

    /// `φ(c) = 2c − 1`, the decision round of color `c`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ c ≤ q`.
    pub fn phi(&self, c: u64) -> u64 {
        assert!(
            c >= 1 && c <= self.q,
            "color {c} out of range 1..={}",
            self.q
        );
        2 * c - 1
    }

    /// `r(c)`: the sorted labels of the root-to-leaf path to `φ(c)`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ c ≤ q`.
    pub fn r(&self, c: u64) -> Vec<u64> {
        let leaf = self.phi(c);
        // Walk down from the root. The subtree rooted at label `m` with
        // half-width `h` covers (m−h, m+h); its children are m−h/... the
        // in-order tree on {1..2q−1} has root q with step q/2, children
        // q±q/2 with step q/4, etc.
        let mut path = Vec::with_capacity((self.q.trailing_zeros() + 1) as usize);
        let mut node = self.q;
        let mut step = self.q / 2;
        loop {
            path.push(node);
            if node == leaf {
                break;
            }
            node = if leaf < node {
                node - step
            } else {
                node + step
            };
            step /= 2;
        }
        path.sort_unstable();
        path
    }

    /// `|r(c)| = 1 + log₂ q` — the awake complexity Lemma 11 pays.
    pub fn path_len(&self) -> u64 {
        1 + self.q.trailing_zeros() as u64
    }

    /// The elements of `r(c)` strictly below `φ(c)` (receive rounds).
    pub fn r_below(&self, c: u64) -> Vec<u64> {
        let phi = self.phi(c);
        self.r(c).into_iter().filter(|&x| x < phi).collect()
    }

    /// The elements of `r(c)` strictly above `φ(c)` (send rounds).
    pub fn r_above(&self, c: u64) -> Vec<u64> {
        let phi = self.phi(c);
        self.r(c).into_iter().filter(|&x| x > phi).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_values() {
        // The exact numbers printed in Figure 1 of the paper.
        let t = PaletteTree::new(8);
        assert_eq!(t.phi(2), 3);
        assert_eq!(t.r(2), vec![2, 3, 4, 8]);
        assert_eq!(t.phi(4), 7);
        assert_eq!(t.r(4), vec![4, 6, 7, 8]);
        // LCA of leaves 3 and 7 is 4, and 3 < 4 < 7 (the figure's caption).
        let shared: Vec<u64> = t.r(2).into_iter().filter(|x| t.r(4).contains(x)).collect();
        assert!(shared.contains(&4));
    }

    #[test]
    fn q_one_degenerates() {
        let t = PaletteTree::new(1);
        assert_eq!(t.phi(1), 1);
        assert_eq!(t.r(1), vec![1]);
        assert_eq!(t.path_len(), 1);
        assert_eq!(t.horizon(), 1);
    }

    #[test]
    fn covering_rounds_up() {
        assert_eq!(PaletteTree::covering(5).q(), 8);
        assert_eq!(PaletteTree::covering(8).q(), 8);
        assert_eq!(PaletteTree::covering(0).q(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power() {
        PaletteTree::new(6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_color_zero() {
        PaletteTree::new(4).phi(0);
    }

    fn check_all_properties(q: u64) {
        let t = PaletteTree::new(q);
        for c in 1..=q {
            let r = t.r(c);
            // property 1: |r(c)| = 1 + log2 q
            assert_eq!(r.len() as u64, t.path_len(), "q={q} c={c}");
            // property 2: phi(c) ∈ r(c)
            assert!(r.contains(&t.phi(c)));
            // labels in range
            assert!(r.iter().all(|&x| (1..=2 * q - 1).contains(&x)));
        }
        // property 3: strict separation via a shared label
        for c1 in 1..=q {
            for c2 in (c1 + 1)..=q {
                let r1 = t.r(c1);
                let r2 = t.r(c2);
                let (lo, hi) = (t.phi(c1).min(t.phi(c2)), t.phi(c1).max(t.phi(c2)));
                assert!(
                    r1.iter().any(|x| r2.contains(x) && *x > lo && *x < hi),
                    "q={q} c1={c1} c2={c2}"
                );
            }
        }
    }

    #[test]
    fn properties_small_q() {
        for e in 0..=6 {
            check_all_properties(1 << e);
        }
    }

    #[test]
    fn properties_random_pairs_large_q() {
        let mut rng = awake_graphs::rng::Rng::seed_from_u64(0x00de_ad10);
        for case in 0..32 {
            let e = 7 + rng.bounded_u64(6) as u32; // 7..=12
            let q = 1u64 << e;
            let t = PaletteTree::new(q);
            let c1 = 1 + rng.bounded_u64(q);
            let c2 = 1 + rng.bounded_u64(q);
            assert_eq!(t.r(c1).len() as u64, t.path_len(), "case {case}");
            assert!(t.r(c1).contains(&t.phi(c1)), "case {case}");
            if c1 != c2 {
                let r1 = t.r(c1);
                let r2 = t.r(c2);
                let (lo, hi) = (t.phi(c1).min(t.phi(c2)), t.phi(c1).max(t.phi(c2)));
                assert!(
                    r1.iter().any(|x| r2.contains(x) && *x > lo && *x < hi),
                    "case {case}: q={q} c1={c1} c2={c2}"
                );
            }
        }
    }
}
