//! Depth-synchronized intra-cluster convergecast + broadcast.
//!
//! Inside a BFS cluster every node knows its depth `δ`, so (unlike the
//! generic Lemma 6 setting) parents' wake rounds are computable locally:
//! depth-`d` nodes collect their children's bags at round `2 + (D − d)` and
//! forward at the next round; the root then re-broadcasts the merged bag
//! down, depth layer by depth layer. `D` is the public depth bound (`n`).
//!
//! After the protocol, **every member knows the full structure of its
//! cluster**: member identities, depths, payloads, intra-cluster edges and
//! all border edges (with the neighboring cluster's label and payload) —
//! exactly the "acquire the whole structure of the cluster" step used
//! throughout §4–§5 of the paper. Awake complexity ≤ 5 per node, rounds
//! `2D + 6`.
//!
//! The logic lives in [`GatherCore`] (driven relative to a base round) so
//! that the standalone [`ClusterGather`] program and the Lemma 7 simulator
//! ([`crate::virt`]) share one implementation.

use awake_graphs::NodeId;
use awake_sleeping::{
    Action, CheckpointError, Codec, Envelope, Outbox, Outgoing, Persist, Program, Reader, Round,
    View, Writer,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A member record traveling in gather bags.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberRec<P> {
    /// The member's identifier.
    pub ident: u64,
    /// Its BFS depth in the cluster.
    pub depth: u32,
    /// Its payload.
    pub payload: P,
    /// Identifiers of its same-cluster neighbors.
    pub intra: Vec<u64>,
    /// Its border edges: `(neighbor ident, neighbor label, neighbor depth,
    /// neighbor payload)`.
    pub border: Vec<(u64, u64, u32, P)>,
}

/// What every member knows after the gather.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterView<P> {
    /// The cluster's label.
    pub label: u64,
    /// This node's identifier.
    pub my_ident: u64,
    /// This node's depth.
    pub my_depth: u32,
    /// All members, keyed by identifier.
    pub members: BTreeMap<u64, MemberRec<P>>,
    /// This node's ports: `(port, neighbor ident, neighbor label)`.
    pub my_ports: Vec<(NodeId, u64, u64)>,
}

impl<P> ClusterView<P> {
    /// Sorted distinct labels of adjacent clusters (the vertex's neighbors
    /// in the virtual graph `H`).
    pub fn neighbor_labels(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self
            .members
            .values()
            .flat_map(|m| m.border.iter().map(|b| b.1))
            .collect();
        l.sort_unstable();
        l.dedup();
        l
    }

    /// Degree of the vertex in `H`.
    pub fn h_degree(&self) -> usize {
        self.neighbor_labels().len()
    }

    /// The root member's identifier (depth 0).
    pub fn root_ident(&self) -> u64 {
        self.members
            .values()
            .find(|m| m.depth == 0)
            .map(|m| m.ident)
            .expect("BFS cluster has a root")
    }

    /// Intra-cluster edges as ident pairs (each once, `a < b`).
    pub fn intra_edges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for m in self.members.values() {
            for &w in &m.intra {
                if m.ident < w {
                    out.push((m.ident, w));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Gather protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum GatherMsg<P> {
    /// Round-1 announcement: `(label, depth, ident, payload)`.
    Hello(u64, u32, u64, P),
    /// A bag of member records; `up = true` on the convergecast leg.
    /// Shared via `Arc` so per-recipient clones are O(1).
    Bag {
        /// The sending cluster's label (receivers filter on it).
        label: u64,
        /// Convergecast (`true`) or broadcast (`false`) leg.
        up: bool,
        /// The records.
        recs: Arc<Vec<MemberRec<P>>>,
    },
}

/// Total rounds the gather occupies for depth bound `d`.
pub fn gather_rounds(d: u32) -> Round {
    2 * d as Round + 6
}

/// The reusable gather state machine, operating at rounds relative to
/// `base` (the standalone program uses `base = 1`).
#[derive(Debug)]
pub struct GatherCore<P> {
    label: u64,
    depth: u32,
    ident: u64,
    payload: P,
    depth_bound: u32,
    base: Round,
    has_children: bool,
    bag: Vec<MemberRec<P>>,
    bag_idents: BTreeSet<u64>,
    view: Option<ClusterView<P>>,
    my_ports: Vec<(NodeId, u64, u64)>,
}

/// What the core wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherStep {
    /// Sleep until the given absolute round.
    WakeAt(Round),
    /// The gather is complete at this node; [`GatherCore::view`] is ready.
    Done,
}

impl<P: Clone + std::fmt::Debug + Send + Sync> GatherCore<P> {
    /// New core for a node with cluster `label`, BFS `depth`, its own
    /// identifier, and payload.
    pub fn new(
        label: u64,
        depth: u32,
        ident: u64,
        payload: P,
        depth_bound: u32,
        base: Round,
    ) -> Self {
        GatherCore {
            label,
            depth,
            ident,
            payload,
            depth_bound,
            base,
            has_children: false,
            bag: Vec::new(),
            bag_idents: BTreeSet::new(),
            view: None,
            my_ports: Vec::new(),
        }
    }

    fn hello_round(&self) -> Round {
        self.base
    }
    fn cc_recv_round(&self) -> Round {
        self.base + 1 + (self.depth_bound - self.depth) as Round
    }
    fn cc_send_round(&self) -> Round {
        self.cc_recv_round() + 1
    }
    fn bc_base(&self) -> Round {
        self.base + self.depth_bound as Round + 3
    }
    fn bc_recv_round(&self) -> Round {
        // depth d ≥ 1 receives at base + d − 1; the root "receives" at its
        // cc_recv_round instead.
        self.bc_base() + self.depth as Round - 1
    }
    fn bc_send_round(&self) -> Round {
        self.bc_base() + self.depth as Round
    }

    /// The completed view (once [`GatherStep::Done`]).
    pub fn view(&self) -> Option<&ClusterView<P>> {
        self.view.as_ref()
    }

    /// Consume the core, returning the view.
    pub fn into_view(self) -> Option<ClusterView<P>> {
        self.view
    }

    /// Messages to emit at `round`.
    pub fn send_at(&mut self, round: Round) -> Vec<Outgoing<GatherMsg<P>>> {
        if round == self.hello_round() {
            return vec![Outgoing::Broadcast(GatherMsg::Hello(
                self.label,
                self.depth,
                self.ident,
                self.payload.clone(),
            ))];
        }
        if round == self.cc_send_round() && self.depth > 0 {
            return vec![Outgoing::Broadcast(GatherMsg::Bag {
                label: self.label,
                up: true,
                recs: Arc::new(self.bag.clone()),
            })];
        }
        if round == self.bc_send_round() && self.has_children {
            return vec![Outgoing::Broadcast(GatherMsg::Bag {
                label: self.label,
                up: false,
                recs: Arc::new(self.bag.clone()),
            })];
        }
        vec![]
    }

    /// Process the inbox at `round`; returns the next step.
    pub fn recv_at(&mut self, round: Round, inbox: &[Envelope<GatherMsg<P>>]) -> GatherStep {
        let me_ident = self.ident;
        if round == self.hello_round() {
            // Learn all neighbors; build own record.
            let mut intra = Vec::new();
            let mut border = Vec::new();
            self.my_ports.clear();
            for e in inbox {
                if let GatherMsg::Hello(l, d, ident, pl) = &e.msg {
                    self.my_ports.push((e.from, *ident, *l));
                    if *l == self.label {
                        intra.push(*ident);
                        if *d == self.depth + 1 {
                            self.has_children = true;
                        }
                    } else {
                        border.push((*ident, *l, *d, pl.clone()));
                    }
                }
            }
            intra.sort_unstable();
            border.sort_unstable_by_key(|b| (b.0, b.1));
            self.bag = vec![MemberRec {
                ident: me_ident,
                depth: self.depth,
                payload: self.payload.clone(),
                intra,
                border,
            }];
            self.bag_idents = BTreeSet::from([me_ident]);
            // Singleton root: nothing more to do.
            if self.depth == 0 && !self.has_children {
                self.finish(me_ident);
                return GatherStep::Done;
            }
            if self.has_children {
                return GatherStep::WakeAt(self.cc_recv_round());
            }
            // Leaf: go straight to our forwarding (cc) round.
            return GatherStep::WakeAt(self.cc_send_round());
        }

        if round == self.cc_recv_round() && self.has_children {
            self.merge_bags(inbox, true);
            if self.depth == 0 {
                // Root: bag complete; deliver downward next.
                self.finish(me_ident);
                return GatherStep::WakeAt(self.bc_send_round());
            }
            return GatherStep::WakeAt(self.cc_send_round());
        }

        if round == self.cc_send_round() && self.depth > 0 {
            return GatherStep::WakeAt(self.bc_recv_round());
        }

        if round == self.bc_recv_round() && self.depth > 0 {
            self.merge_bags(inbox, false);
            self.finish(me_ident);
            if self.has_children {
                return GatherStep::WakeAt(self.bc_send_round());
            }
            return GatherStep::Done;
        }

        if round == self.bc_send_round() {
            return GatherStep::Done;
        }

        unreachable!("gather core woke at unscheduled round {round}");
    }

    fn merge_bags(&mut self, inbox: &[Envelope<GatherMsg<P>>], up: bool) {
        for e in inbox {
            if let GatherMsg::Bag { label, up: u, recs } = &e.msg {
                if *label == self.label && *u == up {
                    for r in recs.iter() {
                        if self.bag_idents.insert(r.ident) {
                            self.bag.push(r.clone());
                        }
                    }
                }
            }
        }
    }

    fn finish(&mut self, me_ident: u64) {
        let members: BTreeMap<u64, MemberRec<P>> =
            self.bag.iter().cloned().map(|r| (r.ident, r)).collect();
        self.view = Some(ClusterView {
            label: self.label,
            my_ident: me_ident,
            my_depth: self.depth,
            members,
            my_ports: self.my_ports.clone(),
        });
    }
}

impl<P: Clone + std::fmt::Debug + Send + Sync + Codec> GatherCore<P> {
    /// Write the core's dynamic state (everything `recv_at` mutates). The
    /// ident index and the finished view are derivable from the bag and the
    /// ports, so only a completion flag travels for the view.
    pub fn save(&self, w: &mut Writer) {
        self.has_children.encode(w);
        self.bag.encode(w);
        self.my_ports.encode(w);
        self.view.is_some().encode(w);
    }

    /// Overwrite the dynamic state on a freshly constructed core.
    pub fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.has_children = r.get()?;
        self.bag = r.get()?;
        self.my_ports = r.get()?;
        self.bag_idents = self.bag.iter().map(|m| m.ident).collect();
        let finished: bool = r.get()?;
        if finished {
            self.finish(self.ident);
        } else {
            self.view = None;
        }
        Ok(())
    }
}

/// Standalone gather program: every participant outputs its
/// [`ClusterView`]; non-participants output `None` and never wake.
pub struct ClusterGather<P> {
    core: Option<GatherCore<P>>,
    done_view: Option<ClusterView<P>>,
}

impl<P: Clone + std::fmt::Debug + Send + Sync> ClusterGather<P> {
    /// A participating node.
    pub fn participant(label: u64, depth: u32, ident: u64, payload: P, depth_bound: u32) -> Self {
        ClusterGather {
            core: Some(GatherCore::new(
                label,
                depth,
                ident,
                payload,
                depth_bound,
                1,
            )),
            done_view: None,
        }
    }

    /// A node outside the clustered subgraph (sleeps through the stage).
    pub fn bystander() -> Self {
        ClusterGather {
            core: None,
            done_view: None,
        }
    }
}

impl<P: Clone + std::fmt::Debug + Send + Sync> Program for ClusterGather<P> {
    type Msg = GatherMsg<P>;
    type Output = Option<ClusterView<P>>;

    fn initial_wake(&self) -> Option<Round> {
        self.core.as_ref().map(|_| 1)
    }

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<GatherMsg<P>>) {
        if let Some(core) = &mut self.core {
            out.extend(core.send_at(view.round));
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<GatherMsg<P>>]) -> Action {
        let core = self.core.as_mut().expect("bystanders never wake");
        match core.recv_at(view.round, inbox) {
            GatherStep::WakeAt(r) => Action::SleepUntil(r),
            GatherStep::Done => {
                self.done_view = core.view().cloned();
                Action::Halt
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        if self.core.is_none() {
            return Some(None);
        }
        self.done_view.clone().map(Some)
    }

    fn span(&self) -> &'static str {
        "gather"
    }
}

/// Dynamic state: the core's gather progress plus a completion flag for
/// the output view (rebuilt from the core, never serialized twice).
/// Participation itself is a construction input: a crash-restart or resume
/// rebuilds the same participant/bystander split from the scenario.
impl<P: Clone + std::fmt::Debug + Send + Sync + Codec> Persist for ClusterGather<P> {
    fn save(&self, w: &mut Writer) {
        match &self.core {
            None => false.encode(w),
            Some(core) => {
                true.encode(w);
                core.save(w);
                self.done_view.is_some().encode(w);
            }
        }
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let participating: bool = r.get()?;
        match (&mut self.core, participating) {
            (None, false) => Ok(()),
            (Some(core), true) => {
                core.restore(r)?;
                let done: bool = r.get()?;
                self.done_view = if done { core.view().cloned() } else { None };
                Ok(())
            }
            _ => Err(CheckpointError::Corrupt("gather participation mismatch")),
        }
    }
}

impl<P: Codec> Codec for MemberRec<P> {
    fn encode(&self, w: &mut Writer) {
        self.ident.encode(w);
        self.depth.encode(w);
        self.payload.encode(w);
        self.intra.encode(w);
        self.border.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(MemberRec {
            ident: r.get()?,
            depth: r.get()?,
            payload: r.get()?,
            intra: r.get()?,
            border: r.get()?,
        })
    }
}

impl<P: Codec> Codec for GatherMsg<P> {
    fn encode(&self, w: &mut Writer) {
        match self {
            GatherMsg::Hello(label, depth, ident, payload) => {
                0u8.encode(w);
                label.encode(w);
                depth.encode(w);
                ident.encode(w);
                payload.encode(w);
            }
            GatherMsg::Bag { label, up, recs } => {
                1u8.encode(w);
                label.encode(w);
                up.encode(w);
                recs.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(GatherMsg::Hello(r.get()?, r.get()?, r.get()?, r.get()?)),
            1 => Ok(GatherMsg::Bag {
                label: r.get()?,
                up: r.get()?,
                recs: r.get()?,
            }),
            _ => Err(CheckpointError::Corrupt("GatherMsg tag")),
        }
    }
}
