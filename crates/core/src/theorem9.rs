//! Theorem 9: solving any O-LOCAL problem given a colored BFS-clustering,
//! with awake complexity `O(log c)` and round complexity `O(c·n)`.
//!
//! Two stages (exactly the paper's proof):
//!
//! 1. every cluster learns its root's identifier by an intra-cluster
//!    gather (the colored labels suffice: adjacent clusters always have
//!    different colors), turning the colored clustering into a
//!    uniquely-labeled overlay `(ℓ, δ)`;
//! 2. the problem `Π′` — "output the solutions of all my members" — is
//!    solved on the virtual graph `H` by the Lemma 11 wake schedule on the
//!    colors `γ` (a proper coloring of `H`), executed through the Lemma 7
//!    simulator. When a vertex decides (at virtual round `φ(γ)`), it runs
//!    the sequential greedy over its members in `(δ, ident)` order, using
//!    the member outputs already received from lower-colored neighbor
//!    clusters — the orientation `µ_G` of the paper (inter-cluster edges
//!    by color, intra-cluster edges by `(δ, ident)`).

use crate::clustering::Clustering;
use crate::compose::Composition;
use crate::gather::ClusterGather;
use crate::lemma10::PaletteTree;
use crate::resilient::run_stage;
use crate::virt::{VEnvelope, VOutgoing, VertexInput, VirtSim};
use awake_graphs::Graph;
use awake_olocal::{GreedyView, OLocalProblem};
use awake_sleeping::{
    Action, CheckpointError, Codec, Config, Engine, FaultPlan, Persist, Reader, Round, SimError,
    Writer,
};
use std::collections::BTreeMap;

/// Per-node payload of the stage-2 gather: `(γ, problem input)`.
type Payload<I> = (u64, I);

/// The state a vertex broadcasts once decided: its members' outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexState<O> {
    /// The sending vertex's color.
    pub color: u64,
    /// `(ident, output)` for every member.
    pub outputs: Vec<(u64, O)>,
    /// Accumulated closure for problems that need it.
    pub closure: Vec<(u64, O)>,
}

/// The Π′ vertex program (Lemma 11 on `H`).
pub struct Lemma11Vertex<P: OLocalProblem> {
    problem: P,
    input: VertexInput<Payload<P::Input>>,
    color: u64,
    /// Wake virtual rounds (`1 + r(γ)`), ascending.
    wakes: Vec<Round>,
    cursor: usize,
    phi_vround: Round,
    /// States received from lower-colored neighbor vertices, keyed by
    /// vertex label.
    states: BTreeMap<u64, VertexState<P::Output>>,
    decided: Option<BTreeMap<u64, P::Output>>,
    closure: BTreeMap<u64, P::Output>,
}

impl<P: OLocalProblem> Lemma11Vertex<P> {
    /// Build from the gathered vertex input; `c` is the public color bound.
    pub fn new(problem: P, input: &VertexInput<Payload<P::Input>>, c: u64) -> Self {
        let color = input
            .members
            .values()
            .next()
            .map(|m| m.payload.0)
            .expect("non-empty cluster");
        debug_assert!(
            input.members.values().all(|m| m.payload.0 == color),
            "one color per cluster"
        );
        assert!((1..=c).contains(&color), "color {color} out of 1..={c}");
        let tree = PaletteTree::covering(c);
        let wakes: Vec<Round> = tree.r(color).into_iter().map(|x| 1 + x).collect();
        Lemma11Vertex {
            problem,
            input: input.clone(),
            color,
            wakes,
            cursor: 0,
            phi_vround: 1 + tree.phi(color),
            states: BTreeMap::new(),
            decided: None,
            closure: BTreeMap::new(),
        }
    }

    /// Decide every member in `(δ, ident)` order (the paper's `µ_G`).
    fn decide(&mut self) {
        let mut order: Vec<(u32, u64)> = self
            .input
            .members
            .values()
            .map(|m| (m.depth, m.ident))
            .collect();
        order.sort_unstable();
        if self.problem.needs_full_closure() {
            for st in self.states.values() {
                for (i, o) in st.outputs.iter().chain(st.closure.iter()) {
                    self.closure.insert(*i, o.clone());
                }
            }
        }
        let mut decided: BTreeMap<u64, P::Output> = BTreeMap::new();
        for (depth, ident) in order {
            let m = &self.input.members[&ident];
            let mut out_neighbors: Vec<(u64, P::Output)> = Vec::new();
            // Intra-cluster out-neighbors: smaller (δ, ident).
            for &u in &m.intra {
                let mu = &self.input.members[&u];
                if (mu.depth, mu.ident) < (depth, ident) {
                    out_neighbors.push((u, decided[&u].clone()));
                }
            }
            // Border out-neighbors: members of lower-colored clusters.
            for &(nbr_ident, nbr_label, _, ref pl) in &m.border {
                if pl.0 < self.color {
                    let st = self.states.get(&nbr_label).unwrap_or_else(|| {
                        panic!(
                            "state of adjacent lower-colored cluster {nbr_label} \
                             must have arrived before φ"
                        )
                    });
                    let out = st
                        .outputs
                        .iter()
                        .find(|(i, _)| *i == nbr_ident)
                        .map(|(_, o)| o.clone())
                        .expect("neighbor cluster reports all members");
                    out_neighbors.push((nbr_ident, out));
                }
            }
            let mut closure: BTreeMap<u64, P::Output> = self.closure.clone();
            for (i, o) in &out_neighbors {
                closure.insert(*i, o.clone());
            }
            for (i, o) in &decided {
                closure.insert(*i, o.clone());
            }
            let gv = GreedyView {
                ident,
                degree: m.intra.len() + m.border.len(),
                input: &m.payload.1,
                out_neighbors: &out_neighbors,
                closure_outputs: &closure,
            };
            let out = self.problem.decide(&gv);
            decided.insert(ident, out);
        }
        if self.problem.needs_full_closure() {
            for (i, o) in &decided {
                self.closure.insert(*i, o.clone());
            }
        }
        self.decided = Some(decided);
    }

    fn state(&self) -> VertexState<P::Output> {
        VertexState {
            color: self.color,
            outputs: self
                .decided
                .as_ref()
                .expect("decided before sending")
                .iter()
                .map(|(i, o)| (*i, o.clone()))
                .collect(),
            closure: if self.problem.needs_full_closure() {
                self.closure.iter().map(|(i, o)| (*i, o.clone())).collect()
            } else {
                vec![]
            },
        }
    }
}

impl<P: OLocalProblem> crate::virt::VirtualProgram for Lemma11Vertex<P> {
    type Msg = VertexState<P::Output>;
    type Output = BTreeMap<u64, P::Output>;
    type Payload = Payload<P::Input>;

    fn send(&mut self, vround: Round, out: &mut Vec<VOutgoing<Self::Msg>>) {
        if vround > self.phi_vround {
            out.push(VOutgoing::Broadcast(self.state()));
        }
    }

    fn receive(&mut self, vround: Round, inbox: &[VEnvelope<Self::Msg>]) -> Action {
        if vround > 1 {
            for e in inbox {
                if e.msg.color < self.color {
                    self.states.entry(e.from).or_insert_with(|| e.msg.clone());
                }
            }
            if vround == self.phi_vround {
                self.decide();
            }
        }
        while self.cursor < self.wakes.len() && self.wakes[self.cursor] <= vround {
            self.cursor += 1;
        }
        match self.wakes.get(self.cursor) {
            Some(&r) => Action::SleepUntil(r),
            None => Action::Halt,
        }
    }

    fn output(&self) -> Option<Self::Output> {
        self.decided.clone()
    }
}

impl<O: Codec> Codec for VertexState<O> {
    fn encode(&self, w: &mut Writer) {
        self.color.encode(w);
        self.outputs.encode(w);
        self.closure.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(VertexState {
            color: r.get()?,
            outputs: r.get()?,
            closure: r.get()?,
        })
    }
}

/// Dynamic state: the wake cursor, the received neighbor-vertex states,
/// the decision map, and the closure. The wake schedule and the decision
/// round derive from `(γ, c)` and are rebuilt by the factory.
impl<P: OLocalProblem> Persist for Lemma11Vertex<P>
where
    P::Output: Codec,
{
    fn save(&self, w: &mut Writer) {
        self.cursor.encode(w);
        self.states.encode(w);
        self.decided.encode(w);
        self.closure.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.cursor = r.get()?;
        self.states = r.get()?;
        self.decided = r.get()?;
        self.closure = r.get()?;
        Ok(())
    }
}

/// Result of a Theorem 9 run.
#[derive(Debug)]
pub struct Theorem9Result<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// Stage accounting.
    pub composition: Composition,
}

/// Solve `problem` on `g` given a colored BFS-clustering.
///
/// `c_bound` is the public bound on colors (`max γ ≤ c_bound`) that every
/// node's schedule is derived from — `Params::color_bound()` when the
/// clustering comes from Theorem 13.
///
/// # Errors
/// Propagates simulator errors.
///
/// # Panics
/// Panics if the clustering does not cover every node or a color exceeds
/// `c_bound`.
pub fn solve<P>(
    g: &Graph,
    problem: &P,
    inputs: &[P::Input],
    clustering: &Clustering,
    c_bound: u64,
) -> Result<Theorem9Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone,
{
    assert_eq!(inputs.len(), g.n(), "inputs length mismatch");
    assert_eq!(clustering.assigned(), g.n(), "Theorem 9 needs a full cover");
    assert!(
        clustering.max_label() <= c_bound,
        "colors exceed the public bound"
    );
    let mut composition = Composition::new();
    let db = g.n() as u32;

    // ---- Stage 1: learn root identifiers (colored → uniquely labeled) ----
    let programs: Vec<ClusterGather<()>> = g
        .nodes()
        .map(|v| {
            let a = clustering.assign[v.index()].expect("full cover");
            ClusterGather::participant(a.label, a.depth, g.ident(v), (), db)
        })
        .collect();
    let run = Engine::new(g, Config::default()).run(programs)?;
    let root_ident: Vec<u64> = run
        .outputs
        .iter()
        .map(|o| o.as_ref().expect("participants finish").root_ident())
        .collect();
    composition.push("theorem9/root-overlay", run.metrics);

    // ---- Stage 2: Lemma 11 on H via Lemma 7 ----
    let programs: Vec<VirtSim<Lemma11Vertex<P>, _>> = g
        .nodes()
        .map(|v| {
            let a = clustering.assign[v.index()].expect("full cover");
            let payload: Payload<P::Input> = (a.label, inputs[v.index()].clone());
            let problem = problem.clone();
            VirtSim::participant(
                root_ident[v.index()],
                a.depth,
                g.ident(v),
                payload,
                db,
                move |vi| Lemma11Vertex::new(problem.clone(), vi, c_bound),
            )
        })
        .collect();
    let run = Engine::new(g, Config::default()).run(programs)?;
    composition.push("theorem9/lemma11-on-H", run.metrics);

    let outputs: Vec<P::Output> = g
        .nodes()
        .map(|v| {
            run.outputs[v.index()]
                .as_ref()
                .expect("participants finish")[&g.ident(v)]
                .clone()
        })
        .collect();
    Ok(Theorem9Result {
        outputs,
        composition,
    })
}

/// [`solve`] under the crate's [recovery contract](crate::resilient):
/// the root-overlay gather and the Lemma 11 simulation on `H` run
/// wrapped in [`Redundant`](awake_sleeping::Redundant) time redundancy
/// sized from `plan`, serially or (with `workers`) on the worker-pool
/// executor — bit-for-bit identical either way. An inactive plan runs
/// exactly like [`solve`].
///
/// # Errors
/// Propagates simulator errors.
///
/// # Panics
/// Like [`solve`].
pub fn solve_faulty<P>(
    g: &Graph,
    problem: &P,
    inputs: &[P::Input],
    clustering: &Clustering,
    c_bound: u64,
    plan: &FaultPlan,
    workers: Option<usize>,
) -> Result<Theorem9Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone + Send + Sync,
    P::Input: Codec,
    P::Output: Codec,
{
    assert_eq!(inputs.len(), g.n(), "inputs length mismatch");
    assert_eq!(clustering.assigned(), g.n(), "Theorem 9 needs a full cover");
    assert!(
        clustering.max_label() <= c_bound,
        "colors exceed the public bound"
    );
    let mut composition = Composition::new();
    let db = g.n() as u32;
    let stage_budgets = crate::bounds::theorem9_stage_budgets(db, c_bound);

    let programs: Vec<ClusterGather<()>> = g
        .nodes()
        .map(|v| {
            let a = clustering.assign[v.index()].expect("full cover");
            ClusterGather::participant(a.label, a.depth, g.ident(v), (), db)
        })
        .collect();
    let run = run_stage(
        g,
        programs,
        Config::default(),
        stage_budgets[0].rounds,
        Some(plan),
        workers,
    )?;
    let root_ident: Vec<u64> = run
        .outputs
        .iter()
        .map(|o| o.as_ref().expect("participants finish").root_ident())
        .collect();
    composition.push("theorem9/root-overlay", run.metrics);

    let programs: Vec<VirtSim<Lemma11Vertex<P>, _>> = g
        .nodes()
        .map(|v| {
            let a = clustering.assign[v.index()].expect("full cover");
            let payload: Payload<P::Input> = (a.label, inputs[v.index()].clone());
            let problem = problem.clone();
            VirtSim::participant(
                root_ident[v.index()],
                a.depth,
                g.ident(v),
                payload,
                db,
                move |vi| Lemma11Vertex::new(problem.clone(), vi, c_bound),
            )
        })
        .collect();
    let run = run_stage(
        g,
        programs,
        Config::default(),
        stage_budgets[1].rounds,
        Some(plan),
        workers,
    )?;
    composition.push("theorem9/lemma11-on-H", run.metrics);

    let outputs: Vec<P::Output> = g
        .nodes()
        .map(|v| {
            run.outputs[v.index()]
                .as_ref()
                .expect("participants finish")[&g.ident(v)]
                .clone()
        })
        .collect();
    Ok(Theorem9Result {
        outputs,
        composition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::clustering::synthesize;
    use awake_graphs::generators;
    use awake_olocal::problems::{
        DegreePlusOneListColoring, DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover,
    };

    #[test]
    fn theorem9_on_synthetic_clusterings() {
        for (g, k) in [
            (generators::grid(7, 7), 8),
            (generators::gnp(60, 0.1, 3), 12),
            (generators::random_tree(45, 2), 5),
            (generators::clique_cycle(6, 5), 6),
        ] {
            let cl = synthesize(&g, k, 11);
            cl.validate_colored(&g).unwrap();
            let c = cl.max_label();

            let r = solve(&g, &DeltaPlusOneColoring, &vec![(); g.n()], &cl, c).unwrap();
            DeltaPlusOneColoring
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();
            assert!(
                r.composition.max_awake() <= bounds::theorem9_awake(c),
                "awake {} > bound {}",
                r.composition.max_awake(),
                bounds::theorem9_awake(c)
            );

            let r = solve(&g, &MaximalIndependentSet, &vec![(); g.n()], &cl, c).unwrap();
            MaximalIndependentSet
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();

            let r = solve(&g, &MinimalVertexCover, &vec![(); g.n()], &cl, c).unwrap();
            MinimalVertexCover
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();

            let p = DegreePlusOneListColoring;
            let inputs = p.trivial_inputs(&g);
            let r = solve(&g, &p, &inputs, &cl, c).unwrap();
            p.validate(&g, &inputs, &r.outputs).unwrap();
        }
    }

    #[test]
    fn awake_scales_with_log_c_not_c() {
        // Same graph, two clusterings with very different color counts:
        // awake grows at most logarithmically.
        let g = generators::grid(10, 10);
        let few = synthesize(&g, 4, 1);
        let many = synthesize(&g, 60, 1);
        let (c1, c2) = (few.max_label(), many.max_label());
        assert!(c2 > c1);
        let a1 = solve(&g, &MaximalIndependentSet, &vec![(); g.n()], &few, c1)
            .unwrap()
            .composition
            .max_awake();
        let a2 = solve(&g, &MaximalIndependentSet, &vec![(); g.n()], &many, c2)
            .unwrap()
            .composition
            .max_awake();
        // awake difference bounded by 5·log₂(c₂/c₁) + constant
        assert!(
            a2 <= a1 + 5 * ((c2 as f64 / c1 as f64).log2().ceil() as u64 + 2),
            "a1={a1} (c={c1}), a2={a2} (c={c2})"
        );
    }
}
