//! The folklore baseline: sequential greedy by identifier in the Sleeping
//! model.
//!
//! Node `v` wakes at round `1 + ident(u)` for every neighbor `u` with a
//! smaller identifier (to hear `u`'s decision) and at round `1 + ident(v)`
//! to decide and announce. Awake complexity `deg(v) + 2 = O(Δ)`; round
//! complexity `O(ident bound)`. This is the comparator the paper's §1
//! improves from `O(Δ)` (trivial) through `O(log Δ + log* n)` (BM21) to
//! `O(√log n · log* n)` (Theorem 1).

use awake_olocal::{GreedyView, OLocalProblem};
use awake_sleeping::{
    Action, CheckpointError, Codec, Envelope, Outbox, Persist, Program, Reader, Round, View, Writer,
};
use std::collections::BTreeMap;

/// Message: `(ident, output)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Announce<O> {
    /// Sender identifier.
    pub ident: u64,
    /// Sender's decided output.
    pub output: O,
}

/// The by-identifier greedy program.
pub struct IdentScheduled<P: OLocalProblem> {
    problem: P,
    input: P::Input,
    /// Wake rounds: `1 + ident(u)` for lower neighbors, then `1 + ident(v)`.
    wakes: Vec<Round>,
    cursor: usize,
    collected: Vec<(u64, P::Output)>,
    decided: Option<P::Output>,
}

impl<P: OLocalProblem> IdentScheduled<P> {
    /// Program for one node.
    pub fn new(problem: P, input: P::Input) -> Self {
        IdentScheduled {
            problem,
            input,
            wakes: Vec::new(),
            cursor: 0,
            collected: Vec::new(),
            decided: None,
        }
    }
}

impl<P: OLocalProblem> IdentScheduled<P> {
    /// Decide (at the scheduled round) and produce the announcement to
    /// broadcast — shared by the bare and [`TrivialGreedy`]-wrapped forms.
    ///
    /// Fires at the first awake round at or past `1 + ident` with no
    /// decision yet. Fault-free that is exactly round `1 + ident`; under
    /// crash-restart faults the decision round can be voided (the crash
    /// discards the round's state changes), and the node then decides at
    /// its next awake round instead of halting outputless.
    fn announcement(&mut self, view: &View<'_>) -> Option<Announce<P::Output>> {
        if view.round < 1 + view.ident || self.decided.is_some() {
            return None;
        }
        // Decide now: all lower neighbors announced at earlier rounds.
        let out_neighbors = self.collected.clone();
        let closure: BTreeMap<u64, P::Output> = out_neighbors.iter().cloned().collect();
        let gv = GreedyView {
            ident: view.ident,
            degree: view.degree(),
            input: &self.input,
            out_neighbors: &out_neighbors,
            closure_outputs: &closure,
        };
        let out = self.problem.decide(&gv);
        self.decided = Some(out.clone());
        Some(Announce {
            ident: view.ident,
            output: out,
        })
    }
}

impl<P: OLocalProblem> Program for IdentScheduled<P> {
    type Msg = Announce<P::Output>;
    type Output = P::Output;

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        if let Some(a) = self.announcement(view) {
            out.broadcast(a);
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        debug_assert!(view.round > 1, "round 1 is handled by TrivialGreedy");
        for e in inbox {
            if e.msg.ident < view.ident && !self.collected.iter().any(|(i, _)| *i == e.msg.ident) {
                self.collected.push((e.msg.ident, e.msg.output.clone()));
            }
        }
        while self.cursor < self.wakes.len() && self.wakes[self.cursor] <= view.round {
            self.cursor += 1;
        }
        match self.wakes.get(self.cursor) {
            Some(&r) => Action::SleepUntil(r),
            None => Action::Halt,
        }
    }

    fn output(&self) -> Option<P::Output> {
        self.decided.clone()
    }
}

/// The complete trivial-baseline program: round 1 exchanges identifiers,
/// after which each node follows its ident-derived schedule.
pub struct TrivialGreedy<P: OLocalProblem> {
    inner: IdentScheduled<P>,
    started: bool,
    /// Crash-recovery mode: a crash-restart wiped either the round-1
    /// schedule or the scheduled decision. The ident-derived wake plan is
    /// unrecoverable (the Hello exchange happens once), so the node stays
    /// awake, collects whatever decisions still reach it, decides at its
    /// own round, and halts — degraded awake complexity, but the run
    /// always completes with an output.
    degraded: bool,
}

impl<P: OLocalProblem> TrivialGreedy<P> {
    /// Program for one node.
    pub fn new(problem: P, input: P::Input) -> Self {
        TrivialGreedy {
            inner: IdentScheduled::new(problem, input),
            started: false,
            degraded: false,
        }
    }
}

/// Round-1 identifier announcement or a decision announcement.
#[derive(Debug, Clone, PartialEq)]
pub enum TrivialMsg<O> {
    /// `(ident)` — sent by everyone at round 1.
    Hello(u64),
    /// A decision.
    Decision(Announce<O>),
}

impl<P: OLocalProblem> Program for TrivialGreedy<P> {
    type Msg = TrivialMsg<P::Output>;
    type Output = P::Output;

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        if view.round == 1 {
            out.broadcast(TrivialMsg::Hello(view.ident));
        } else if let Some(a) = self.inner.announcement(view) {
            out.broadcast(TrivialMsg::Decision(a));
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        if view.round == 1 {
            self.started = true;
            let mut wakes: Vec<Round> = inbox
                .iter()
                .filter_map(|e| match &e.msg {
                    TrivialMsg::Hello(ident) if *ident < view.ident => Some(1 + *ident),
                    _ => None,
                })
                .collect();
            wakes.push(1 + view.ident);
            wakes.sort_unstable();
            wakes.dedup();
            self.inner.wakes = wakes;
            let first = self.inner.wakes[0];
            return Action::SleepUntil(first);
        }
        if !self.started {
            // A crash-restart at round 1 discarded the Hello inbox; the
            // ident schedule cannot be rebuilt. Degrade: poll every round
            // until our own decision round has produced an output.
            self.started = true;
            self.degraded = true;
            self.inner.wakes = vec![1 + view.ident];
        }
        let decisions: Vec<Envelope<Announce<P::Output>>> = inbox
            .iter()
            .filter_map(|e| match &e.msg {
                TrivialMsg::Decision(a) => Some(Envelope {
                    from: e.from,
                    msg: a.clone(),
                }),
                _ => None,
            })
            .collect();
        if self.degraded {
            for e in &decisions {
                if e.msg.ident < view.ident
                    && !self.inner.collected.iter().any(|(i, _)| *i == e.msg.ident)
                {
                    self.inner
                        .collected
                        .push((e.msg.ident, e.msg.output.clone()));
                }
            }
            return if self.inner.decided.is_some() {
                Action::Halt
            } else {
                Action::Stay
            };
        }
        let action = self.inner.receive(view, &decisions);
        if matches!(action, Action::Halt) && self.inner.decided.is_none() {
            // The scheduled decision round was voided by a crash-restart:
            // stay awake so `announcement` fires again next round.
            self.degraded = true;
            return Action::Stay;
        }
        action
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }

    fn span(&self) -> &'static str {
        "trivial"
    }
}

impl<O: Codec> Codec for Announce<O> {
    fn encode(&self, w: &mut Writer) {
        self.ident.encode(w);
        self.output.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(Announce {
            ident: r.get()?,
            output: r.get()?,
        })
    }
}

impl<O: Codec> Codec for TrivialMsg<O> {
    fn encode(&self, w: &mut Writer) {
        match self {
            TrivialMsg::Hello(ident) => {
                0u8.encode(w);
                ident.encode(w);
            }
            TrivialMsg::Decision(a) => {
                1u8.encode(w);
                a.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(TrivialMsg::Hello(r.get()?)),
            1 => Ok(TrivialMsg::Decision(r.get()?)),
            _ => Err(CheckpointError::Corrupt("TrivialMsg tag")),
        }
    }
}

/// Dynamic state: the round-1 and crash-degradation flags, the
/// ident-derived schedule (learned at round 1, hence dynamic), the
/// schedule cursor, the collected lower decisions and the own decision.
/// The problem and input are construction inputs and stay put.
impl<P: OLocalProblem> Persist for TrivialGreedy<P>
where
    P::Output: Codec,
{
    fn save(&self, w: &mut Writer) {
        self.started.encode(w);
        self.degraded.encode(w);
        self.inner.wakes.encode(w);
        self.inner.cursor.encode(w);
        self.inner.collected.encode(w);
        self.inner.decided.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.started = r.get()?;
        self.degraded = r.get()?;
        self.inner.wakes = r.get()?;
        self.inner.cursor = r.get()?;
        self.inner.collected = r.get()?;
        self.inner.decided = r.get()?;
        Ok(())
    }
}

/// Exact awake bound of the trivial baseline for a node of degree `deg`.
pub fn trivial_awake_bound(deg: usize) -> u64 {
    deg as u64 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::{generators, AcyclicOrientation};
    use awake_olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
    use awake_sleeping::{Config, Engine};

    #[test]
    fn trivial_solves_and_matches_sequential() {
        for g in [
            generators::gnp(50, 0.15, 4),
            generators::star(20),
            generators::cycle(9),
        ] {
            let p = MaximalIndependentSet;
            let programs: Vec<TrivialGreedy<MaximalIndependentSet>> =
                g.nodes().map(|_| TrivialGreedy::new(p, ())).collect();
            let run = Engine::new(&g, Config::default()).run(programs).unwrap();
            p.validate(&g, &vec![(); g.n()], &run.outputs).unwrap();
            // identical to the sequential greedy along the by-ident orientation
            let mu = AcyclicOrientation::by_ident(&g);
            let seq = awake_olocal::greedy::solve_sequentially(&p, &g, &mu, &vec![(); g.n()]);
            assert_eq!(run.outputs, seq);
            // awake ≤ deg + 2, rounds ≤ ident bound + 1
            for v in g.nodes() {
                assert!(
                    run.metrics.awake[v.index()] <= trivial_awake_bound(g.degree(v)),
                    "node {v}"
                );
            }
            assert!(run.metrics.rounds <= g.ident_bound() + 1);
        }
    }

    #[test]
    fn trivial_coloring_uses_degree_plus_one() {
        let g = generators::complete(12);
        let programs: Vec<TrivialGreedy<DeltaPlusOneColoring>> = g
            .nodes()
            .map(|_| TrivialGreedy::new(DeltaPlusOneColoring, ()))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        DeltaPlusOneColoring
            .validate(&g, &vec![(); g.n()], &run.outputs)
            .unwrap();
        // on K12 the trivial baseline is awake Θ(Δ): every node hears all
        // lower neighbors
        assert_eq!(run.metrics.max_awake(), 13);
    }
}
