//! The folklore baseline: sequential greedy by identifier in the Sleeping
//! model.
//!
//! Node `v` wakes at round `1 + ident(u)` for every neighbor `u` with a
//! smaller identifier (to hear `u`'s decision) and at round `1 + ident(v)`
//! to decide and announce. Awake complexity `deg(v) + 2 = O(Δ)`; round
//! complexity `O(ident bound)`. This is the comparator the paper's §1
//! improves from `O(Δ)` (trivial) through `O(log Δ + log* n)` (BM21) to
//! `O(√log n · log* n)` (Theorem 1).

use awake_olocal::{GreedyView, OLocalProblem};
use awake_sleeping::{Action, Envelope, Outbox, Program, Round, View};
use std::collections::BTreeMap;

/// Message: `(ident, output)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Announce<O> {
    /// Sender identifier.
    pub ident: u64,
    /// Sender's decided output.
    pub output: O,
}

/// The by-identifier greedy program.
pub struct IdentScheduled<P: OLocalProblem> {
    problem: P,
    input: P::Input,
    /// Wake rounds: `1 + ident(u)` for lower neighbors, then `1 + ident(v)`.
    wakes: Vec<Round>,
    cursor: usize,
    collected: Vec<(u64, P::Output)>,
    decided: Option<P::Output>,
}

impl<P: OLocalProblem> IdentScheduled<P> {
    /// Program for one node.
    pub fn new(problem: P, input: P::Input) -> Self {
        IdentScheduled {
            problem,
            input,
            wakes: Vec::new(),
            cursor: 0,
            collected: Vec::new(),
            decided: None,
        }
    }
}

impl<P: OLocalProblem> IdentScheduled<P> {
    /// Decide (at the scheduled round) and produce the announcement to
    /// broadcast — shared by the bare and [`TrivialGreedy`]-wrapped forms.
    fn announcement(&mut self, view: &View<'_>) -> Option<Announce<P::Output>> {
        if view.round != 1 + view.ident {
            return None;
        }
        // Decide now: all lower neighbors announced at earlier rounds.
        let out_neighbors = self.collected.clone();
        let closure: BTreeMap<u64, P::Output> = out_neighbors.iter().cloned().collect();
        let gv = GreedyView {
            ident: view.ident,
            degree: view.degree(),
            input: &self.input,
            out_neighbors: &out_neighbors,
            closure_outputs: &closure,
        };
        let out = self.problem.decide(&gv);
        self.decided = Some(out.clone());
        Some(Announce {
            ident: view.ident,
            output: out,
        })
    }
}

impl<P: OLocalProblem> Program for IdentScheduled<P> {
    type Msg = Announce<P::Output>;
    type Output = P::Output;

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        if let Some(a) = self.announcement(view) {
            out.broadcast(a);
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        debug_assert!(view.round > 1, "round 1 is handled by TrivialGreedy");
        for e in inbox {
            if e.msg.ident < view.ident && !self.collected.iter().any(|(i, _)| *i == e.msg.ident) {
                self.collected.push((e.msg.ident, e.msg.output.clone()));
            }
        }
        while self.cursor < self.wakes.len() && self.wakes[self.cursor] <= view.round {
            self.cursor += 1;
        }
        match self.wakes.get(self.cursor) {
            Some(&r) => Action::SleepUntil(r),
            None => Action::Halt,
        }
    }

    fn output(&self) -> Option<P::Output> {
        self.decided.clone()
    }
}

/// The complete trivial-baseline program: round 1 exchanges identifiers,
/// after which each node follows its ident-derived schedule.
pub struct TrivialGreedy<P: OLocalProblem> {
    inner: IdentScheduled<P>,
    started: bool,
}

impl<P: OLocalProblem> TrivialGreedy<P> {
    /// Program for one node.
    pub fn new(problem: P, input: P::Input) -> Self {
        TrivialGreedy {
            inner: IdentScheduled::new(problem, input),
            started: false,
        }
    }
}

/// Round-1 identifier announcement or a decision announcement.
#[derive(Debug, Clone, PartialEq)]
pub enum TrivialMsg<O> {
    /// `(ident)` — sent by everyone at round 1.
    Hello(u64),
    /// A decision.
    Decision(Announce<O>),
}

impl<P: OLocalProblem> Program for TrivialGreedy<P> {
    type Msg = TrivialMsg<P::Output>;
    type Output = P::Output;

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        if view.round == 1 {
            out.broadcast(TrivialMsg::Hello(view.ident));
        } else if let Some(a) = self.inner.announcement(view) {
            out.broadcast(TrivialMsg::Decision(a));
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        if view.round == 1 {
            self.started = true;
            let mut wakes: Vec<Round> = inbox
                .iter()
                .filter_map(|e| match &e.msg {
                    TrivialMsg::Hello(ident) if *ident < view.ident => Some(1 + *ident),
                    _ => None,
                })
                .collect();
            wakes.push(1 + view.ident);
            wakes.sort_unstable();
            wakes.dedup();
            self.inner.wakes = wakes;
            let first = self.inner.wakes[0];
            return Action::SleepUntil(first);
        }
        let decisions: Vec<Envelope<Announce<P::Output>>> = inbox
            .iter()
            .filter_map(|e| match &e.msg {
                TrivialMsg::Decision(a) => Some(Envelope {
                    from: e.from,
                    msg: a.clone(),
                }),
                _ => None,
            })
            .collect();
        self.inner.receive(view, &decisions)
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }

    fn span(&self) -> &'static str {
        "trivial"
    }
}

/// Exact awake bound of the trivial baseline for a node of degree `deg`.
pub fn trivial_awake_bound(deg: usize) -> u64 {
    deg as u64 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::{generators, AcyclicOrientation};
    use awake_olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
    use awake_sleeping::{Config, Engine};

    #[test]
    fn trivial_solves_and_matches_sequential() {
        for g in [
            generators::gnp(50, 0.15, 4),
            generators::star(20),
            generators::cycle(9),
        ] {
            let p = MaximalIndependentSet;
            let programs: Vec<TrivialGreedy<MaximalIndependentSet>> =
                g.nodes().map(|_| TrivialGreedy::new(p, ())).collect();
            let run = Engine::new(&g, Config::default()).run(programs).unwrap();
            p.validate(&g, &vec![(); g.n()], &run.outputs).unwrap();
            // identical to the sequential greedy along the by-ident orientation
            let mu = AcyclicOrientation::by_ident(&g);
            let seq = awake_olocal::greedy::solve_sequentially(&p, &g, &mu, &vec![(); g.n()]);
            assert_eq!(run.outputs, seq);
            // awake ≤ deg + 2, rounds ≤ ident bound + 1
            for v in g.nodes() {
                assert!(
                    run.metrics.awake[v.index()] <= trivial_awake_bound(g.degree(v)),
                    "node {v}"
                );
            }
            assert!(run.metrics.rounds <= g.ident_bound() + 1);
        }
    }

    #[test]
    fn trivial_coloring_uses_degree_plus_one() {
        let g = generators::complete(12);
        let programs: Vec<TrivialGreedy<DeltaPlusOneColoring>> = g
            .nodes()
            .map(|_| TrivialGreedy::new(DeltaPlusOneColoring, ()))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        DeltaPlusOneColoring
            .validate(&g, &vec![(); g.n()], &run.outputs)
            .unwrap();
        // on K12 the trivial baseline is awake Θ(Δ): every node hears all
        // lower neighbors
        assert_eq!(run.metrics.max_awake(), 13);
    }
}
