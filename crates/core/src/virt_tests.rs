//! Unit tests for the gather and Lemma 7 simulation machinery (kept in a
//! separate module to keep the implementation files focused).

use crate::clustering::{Assign, Clustering};
use crate::gather::{ClusterGather, ClusterView};
use crate::virt::{VEnvelope, VOutgoing, VertexInput, VirtSim, VirtualProgram};
use awake_graphs::{generators, Graph};
use awake_sleeping::{Action, Config, Engine, Round};

/// Run a standalone gather over a clustering and return each node's view.
fn run_gather(g: &Graph, cl: &Clustering) -> Vec<Option<ClusterView<u64>>> {
    let programs: Vec<ClusterGather<u64>> = g
        .nodes()
        .map(|v| match cl.assign[v.index()] {
            Some(a) => ClusterGather::participant(
                a.label,
                a.depth,
                g.ident(v),
                g.ident(v) * 100, // payload: a distinctive per-node value
                g.n() as u32,
            ),
            None => ClusterGather::bystander(),
        })
        .collect();
    let run = Engine::new(g, Config::default()).run(programs).unwrap();
    // gather is awake-frugal: ≤ 5 rounds per node
    assert!(run.metrics.max_awake() <= 5);
    run.outputs
}

#[test]
fn gather_collects_full_cluster_structure() {
    // path 0-1-2-3-4 in two clusters: {0,1,2} rooted at 1, {3,4} rooted at 3.
    let g = generators::path(5);
    let cl = Clustering {
        assign: vec![
            Some(Assign {
                label: 10,
                depth: 1,
            }),
            Some(Assign {
                label: 10,
                depth: 0,
            }),
            Some(Assign {
                label: 10,
                depth: 1,
            }),
            Some(Assign {
                label: 20,
                depth: 0,
            }),
            Some(Assign {
                label: 20,
                depth: 1,
            }),
        ],
    };
    cl.validate_uniquely_labeled(&g).unwrap();
    let views = run_gather(&g, &cl);
    let v0 = views[0].as_ref().unwrap();
    assert_eq!(v0.label, 10);
    assert_eq!(v0.members.len(), 3);
    assert_eq!(v0.root_ident(), g.ident(awake_graphs::NodeId(1)));
    assert_eq!(v0.intra_edges(), vec![(1, 2), (2, 3)]); // idents 1-2, 2-3

    // border edge 3-4 (idents) seen from cluster 10 with neighbor label 20
    let border: Vec<_> = v0.members.values().flat_map(|m| m.border.iter()).collect();
    assert_eq!(border.len(), 1);
    assert_eq!(border[0].1, 20);
    assert_eq!(border[0].3, 4 * 100); // neighbor payload travels in hellos

    // all members of a cluster compute identical views (replica property)
    let v2 = views[2].as_ref().unwrap();
    assert_eq!(v0.members, v2.members);
}

#[test]
fn gather_singleton_cluster_is_one_awake_round() {
    let g = generators::star(5);
    let cl = Clustering::singletons(&g);
    let programs: Vec<ClusterGather<u64>> = g
        .nodes()
        .map(|v| {
            let a = cl.assign[v.index()].unwrap();
            ClusterGather::participant(a.label, a.depth, g.ident(v), 0, g.n() as u32)
        })
        .collect();
    let run = Engine::new(&g, Config::default()).run(programs).unwrap();
    // singleton roots finish at the hello round
    assert_eq!(run.metrics.max_awake(), 1);
    for v in g.nodes() {
        let view = run.outputs[v.index()].as_ref().unwrap();
        assert_eq!(view.members.len(), 1);
        assert_eq!(view.h_degree(), g.degree(v));
    }
}

#[test]
fn gather_bystanders_never_wake() {
    let g = generators::path(4);
    let cl = Clustering {
        assign: vec![
            Some(Assign { label: 1, depth: 0 }),
            Some(Assign { label: 1, depth: 1 }),
            None,
            None,
        ],
    };
    let programs: Vec<ClusterGather<u64>> = g
        .nodes()
        .map(|v| match cl.assign[v.index()] {
            Some(a) => ClusterGather::participant(a.label, a.depth, g.ident(v), 0, 4),
            None => ClusterGather::bystander(),
        })
        .collect();
    let run = Engine::new(&g, Config::default()).run(programs).unwrap();
    assert_eq!(run.metrics.awake[2], 0);
    assert_eq!(run.metrics.awake[3], 0);
    assert!(run.outputs[2].is_none());
    assert!(run.outputs[3].is_none());
}

/// A tiny virtual program: every vertex floods the maximum label it has
/// heard for `t` virtual rounds, then outputs it. Exercises exchange,
/// convergecast, broadcast, and replica determinism.
#[derive(Debug)]
struct VFlood {
    label: u64,
    best: u64,
    t: Round,
}

impl VirtualProgram for VFlood {
    type Msg = u64;
    type Output = u64;
    type Payload = ();

    fn send(&mut self, _vround: Round, out: &mut Vec<VOutgoing<u64>>) {
        out.push(VOutgoing::Broadcast(self.best));
    }

    fn receive(&mut self, vround: Round, inbox: &[VEnvelope<u64>]) -> Action {
        for e in inbox {
            assert_ne!(e.from, self.label, "no self-messages on H");
            self.best = self.best.max(e.msg);
        }
        if vround >= self.t {
            Action::Halt
        } else {
            Action::Stay
        }
    }

    fn output(&self) -> Option<u64> {
        Some(self.best)
    }
}

fn run_vflood(g: &Graph, cl: &Clustering, t: Round) -> (Vec<Option<u64>>, awake_sleeping::Metrics) {
    let db = g.n() as u32;
    let factory = move |vi: &VertexInput<()>| VFlood {
        label: vi.label,
        best: vi.label,
        t,
    };
    let programs: Vec<VirtSim<VFlood, _>> = g
        .nodes()
        .map(|v| match cl.assign[v.index()] {
            Some(a) => VirtSim::participant(a.label, a.depth, g.ident(v), (), db, factory),
            None => VirtSim::bystander(factory),
        })
        .collect();
    let run = Engine::new(g, Config::default()).run(programs).unwrap();
    (run.outputs, run.metrics)
}

#[test]
fn virtual_flood_spreads_across_h() {
    // Two clusters on a path: H is a single edge; after 1 round both
    // vertices know the max label.
    let g = generators::path(6);
    let cl = Clustering {
        assign: vec![
            Some(Assign { label: 3, depth: 2 }),
            Some(Assign { label: 3, depth: 1 }),
            Some(Assign { label: 3, depth: 0 }),
            Some(Assign { label: 9, depth: 0 }),
            Some(Assign { label: 9, depth: 1 }),
            Some(Assign { label: 9, depth: 2 }),
        ],
    };
    cl.validate_uniquely_labeled(&g).unwrap();
    let (out, metrics) = run_vflood(&g, &cl, 2);
    assert!(out.iter().all(|o| *o == Some(9)));
    // Lemma 7 overhead: gather (≤5) + t awake vrounds × ≤5 each.
    assert!(metrics.max_awake() <= 5 + 2 * 5);
}

#[test]
fn virtual_flood_diameter_of_h() {
    // A cycle of 9 nodes in 3 clusters: H = triangle; flood needs 1 round.
    let g = generators::cycle(9);
    let cl = Clustering {
        assign: (0..9u32)
            .map(|v| {
                Some(Assign {
                    label: (v / 3) as u64 + 1,
                    depth: v % 3, // path-shaped cluster: depths 0,1,2
                })
            })
            .collect(),
    };
    cl.validate_uniquely_labeled(&g).unwrap();
    let (out, _) = run_vflood(&g, &cl, 2);
    assert!(out.iter().all(|o| *o == Some(3)));
}

#[test]
fn virtual_program_can_sleep_on_h() {
    /// Vertex flips between sleeping and awake: awake at vrounds 1, 4, 5.
    #[derive(Debug)]
    struct Sleeper {
        seen: Vec<Round>,
    }
    impl VirtualProgram for Sleeper {
        type Msg = ();
        type Output = Vec<Round>;
        type Payload = ();
        fn send(&mut self, _v: Round, _out: &mut Vec<VOutgoing<()>>) {}
        fn receive(&mut self, vround: Round, _inbox: &[VEnvelope<()>]) -> Action {
            self.seen.push(vround);
            match vround {
                1 => Action::SleepUntil(4),
                4 => Action::Stay,
                _ => Action::Halt,
            }
        }
        fn output(&self) -> Option<Vec<Round>> {
            Some(self.seen.clone())
        }
    }
    let g = generators::path(4);
    let cl = Clustering::singletons(&g);
    let factory = |_: &VertexInput<()>| Sleeper { seen: vec![] };
    let programs: Vec<VirtSim<Sleeper, _>> = g
        .nodes()
        .map(|v| {
            let a = cl.assign[v.index()].unwrap();
            VirtSim::participant(a.label, a.depth, g.ident(v), (), 4, factory)
        })
        .collect();
    let run = Engine::new(&g, Config::default()).run(programs).unwrap();
    for o in run.outputs {
        assert_eq!(o.unwrap(), vec![1, 4, 5]);
    }
}

#[test]
fn messages_to_sleeping_vertices_are_lost_on_h() {
    /// Vertex 1 (label 1) broadcasts at every vround; vertex 2 sleeps
    /// through vround 2 and must miss that message.
    #[derive(Debug)]
    struct Talker {
        label: u64,
        heard: Vec<(Round, u64)>,
    }
    impl VirtualProgram for Talker {
        type Msg = u64;
        type Output = Vec<(Round, u64)>;
        type Payload = ();
        fn send(&mut self, vround: Round, out: &mut Vec<VOutgoing<u64>>) {
            if self.label == 1 {
                out.push(VOutgoing::Broadcast(vround * 10));
            }
        }
        fn receive(&mut self, vround: Round, inbox: &[VEnvelope<u64>]) -> Action {
            for e in inbox {
                self.heard.push((vround, e.msg));
            }
            if self.label == 1 {
                if vround < 3 {
                    Action::Stay
                } else {
                    Action::Halt
                }
            } else if vround == 1 {
                Action::SleepUntil(3)
            } else {
                Action::Halt
            }
        }
        fn output(&self) -> Option<Vec<(Round, u64)>> {
            Some(self.heard.clone())
        }
    }
    let g = generators::path(2);
    let cl = Clustering::singletons(&g);
    let factory = |vi: &VertexInput<()>| Talker {
        label: vi.label,
        heard: vec![],
    };
    let programs: Vec<VirtSim<Talker, _>> = g
        .nodes()
        .map(|v| {
            let a = cl.assign[v.index()].unwrap();
            VirtSim::participant(a.label, a.depth, g.ident(v), (), 2, factory)
        })
        .collect();
    let run = Engine::new(&g, Config::default()).run(programs).unwrap();
    // vertex 2 hears vrounds 1 and 3 but NOT 2 (it was asleep on H).
    assert_eq!(run.outputs[1].as_ref().unwrap(), &vec![(1, 10), (3, 30)]);
}
