//! Lemma 11 (Barenboim–Maimon): solving any O-LOCAL problem on a graph
//! with a given proper `k`-coloring, with awake complexity `O(log k)` and
//! round complexity `O(k)`.
//!
//! The orientation `µ` points every edge from the higher color to the
//! lower. A node of color `c` is awake exactly at the rounds of the
//! Lemma 10 wake set `r(c)` (shifted by one so the model's mandatory
//! round 1 stays separate):
//!
//! * at rounds `x ∈ r(c)` with `x < φ(c)` it **stores** the states sent by
//!   lower-colored neighbors that are awake at `x`;
//! * at `x = φ(c)` it **decides** its output — Lemma 10's property 3
//!   guarantees every out-neighbor's state has arrived by then;
//! * at rounds `x > φ(c)` it **sends** its state.
//!
//! Awake complexity: exactly `2 + log₂ q` where `q` is the covering power
//! of two of `k` (one mandatory initial round + the `1 + log₂ q` rounds of
//! `r(c)`) — asserted by tests and experiment E7.

use crate::lemma10::PaletteTree;
use awake_olocal::{GreedyView, OLocalProblem};
use awake_sleeping::{
    Action, CheckpointError, Codec, Envelope, Outbox, Persist, Program, Reader, Round, View, Writer,
};
use std::collections::BTreeMap;

/// The state a node shares once decided.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState<O> {
    /// The sender's identifier.
    pub ident: u64,
    /// The sender's color (receivers sanity-check `color < theirs`).
    pub color: u64,
    /// The decided output.
    pub output: O,
    /// Accumulated descendant closure, for problems that need it.
    pub closure: BTreeMap<u64, O>,
}

/// The Lemma 11 program for one node.
pub struct ColorScheduled<P: OLocalProblem> {
    problem: P,
    input: P::Input,
    color: u64,
    tree: PaletteTree,
    /// Wake rounds (real rounds: `1 + r(c)` elements), ascending.
    wakes: Vec<Round>,
    /// Index of the next wake.
    cursor: usize,
    /// Collected out-neighbor states.
    collected: Vec<NodeState<P::Output>>,
    /// Our decided output.
    decided: Option<P::Output>,
    /// Our accumulated closure (only populated when the problem needs it).
    closure: BTreeMap<u64, P::Output>,
}

impl<P: OLocalProblem> ColorScheduled<P> {
    /// Program for a node with proper color `color ∈ 1..=k`.
    ///
    /// # Panics
    /// Panics if `color` is out of range.
    pub fn new(problem: P, input: P::Input, color: u64, k: u64) -> Self {
        assert!((1..=k).contains(&color), "color {color} out of 1..={k}");
        let tree = PaletteTree::covering(k);
        let wakes: Vec<Round> = tree.r(color).into_iter().map(|x| 1 + x).collect();
        ColorScheduled {
            problem,
            input,
            color,
            tree,
            wakes,
            cursor: 0,
            collected: Vec::new(),
            decided: None,
            closure: BTreeMap::new(),
        }
    }

    /// The decision round of this node (`1 + φ(c)`).
    fn phi_round(&self) -> Round {
        1 + self.tree.phi(self.color)
    }

    /// Exact awake complexity of this node: `1 + |r(c)|`.
    pub fn awake_budget(&self) -> u64 {
        1 + self.tree.path_len()
    }

    fn decide(&mut self, view: &View<'_>) {
        let out_neighbors: Vec<(u64, P::Output)> = self
            .collected
            .iter()
            .map(|s| (s.ident, s.output.clone()))
            .collect();
        if self.problem.needs_full_closure() {
            for s in &self.collected {
                self.closure.insert(s.ident, s.output.clone());
                for (k, v) in &s.closure {
                    self.closure.insert(*k, v.clone());
                }
            }
        } else {
            self.closure = out_neighbors.iter().cloned().collect();
        }
        let gv = GreedyView {
            ident: view.ident,
            degree: view.degree(),
            input: &self.input,
            out_neighbors: &out_neighbors,
            closure_outputs: &self.closure,
        };
        let out = self.problem.decide(&gv);
        if self.problem.needs_full_closure() {
            self.closure.insert(view.ident, out.clone());
        }
        self.decided = Some(out);
    }

    fn state(&self, view: &View<'_>) -> NodeState<P::Output> {
        NodeState {
            ident: view.ident,
            color: self.color,
            output: self.decided.clone().expect("decided before sending"),
            closure: if self.problem.needs_full_closure() {
                self.closure.clone()
            } else {
                BTreeMap::new()
            },
        }
    }
}

impl<P: OLocalProblem> Program for ColorScheduled<P> {
    type Msg = NodeState<P::Output>;
    type Output = P::Output;

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        // Send rounds: elements of r(c) strictly above φ(c).
        if view.round > 1 && view.round > self.phi_round() {
            out.broadcast(self.state(view));
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        if view.round > 1 {
            // Store states from lower-colored neighbors (our out-neighbors).
            for e in inbox {
                if e.msg.color < self.color
                    && !self.collected.iter().any(|s| s.ident == e.msg.ident)
                {
                    self.collected.push(e.msg.clone());
                }
            }
            if view.round == self.phi_round() {
                self.decide(view);
            }
        }
        // Advance to the next scheduled wake.
        while self.cursor < self.wakes.len() && self.wakes[self.cursor] <= view.round {
            self.cursor += 1;
        }
        match self.wakes.get(self.cursor) {
            Some(&r) => Action::SleepUntil(r),
            None => Action::Halt,
        }
    }

    fn output(&self) -> Option<P::Output> {
        self.decided.clone()
    }

    fn span(&self) -> &'static str {
        "lemma11"
    }
}

impl<O: Codec> Codec for NodeState<O> {
    fn encode(&self, w: &mut Writer) {
        self.ident.encode(w);
        self.color.encode(w);
        self.output.encode(w);
        self.closure.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(NodeState {
            ident: r.get()?,
            color: r.get()?,
            output: r.get()?,
            closure: r.get()?,
        })
    }
}

/// Dynamic state: the schedule cursor, the collected out-neighbor states,
/// the decision, and the closure. The palette tree and the wake schedule
/// are pure functions of `(color, k)` and stay put.
impl<P: OLocalProblem> Persist for ColorScheduled<P>
where
    P::Output: Codec,
{
    fn save(&self, w: &mut Writer) {
        self.cursor.encode(w);
        self.collected.encode(w);
        self.decided.encode(w);
        self.closure.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.cursor = r.get()?;
        self.collected = r.get()?;
        self.decided = r.get()?;
        self.closure = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::{coloring, generators, AcyclicOrientation, Graph, NodeId};
    use awake_olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover};
    use awake_sleeping::{Config, Engine};

    fn greedy_coloring(g: &Graph) -> Vec<u64> {
        // any proper coloring, 1-based
        let order: Vec<NodeId> = g.nodes().collect();
        coloring::greedy_in_order(g, &order)
            .into_iter()
            .map(|c| c + 1)
            .collect()
    }

    fn run_lemma11<P: OLocalProblem + Clone>(
        g: &Graph,
        p: P,
        colors: &[u64],
        k: u64,
    ) -> (Vec<P::Output>, awake_sleeping::Metrics) {
        let inputs = p.trivial_inputs(g);
        let programs: Vec<ColorScheduled<P>> = g
            .nodes()
            .map(|v| {
                ColorScheduled::new(p.clone(), inputs[v.index()].clone(), colors[v.index()], k)
            })
            .collect();
        let run = Engine::new(g, Config::default()).run(programs).unwrap();
        (run.outputs, run.metrics)
    }

    #[test]
    fn solves_coloring_mis_vc_on_families() {
        for g in [
            generators::gnp(60, 0.1, 2),
            generators::cycle(17),
            generators::complete(8),
            generators::grid(6, 7),
            generators::random_tree(40, 5),
        ] {
            let colors = greedy_coloring(&g);
            let k = *colors.iter().max().unwrap();

            let (out, m) = run_lemma11(&g, DeltaPlusOneColoring, &colors, k);
            DeltaPlusOneColoring
                .validate(&g, &vec![(); g.n()], &out)
                .unwrap();
            let q = PaletteTree::covering(k);
            assert!(
                m.max_awake() <= 2 + q.q().trailing_zeros() as u64,
                "awake {} vs bound {}",
                m.max_awake(),
                2 + q.q().trailing_zeros() as u64
            );
            assert!(m.rounds <= 2 * q.q());

            let (mis, _) = run_lemma11(&g, MaximalIndependentSet, &colors, k);
            MaximalIndependentSet
                .validate(&g, &vec![(); g.n()], &mis)
                .unwrap();

            let (vc, _) = run_lemma11(&g, MinimalVertexCover, &colors, k);
            MinimalVertexCover
                .validate(&g, &vec![(); g.n()], &vc)
                .unwrap();
        }
    }

    #[test]
    fn agrees_with_sequential_greedy_on_color_orientation() {
        // With the same orientation (higher color → lower color, ties by
        // ident — but a proper coloring has no ties), the distributed and
        // sequential algorithms produce the *same* outputs.
        let g = generators::gnp(40, 0.2, 9);
        let colors = greedy_coloring(&g);
        let k = *colors.iter().max().unwrap();
        let (out, _) = run_lemma11(&g, DeltaPlusOneColoring, &colors, k);
        let mu = AcyclicOrientation::by_coloring(&g, &colors);
        let seq = awake_olocal::greedy::solve_sequentially(
            &DeltaPlusOneColoring,
            &g,
            &mu,
            &vec![(); g.n()],
        );
        assert_eq!(out, seq);
    }

    #[test]
    fn awake_is_exactly_one_plus_path_len() {
        let g = generators::cycle(24);
        let colors = greedy_coloring(&g); // colors in 1..=3
        let k = 3;
        let programs: Vec<ColorScheduled<DeltaPlusOneColoring>> = g
            .nodes()
            .map(|v| ColorScheduled::new(DeltaPlusOneColoring, (), colors[v.index()], k))
            .collect();
        let budget = programs[0].awake_budget();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        // every node is awake exactly 1 + |r(c)| rounds
        assert!(run.metrics.awake.iter().all(|&a| a == budget));
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn rejects_color_out_of_range() {
        let _ = ColorScheduled::new(DeltaPlusOneColoring, (), 9, 4);
    }
}
