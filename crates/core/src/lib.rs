//! The paper's algorithms, lemma by lemma and theorem by theorem.
//!
//! This crate implements **"Solving Sequential Greedy Problems Distributedly
//! with Sub-Logarithmic Energy Cost"** (Balliu–Fraigniaud–Olivetti–Rabie,
//! PODC 2025) on top of the Sleeping-model simulator:
//!
//! | module | paper element |
//! |---|---|
//! | [`params`] | §5 parameter choices (`b`, iteration count, `a·b²`, stage budgets) |
//! | [`lemma6`] | broadcast/convergecast with awake complexity exactly 3 |
//! | [`lemma10`] | the binary-tree palette mapping `φ`, `r` (Figure 1) |
//! | [`linial`] | Linial's color-reduction subroutine \[Lin92\] |
//! | [`lemma11`] | solving any O-LOCAL problem from a proper `k`-coloring, awake `O(log k)` |
//! | [`bm21`] | the Barenboim–Maimon baseline: awake `O(log Δ + log* n)` |
//! | [`trivial`] | the folklore by-identifier baseline: awake `O(Δ)` |
//! | [`clustering`] | BFS-clusterings (Definitions 2–5), validators, virtual graphs |
//! | [`gather`] | depth-synchronized intra-cluster convergecast+broadcast |
//! | [`virt`] | Lemma 7: simulating an algorithm on the virtual graph `H` over `G` |
//! | [`linegraph`] | edge problems via line-graph virtualization (Lemma 7 replicas on 2-member edge clusters) |
//! | [`lemma15`] | one decomposition phase (Figure 4) |
//! | [`lemma14`] | flattening a two-level clustering (Figure 2) |
//! | [`theorem13`] | the full colored-BFS-clustering pipeline (Figure 3) |
//! | [`theorem9`] | solving O-LOCAL given a colored BFS-clustering, awake `O(log c)` |
//! | [`theorem1`] | the end-to-end result: awake `O(√log n · log* n)` |
//! | [`bounds`] | closed-form awake/round budgets asserted by tests and benches |
//! | [`compose`] | Lemma 8: sequential composition with additive accounting |
//! | [`resilient`] | the crash-recovery contract: fault-tolerant stage execution |
//!
//! # Quick start
//!
//! ```
//! use awake_graphs::generators;
//! use awake_olocal::problems::DeltaPlusOneColoring;
//! use awake_core::theorem1;
//!
//! let g = generators::gnp(64, 0.3, 1);
//! let result = theorem1::solve(&g, &DeltaPlusOneColoring, Default::default()).unwrap();
//! awake_graphs::coloring::check_proper(&g, &result.outputs).unwrap();
//! println!("awake complexity: {}", result.composition.max_awake());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bm21;
pub mod bounds;
pub mod clustering;
pub mod compose;
pub mod gather;
pub mod lemma10;
pub mod lemma11;
pub mod lemma14;
pub mod lemma15;
pub mod lemma6;
pub mod linegraph;
pub mod linial;
pub mod params;
pub mod resilient;
pub mod theorem1;
pub mod theorem13;
pub mod theorem9;
pub mod trivial;
pub mod virt;
#[cfg(test)]
mod virt_tests;
