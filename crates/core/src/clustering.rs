//! BFS-clusterings — Definitions 2–5 of the paper — with strict validators,
//! virtual-graph extraction, and a synthetic generator for experiments.
//!
//! * A **uniquely-labeled BFS-clustering** assigns `(ℓ(v), δ(v))` such that
//!   each label class is connected, has exactly one node of depth 0 (the
//!   root), and `δ` is the exact distance to the root *within the cluster's
//!   induced subgraph*.
//! * A **colored BFS-clustering** assigns `(γ(v), δ(v))` such that every
//!   connected component of each color class satisfies the same root/depth
//!   condition — distinct clusters may share a color iff they are not
//!   adjacent (which is automatic for components of a color class).
//!
//! Nodes may be unassigned (`None`): the clustering then covers an induced
//! subgraph, as in the intermediate stages of Theorem 13.

use awake_graphs::{ops, traversal, Graph, NodeId};
use std::collections::BTreeMap;

/// One node's cluster assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assign {
    /// Cluster label (uniquely-labeled) or color (colored).
    pub label: u64,
    /// BFS depth within the cluster.
    pub depth: u32,
}

/// A (partial) BFS-clustering; interpretation (uniquely-labeled vs colored)
/// is chosen by which validator you call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Per-node assignment (`None` = outside the clustered subgraph).
    pub assign: Vec<Option<Assign>>,
}

/// Why a clustering failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteringError(pub String);

impl std::fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid clustering: {}", self.0)
    }
}

impl std::error::Error for ClusteringError {}

impl Clustering {
    /// The trivial uniquely-labeled clustering: every node is its own
    /// cluster, labeled by its identifier (Theorem 13's starting point).
    pub fn singletons(g: &Graph) -> Clustering {
        Clustering {
            assign: g
                .nodes()
                .map(|v| {
                    Some(Assign {
                        label: g.ident(v),
                        depth: 0,
                    })
                })
                .collect(),
        }
    }

    /// An empty (all-`None`) clustering on `n` nodes.
    pub fn empty(n: usize) -> Clustering {
        Clustering {
            assign: vec![None; n],
        }
    }

    /// Number of assigned nodes.
    pub fn assigned(&self) -> usize {
        self.assign.iter().flatten().count()
    }

    /// Distinct labels in use, sorted.
    pub fn labels(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self.assign.iter().flatten().map(|a| a.label).collect();
        l.sort_unstable();
        l.dedup();
        l
    }

    /// Largest label (`max_v γ(v)`, the `c` of Theorem 9). 0 if empty.
    pub fn max_label(&self) -> u64 {
        self.assign
            .iter()
            .flatten()
            .map(|a| a.label)
            .max()
            .unwrap_or(0)
    }

    /// Members of each label class, keyed by label.
    pub fn members_by_label(&self) -> BTreeMap<u64, Vec<NodeId>> {
        let mut out: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        for (i, a) in self.assign.iter().enumerate() {
            if let Some(a) = a {
                out.entry(a.label).or_default().push(NodeId(i as u32));
            }
        }
        out
    }

    /// Number of clusters when read as a *colored* clustering (components
    /// of color classes).
    pub fn cluster_count(&self, g: &Graph) -> usize {
        self.members_by_label()
            .values()
            .map(|m| split_components(g, m).len())
            .sum()
    }

    /// Validate as a **uniquely-labeled** BFS-clustering (Definition 2).
    ///
    /// # Errors
    /// Describes the first violated condition.
    pub fn validate_uniquely_labeled(&self, g: &Graph) -> Result<(), ClusteringError> {
        self.expect_len(g)?;
        for (label, members) in self.members_by_label() {
            let comps = split_components(g, &members);
            if comps.len() != 1 {
                return Err(ClusteringError(format!(
                    "label {label} induces {} components (must be connected)",
                    comps.len()
                )));
            }
            self.check_component_is_bfs(g, label, &members)?;
        }
        Ok(())
    }

    /// Validate as a **colored** BFS-clustering (Definition 4): every
    /// connected component of every color class is a BFS cluster.
    ///
    /// # Errors
    /// Describes the first violated condition.
    pub fn validate_colored(&self, g: &Graph) -> Result<(), ClusteringError> {
        self.expect_len(g)?;
        for (label, members) in self.members_by_label() {
            for comp in split_components(g, &members) {
                self.check_component_is_bfs(g, label, &comp)?;
            }
        }
        Ok(())
    }

    fn expect_len(&self, g: &Graph) -> Result<(), ClusteringError> {
        if self.assign.len() != g.n() {
            return Err(ClusteringError(format!(
                "assignment length {} != n = {}",
                self.assign.len(),
                g.n()
            )));
        }
        Ok(())
    }

    /// Check that the connected member set `members` has a unique depth-0
    /// root and exact BFS depths within the induced subgraph.
    fn check_component_is_bfs(
        &self,
        g: &Graph,
        label: u64,
        members: &[NodeId],
    ) -> Result<(), ClusteringError> {
        let roots: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|v| self.assign[v.index()].expect("member").depth == 0)
            .collect();
        if roots.len() != 1 {
            return Err(ClusteringError(format!(
                "label {label} cluster has {} roots (need exactly 1)",
                roots.len()
            )));
        }
        let in_cluster = |v: NodeId| members.binary_search(&v).is_ok();
        let dist = traversal::bfs_distances_within(g, roots[0], in_cluster);
        for &v in members {
            let want = dist[v.index()].ok_or_else(|| {
                ClusteringError(format!("label {label}: {v} unreachable from root"))
            })?;
            let got = self.assign[v.index()].expect("member").depth;
            if got != want {
                return Err(ClusteringError(format!(
                    "label {label}: {v} has depth {got}, BFS distance is {want}"
                )));
            }
        }
        Ok(())
    }

    /// The virtual graph `H` of a uniquely-labeled clustering
    /// (Definition 3): one vertex per label, adjacency = any cross edge.
    pub fn virtual_graph(&self, g: &Graph) -> ops::Quotient {
        ops::quotient(g, |v| self.assign[v.index()].map(|a| a.label))
    }

    /// Interpret a colored clustering's components as a uniquely-labeled
    /// clustering by relabeling each component with its root's identifier
    /// (the overlay Theorem 9 builds by broadcasting root IDs).
    pub fn root_ident_overlay(&self, g: &Graph) -> Clustering {
        let mut out = Clustering::empty(g.n());
        for (_, members) in self.members_by_label() {
            for comp in split_components(g, &members) {
                let root = comp
                    .iter()
                    .copied()
                    .find(|v| self.assign[v.index()].expect("member").depth == 0)
                    .expect("validated clustering has a root per component");
                for v in comp {
                    out.assign[v.index()] = Some(Assign {
                        label: g.ident(root),
                        depth: self.assign[v.index()].expect("member").depth,
                    });
                }
            }
        }
        out
    }
}

/// Split `members` (sorted) into connected components of the induced
/// subgraph; each component is returned sorted.
pub fn split_components(g: &Graph, members: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut member_set = vec![false; g.n()];
    for &v in members {
        member_set[v.index()] = true;
    }
    let mut seen = vec![false; g.n()];
    let mut comps = Vec::new();
    for &s in members {
        if seen[s.index()] {
            continue;
        }
        let mut comp = vec![];
        let mut queue = std::collections::VecDeque::from([s]);
        seen[s.index()] = true;
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for &w in g.neighbors(v) {
                if member_set[w.index()] && !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Synthesize a valid colored BFS-clustering with exactly `clusters`
/// clusters (plus extras on disconnected graphs): Voronoi cells of random
/// seeds (connected, exact BFS depths), then a greedy proper coloring of
/// the cluster graph. Used by experiment E4 to sweep the color count `c`
/// of Theorem 9.
///
/// # Panics
/// Panics on an empty graph.
pub fn synthesize(g: &Graph, clusters: usize, seed: u64) -> Clustering {
    assert!(g.n() > 0, "need a non-empty graph");
    let clusters = clusters.clamp(1, g.n());
    let mut rng = awake_graphs::rng::Rng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    rng.shuffle(&mut nodes);
    let mut seeds: Vec<NodeId> = nodes.into_iter().take(clusters).collect();

    // Voronoi assignment by (distance, seed index): connected cells.
    let mut cell: Vec<Option<(u32, usize)>> = vec![None; g.n()];
    let assign_from = |cell: &mut Vec<Option<(u32, usize)>>, s: NodeId, si: usize| {
        let dist = traversal::bfs_distances(g, s);
        for v in g.nodes() {
            if let Some(d) = dist[v.index()] {
                let key = (d, si);
                if cell[v.index()].is_none_or(|k| key < k) {
                    cell[v.index()] = Some(key);
                }
            }
        }
    };
    for (si, &s) in seeds.iter().enumerate() {
        assign_from(&mut cell, s, si);
    }
    // Unreached nodes (disconnected graph): seed their components too.
    for v in g.nodes() {
        if cell[v.index()].is_none() {
            let si = seeds.len();
            seeds.push(v);
            assign_from(&mut cell, v, si);
        }
    }

    // Color the cluster graph greedily with colors 1, 2, ….
    let cluster_of = |v: NodeId| cell[v.index()].expect("assigned").1;
    let k = seeds.len();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); k];
    for (u, v) in g.edges() {
        let (cu, cv) = (cluster_of(u), cluster_of(v));
        if cu != cv {
            adj[cu].insert(cv);
            adj[cv].insert(cu);
        }
    }
    let mut color: Vec<u64> = vec![0; k];
    for c in 0..k {
        let used: std::collections::BTreeSet<u64> = adj[c]
            .iter()
            .filter_map(|&d| (color[d] != 0).then_some(color[d]))
            .collect();
        color[c] = (1..).find(|x| !used.contains(x)).expect("free color");
    }

    // Depths: BFS distance to the seed *within the cell*.
    let mut out = Clustering::empty(g.n());
    for (ci, &s) in seeds.iter().enumerate() {
        let dist = traversal::bfs_distances_within(g, s, |v| cluster_of(v) == ci);
        for v in g.nodes() {
            if cluster_of(v) == ci {
                out.assign[v.index()] = Some(Assign {
                    label: color[ci],
                    depth: dist[v.index()].expect("Voronoi cells are connected"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::generators;

    #[test]
    fn singletons_are_valid_both_ways() {
        let g = generators::gnp(30, 0.2, 1);
        let c = Clustering::singletons(&g);
        c.validate_uniquely_labeled(&g).unwrap();
        c.validate_colored(&g).unwrap();
        assert_eq!(c.assigned(), 30);
        assert_eq!(c.labels().len(), 30);
    }

    #[test]
    fn hand_built_two_cluster_path() {
        // path 0-1-2-3: clusters {0,1} rooted at 0, {2,3} rooted at 3.
        let g = generators::path(4);
        let c = Clustering {
            assign: vec![
                Some(Assign { label: 7, depth: 0 }),
                Some(Assign { label: 7, depth: 1 }),
                Some(Assign { label: 9, depth: 1 }),
                Some(Assign { label: 9, depth: 0 }),
            ],
        };
        c.validate_uniquely_labeled(&g).unwrap();
        let q = c.virtual_graph(&g);
        assert_eq!(q.graph.n(), 2);
        assert_eq!(q.graph.m(), 1);
        assert_eq!(c.cluster_count(&g), 2);
    }

    #[test]
    fn detects_disconnected_label() {
        let g = generators::path(3);
        let c = Clustering {
            assign: vec![
                Some(Assign { label: 1, depth: 0 }),
                Some(Assign { label: 2, depth: 0 }),
                Some(Assign { label: 1, depth: 0 }), // label 1 not connected
            ],
        };
        let err = c.validate_uniquely_labeled(&g).unwrap_err();
        assert!(err.0.contains("components"));
        // but as a *colored* clustering this is fine: two non-adjacent
        // singleton clusters of color 1.
        c.validate_colored(&g).unwrap();
        assert_eq!(c.cluster_count(&g), 3);
    }

    #[test]
    fn adjacent_same_color_must_be_one_bfs_cluster() {
        // path 0-1: both color 1, both depth 0 => one component with two
        // roots => invalid even as colored.
        let g = generators::path(2);
        let c = Clustering {
            assign: vec![
                Some(Assign { label: 1, depth: 0 }),
                Some(Assign { label: 1, depth: 0 }),
            ],
        };
        assert!(c.validate_colored(&g).unwrap_err().0.contains("roots"));
    }

    #[test]
    fn detects_bad_depths() {
        let g = generators::path(2);
        let bad_depth = Clustering {
            assign: vec![
                Some(Assign { label: 1, depth: 0 }),
                Some(Assign { label: 1, depth: 2 }),
            ],
        };
        assert!(bad_depth
            .validate_uniquely_labeled(&g)
            .unwrap_err()
            .0
            .contains("depth"));
    }

    #[test]
    fn depth_must_be_distance_within_cluster_not_graph() {
        let g = generators::cycle(4);
        // cluster {0,1,3} rooted at 0: distances via in-cluster paths.
        let ok = Clustering {
            assign: vec![
                Some(Assign { label: 5, depth: 0 }),
                Some(Assign { label: 5, depth: 1 }),
                None,
                Some(Assign { label: 5, depth: 1 }),
            ],
        };
        ok.validate_uniquely_labeled(&g).unwrap();
        // the whole cycle rooted at 0: node 2 must have depth 2.
        let whole = Clustering {
            assign: vec![
                Some(Assign { label: 5, depth: 0 }),
                Some(Assign { label: 5, depth: 1 }),
                Some(Assign { label: 5, depth: 1 }), // wrong
                Some(Assign { label: 5, depth: 1 }),
            ],
        };
        assert!(whole.validate_uniquely_labeled(&g).is_err());
    }

    #[test]
    fn root_ident_overlay_uniquifies() {
        let g = generators::path(5);
        let c = Clustering {
            assign: vec![
                Some(Assign { label: 1, depth: 0 }),
                Some(Assign { label: 1, depth: 1 }),
                Some(Assign { label: 2, depth: 0 }),
                Some(Assign { label: 1, depth: 1 }),
                Some(Assign { label: 1, depth: 0 }),
            ],
        };
        c.validate_colored(&g).unwrap();
        let u = c.root_ident_overlay(&g);
        u.validate_uniquely_labeled(&g).unwrap();
        assert_eq!(u.assign[0].unwrap().label, g.ident(NodeId(0)));
        assert_eq!(u.assign[3].unwrap().label, g.ident(NodeId(4)));
        assert_eq!(u.labels().len(), 3);
    }

    #[test]
    fn synthesize_is_valid_and_controls_cluster_count() {
        for (g, k) in [
            (generators::grid(8, 8), 6),
            (generators::gnp(70, 0.1, 3), 10),
            (generators::random_tree(50, 1), 4),
        ] {
            let c = synthesize(&g, k, 42);
            c.validate_colored(&g).unwrap();
            assert_eq!(c.assigned(), g.n());
            assert_eq!(c.cluster_count(&g), k);
        }
    }

    #[test]
    fn synthesize_handles_disconnected_graphs() {
        let g = ops::disjoint_union(&generators::path(5), &generators::cycle(5));
        let c = synthesize(&g, 3, 7);
        c.validate_colored(&g).unwrap();
        assert_eq!(c.assigned(), 10);
    }

    #[test]
    fn synthesize_extremes() {
        let g = generators::grid(5, 5);
        let one = synthesize(&g, 1, 0);
        one.validate_colored(&g).unwrap();
        assert_eq!(one.cluster_count(&g), 1);
        let all = synthesize(&g, 25, 0);
        all.validate_colored(&g).unwrap();
        assert_eq!(all.cluster_count(&g), 25);
    }
}
