//! Lemma 14 (Figure 2 of the paper): flattening a two-level clustering.
//!
//! Given a uniquely-labeled BFS-clustering `(ℓ, δ)` of `G` and a
//! uniquely-labeled BFS-clustering `(ℓ', δ')` of its virtual graph `H`
//! (every node knows its own cluster's `(ℓ'(ℓ(v)), δ'(ℓ(v)))`), compute
//! `(ℓ'', δ'')` on `G` whose virtual graph is `K`: merge every group of
//! clusters sharing an `ℓ'` into one, with **exact** BFS depths.
//!
//! Realization: a [`VirtualProgram`] on `H` (run through the Lemma 7
//! simulator). Each vertex selects its parent cluster `p'` (a neighbor
//! with the same `ℓ'` and `δ'` one smaller), then a convergecast +
//! broadcast along the resulting cluster-tree — scheduled by `δ'` depths —
//! circulates every member cluster's structure. Every node then knows the
//! entire merged cluster and computes `δ''` locally by BFS from the merged
//! root (the depth-0 node of the `δ' = 0` cluster). Awake complexity
//! `O(1)`; round complexity `O(n²)`.

use crate::virt::{VEnvelope, VOutgoing, VertexInput, VirtualProgram};
use awake_sleeping::{Action, CheckpointError, Codec, Persist, Reader, Round, Writer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Payload each node contributes to the setup gather: its vertex's
/// `(ℓ', δ')` from the preceding Lemma 15 stage.
pub type L14Payload = (u64, u32);

/// Everything one vertex (= cluster of `G`) contributes to the merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexRec {
    /// The cluster's label `ℓ`.
    pub label: u64,
    /// The merged label `ℓ'`.
    pub l2: u64,
    /// The cluster's depth `δ'` in the merged cluster of `H`.
    pub d2: u32,
    /// Members as `(ident, depth within this cluster)`.
    pub members: Vec<(u64, u32)>,
    /// `G`-edges inside the merged cluster incident to this cluster's
    /// members (intra-cluster edges and border edges to sibling clusters),
    /// as ident pairs.
    pub edges: Vec<(u64, u64)>,
}

/// Virtual messages.
#[derive(Debug, Clone, PartialEq)]
pub enum L14Msg {
    /// Convergecast bag of vertex records.
    Up(Arc<Vec<VertexRec>>),
    /// Broadcast of the merged cluster's full record set.
    Down(Arc<Vec<VertexRec>>),
}

/// Vertex output: the merged label and exact depths for every member of
/// the merged cluster, keyed by ident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L14Out {
    /// `ℓ''` (= `ℓ'`).
    pub l2: u64,
    /// `δ''` per node ident.
    pub depths: BTreeMap<u64, u32>,
}

/// The Lemma 14 vertex program.
pub struct TreeGatherVertex {
    depth_bound: u32,
    rec: VertexRec,
    /// Parent cluster label (`None` for the `δ' = 0` root vertex).
    parent: Option<u64>,
    bag: Vec<VertexRec>,
    all: Option<Vec<VertexRec>>,
    out: Option<L14Out>,
}

impl TreeGatherVertex {
    /// Build from the gathered vertex input. `depth_bound` bounds `δ'`
    /// (the public `n`).
    pub fn new(input: &VertexInput<L14Payload>, depth_bound: u32) -> Self {
        let (l2, d2) = input
            .members
            .values()
            .next()
            .map(|m| m.payload)
            .expect("non-empty cluster");
        debug_assert!(
            input.members.values().all(|m| m.payload == (l2, d2)),
            "all members carry their vertex's (ℓ', δ')"
        );
        // Parent selection: the smallest-(member, neighbor) border edge
        // into a cluster with our ℓ' and δ' − 1. All replicas agree.
        let parent = input
            .border_edges()
            .into_iter()
            .filter(|(_, _, _, _, pl)| *pl == (l2, d2.wrapping_sub(1)))
            .map(|(_, _, nbr_label, _, _)| nbr_label)
            .next();
        assert!(
            d2 == 0 || parent.is_some(),
            "a non-root cluster has a neighbor at depth δ'−1"
        );
        // G-edges within the merged cluster seen from this cluster:
        // intra edges + border edges into clusters with the same ℓ'.
        let mut edges = input.intra_edges();
        for (mi, ni, _, _, pl) in input.border_edges() {
            if pl.0 == l2 {
                let (a, b) = if mi < ni { (mi, ni) } else { (ni, mi) };
                edges.push((a, b));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let rec = VertexRec {
            label: input.label,
            l2,
            d2,
            members: input.members.values().map(|m| (m.ident, m.depth)).collect(),
            edges,
        };
        TreeGatherVertex {
            depth_bound,
            rec: rec.clone(),
            parent: if d2 == 0 { None } else { parent },
            bag: vec![rec],
            all: None,
            out: None,
        }
    }

    fn cc_recv(&self) -> Round {
        2 + (self.depth_bound - self.rec.d2) as Round
    }
    fn cc_send(&self) -> Round {
        self.cc_recv() + 1
    }
    fn bc_base(&self) -> Round {
        self.depth_bound as Round + 5
    }
    fn bc_recv(&self) -> Round {
        self.bc_base() + self.rec.d2 as Round - 1
    }
    fn bc_send(&self) -> Round {
        self.bc_base() + self.rec.d2 as Round
    }

    fn finish(&mut self) {
        let all = self.all.as_ref().expect("records gathered");
        // Merged root: the depth-0 member of the δ' = 0 cluster.
        let root_rec = all
            .iter()
            .find(|r| r.d2 == 0)
            .expect("merged cluster has a root vertex");
        let root = root_rec
            .members
            .iter()
            .find(|&&(_, d)| d == 0)
            .map(|&(i, _)| i)
            .expect("root cluster has a depth-0 node");
        // BFS over the merged cluster's idents.
        let mut adj: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut members: Vec<u64> = Vec::new();
        for r in all {
            members.extend(r.members.iter().map(|&(i, _)| i));
            for &(a, b) in &r.edges {
                adj.entry(a).or_default().push(b);
                adj.entry(b).or_default().push(a);
            }
        }
        let mut depths: BTreeMap<u64, u32> = BTreeMap::new();
        depths.insert(root, 0);
        let mut q = std::collections::VecDeque::from([root]);
        while let Some(x) = q.pop_front() {
            let dx = depths[&x];
            for &w in adj.get(&x).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = depths.entry(w) {
                    e.insert(dx + 1);
                    q.push_back(w);
                }
            }
        }
        for &m in &members {
            assert!(
                depths.contains_key(&m),
                "merged cluster must be connected (ident {m})"
            );
        }
        self.out = Some(L14Out {
            l2: self.rec.l2,
            depths,
        });
    }
}

impl VirtualProgram for TreeGatherVertex {
    type Msg = L14Msg;
    type Output = L14Out;
    type Payload = L14Payload;

    fn send(&mut self, vround: Round, out: &mut Vec<VOutgoing<L14Msg>>) {
        if vround == self.cc_send() {
            if let Some(p) = self.parent {
                out.push(VOutgoing::ToCluster(
                    p,
                    L14Msg::Up(Arc::new(self.bag.clone())),
                ));
                return;
            }
        }
        if vround == self.bc_send() {
            if let Some(all) = &self.all {
                out.push(VOutgoing::Broadcast(L14Msg::Down(Arc::new(all.clone()))));
            }
        }
    }

    fn receive(&mut self, vround: Round, inbox: &[VEnvelope<L14Msg>]) -> Action {
        if vround == 1 {
            // Mandatory first round: schedule the convergecast.
            return Action::SleepUntil(self.cc_recv());
        }
        if vround == self.cc_recv() {
            let mut seen: std::collections::BTreeSet<u64> =
                self.bag.iter().map(|r| r.label).collect();
            for e in inbox {
                if let L14Msg::Up(recs) = &e.msg {
                    for r in recs.iter() {
                        if r.l2 == self.rec.l2 && seen.insert(r.label) {
                            self.bag.push(r.clone());
                        }
                    }
                }
            }
            if self.parent.is_none() {
                // Root vertex: complete; deliver downward.
                self.all = Some(self.bag.clone());
                self.finish();
                return Action::SleepUntil(self.bc_send());
            }
            return Action::SleepUntil(self.cc_send());
        }
        if vround == self.cc_send() {
            return Action::SleepUntil(self.bc_recv());
        }
        if vround == self.bc_recv() {
            let all = inbox.iter().find_map(|e| match &e.msg {
                L14Msg::Down(recs) if Some(e.from) == self.parent => Some(recs.as_ref().clone()),
                _ => None,
            });
            self.all = Some(all.expect("parent cluster broadcasts the merge"));
            self.finish();
            return Action::SleepUntil(self.bc_send());
        }
        if vround == self.bc_send() {
            return Action::Halt;
        }
        unreachable!("TreeGatherVertex woke at unscheduled virtual round {vround}");
    }

    fn output(&self) -> Option<L14Out> {
        self.out.clone()
    }
}

impl Codec for VertexRec {
    fn encode(&self, w: &mut Writer) {
        self.label.encode(w);
        self.l2.encode(w);
        self.d2.encode(w);
        self.members.encode(w);
        self.edges.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(VertexRec {
            label: r.get()?,
            l2: r.get()?,
            d2: r.get()?,
            members: r.get()?,
            edges: r.get()?,
        })
    }
}

impl Codec for L14Msg {
    fn encode(&self, w: &mut Writer) {
        match self {
            L14Msg::Up(v) => {
                0u8.encode(w);
                v.encode(w);
            }
            L14Msg::Down(v) => {
                1u8.encode(w);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(L14Msg::Up(r.get()?)),
            1 => Ok(L14Msg::Down(r.get()?)),
            _ => Err(CheckpointError::Corrupt("L14Msg tag")),
        }
    }
}

impl Codec for L14Out {
    fn encode(&self, w: &mut Writer) {
        self.l2.encode(w);
        self.depths.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(L14Out {
            l2: r.get()?,
            depths: r.get()?,
        })
    }
}

/// Dynamic state: the convergecast bag, the completed record set, and the
/// output. The own record and parent pointer are pure functions of the
/// gathered [`VertexInput`] and are rebuilt by the factory.
impl Persist for TreeGatherVertex {
    fn save(&self, w: &mut Writer) {
        self.bag.encode(w);
        self.all.encode(w);
        self.out.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.bag = r.get()?;
        self.all = r.get()?;
        self.out = r.get()?;
        Ok(())
    }
}

/// Virtual-round budget of the Lemma 14 stage.
pub fn lemma14_vrounds(depth_bound: u32) -> u64 {
    2 * depth_bound as u64 + 8
}
