//! Lemma 15: one decomposition phase (Figure 4 of the paper).
//!
//! Runs on the virtual graph `H` (vertices = clusters of the current
//! uniquely-labeled clustering), via the Lemma 7 simulator. Given the
//! degree threshold `b` and a distance-2 coloring (vertex labels are
//! unique, hence a valid distance-2 coloring — the paper's Remark for
//! identifiers from `{1..nˢ}`), the phase:
//!
//! 1. exchanges colors and 2-hop color tables (virtual rounds 1–3);
//! 2. computes the parent pointers `p₁` (smallest `c₁` in `N ∪ N²`), the
//!    shift `b(v)`, the recoloring `c₂ = 2·c₁(p₁) + b(v)`, and the
//!    repaired pointers `p₂ ∈ N(v)` (Claim 16: `c₂` strictly decreases
//!    toward the roots, so `p₂` forms a rooted spanning forest `F₂`);
//! 3. gathers each `F₂` tree at its root and re-broadcasts it (a Lemma 6
//!    pass with labels `c₂`), so every vertex learns its tree, its root
//!    `ℓ_aux`, and whether the root has degree ≤ `b` (the set `U`);
//! 4. exchanges cluster membership and runs a second pass carrying
//!    intra-cluster edges, so `δ_aux` is the *exact* BFS distance within
//!    the cluster (Definition 2) — a sharpening documented in DESIGN.md;
//! 5. vertices in `U` run Linial on `H[U]` (degree ≤ `b`) down to the
//!    `a·b²` palette and become singleton clusters of that color; the
//!    rest form the uniquely-labeled part, `≤ n_H/b` many clusters.

use crate::linial::{self, Step};
use crate::virt::{VEnvelope, VOutgoing, VertexInput, VirtualProgram};
use awake_sleeping::{Action, CheckpointError, Codec, Persist, Reader, Round, Writer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Phase parameters (shared by all vertices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lemma15Config {
    /// Degree threshold `b`.
    pub b: u64,
    /// Upper bound on vertex labels (the distance-2 palette `k`).
    pub label_bound: u64,
    /// The `a·b²` palette (Linial's fixpoint at degree `b`).
    pub ab2: u64,
}

impl Lemma15Config {
    /// `N₆`: bound on `c₂` labels (`c₂ ≤ 4·label_bound + 1`).
    pub fn n6(&self) -> u64 {
        4 * self.label_bound + 2
    }
    fn base1(&self) -> Round {
        4
    }
    fn base2(&self) -> Round {
        self.base1() + self.n6() + 2
    }
    fn base3(&self) -> Round {
        self.base2() + self.n6() + 2
    }
    fn base4(&self) -> Round {
        self.base3() + 1
    }
    fn base5(&self) -> Round {
        self.base4() + self.n6() + 2
    }
    /// First round of the Linial-on-`H[U]` loop.
    pub fn lin_start(&self) -> Round {
        self.base5() + self.n6() + 2
    }
    /// The Linial schedule on `H[U]`.
    pub fn lin_steps(&self) -> Vec<Step> {
        linial::schedule(self.label_bound + 1, self.b)
    }
    /// Total virtual rounds of the phase.
    pub fn vrounds(&self) -> u64 {
        self.lin_start() + self.lin_steps().len() as u64 + 1
    }
}

/// A record describing one vertex inside an `F₂` tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRec {
    /// Vertex label.
    pub label: u64,
    /// Its `c₂` color.
    pub c2: u64,
    /// Its `p₂` pointer (`None` at the root).
    pub p2: Option<u64>,
    /// Its degree in `H`.
    pub deg_h: u64,
}

/// Virtual messages of the phase.
#[derive(Debug, Clone, PartialEq)]
pub enum L15Msg {
    /// `c₁` announcement.
    Info1(u64),
    /// 2-hop table: `(neighbor label, its c₁)` pairs.
    Info2(Vec<(u64, u64)>),
    /// `(c₂, p₂)` announcement.
    Info3(u64, Option<u64>),
    /// Convergecast bag of tree records.
    TreeUp(Arc<Vec<TreeRec>>),
    /// Broadcast of the completed tree.
    TreeDown(Arc<Vec<TreeRec>>),
    /// Cluster membership announcement (`ℓ_aux`).
    Info4(u64),
    /// Convergecast bag of intra-cluster adjacency lists.
    EdgeUp(Arc<Vec<(u64, Vec<u64>)>>),
    /// Broadcast of the cluster's full adjacency.
    EdgeDown(Arc<Vec<(u64, Vec<u64>)>>),
    /// Linial-on-`H[U]` color.
    Lin(u64),
}

/// The vertex output of the phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lemma15Out {
    /// The color `γ'`: in `1..=a·b²` for `U` vertices, `ℓ_aux + a·b²`
    /// otherwise.
    pub gamma: u64,
    /// `δ'`: 0 for `U` vertices, the exact BFS depth in the cluster
    /// otherwise.
    pub delta: u32,
    /// The cluster root's label.
    pub l_aux: u64,
    /// Whether the vertex joined `U` (singleton, small colors).
    pub in_u: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Duty {
    CcRecv(u8),
    CcSend(u8),
    BcRecv(u8),
    BcSend(u8),
    Info4,
    Lin(u16),
}

/// The Lemma 15 vertex program.
pub struct Lemma15Vertex {
    cfg: Lemma15Config,
    label: u64,
    deg_h: u64,
    nbr_labels: Vec<u64>,
    c1: u64,
    nbr_c1: BTreeMap<u64, u64>,
    nbr_tables: BTreeMap<u64, Vec<(u64, u64)>>,
    p1: Option<u64>,
    shift: u64,
    c2: u64,
    p2: Option<u64>,
    p2_c2: Option<u64>,
    children: Vec<u64>,
    bag_tree: Vec<TreeRec>,
    tree: Vec<TreeRec>,
    l_aux: u64,
    in_u: bool,
    same_cluster_nbrs: Vec<u64>,
    bag_edges: Vec<(u64, Vec<u64>)>,
    edges: Vec<(u64, Vec<u64>)>,
    delta_aux: u32,
    lin_color: u64,
    lin_steps: Vec<Step>,
    agenda: std::collections::VecDeque<(Round, Duty)>,
    out: Option<Lemma15Out>,
}

impl Lemma15Vertex {
    /// Build the vertex program from the gathered cluster input.
    pub fn new(cfg: Lemma15Config, input: &VertexInput<()>) -> Self {
        let label = input.label;
        assert!(
            label <= cfg.label_bound,
            "label {label} exceeds bound {}",
            cfg.label_bound
        );
        let nbr_labels = input.neighbor_labels();
        let deg_h = nbr_labels.len() as u64;
        // c₀ = label (unique labels form a distance-2 coloring of H);
        // low-degree vertices shift their color above the threshold.
        let c0 = label;
        let c1 = if deg_h <= cfg.b {
            c0 + cfg.label_bound
        } else {
            c0
        };
        Lemma15Vertex {
            cfg,
            label,
            deg_h,
            nbr_labels,
            c1,
            nbr_c1: BTreeMap::new(),
            nbr_tables: BTreeMap::new(),
            p1: None,
            shift: 0,
            c2: 0,
            p2: None,
            p2_c2: None,
            children: Vec::new(),
            bag_tree: Vec::new(),
            tree: Vec::new(),
            l_aux: 0,
            in_u: false,
            same_cluster_nbrs: Vec::new(),
            bag_edges: Vec::new(),
            edges: Vec::new(),
            delta_aux: 0,
            lin_color: 0,
            lin_steps: cfg.lin_steps(),
            agenda: Default::default(),
            out: None,
        }
    }

    fn flip(&self, c2: u64) -> u64 {
        self.cfg.n6() - c2
    }

    /// Choose `p₁`, the shift, `c₂` and `p₂` from the 2-hop color tables.
    fn compute_pointers(&mut self) {
        // N(v): smallest c₁ strictly below ours.
        let best_nbr = self.nbr_labels.iter().map(|&l| (self.nbr_c1[&l], l)).min();
        if let Some((c, l)) = best_nbr {
            if c < self.c1 {
                self.p1 = Some(l);
                self.shift = 0;
                self.c2 = 2 * c;
                self.p2 = Some(l);
                return;
            }
        }
        // N²(v): strictly-2-away vertices from the tables.
        let mut two_hop: BTreeMap<u64, u64> = BTreeMap::new(); // label -> c1
        for (_, table) in self.nbr_tables.iter() {
            for &(w, c) in table {
                if w != self.label && !self.nbr_labels.contains(&w) {
                    two_hop.entry(w).or_insert(c);
                }
            }
        }
        let best2 = two_hop.iter().map(|(&l, &c)| (c, l)).min();
        if let Some((c, l)) = best2 {
            if c < self.c1 {
                self.p1 = Some(l);
                self.shift = 1;
                self.c2 = 2 * c + 1;
                // p₂: smallest-label common neighbor u ∈ N(v) ∩ N(p₁(v)).
                let u = self
                    .nbr_labels
                    .iter()
                    .copied()
                    .find(|&u| {
                        self.nbr_tables
                            .get(&u)
                            .is_some_and(|t| t.iter().any(|&(w, _)| w == l))
                    })
                    .expect("a 2-hop parent is reachable through a common neighbor");
                self.p2 = Some(u);
                return;
            }
        }
        // Local minimum of c₁ in N ∪ N²: a root.
        self.p1 = None;
        self.p2 = None;
        self.c2 = 0;
    }

    /// Agenda for the two Lemma 6 passes over `F₂`, built once `c₂(p₂)`
    /// and the children are known (after virtual round 3).
    fn build_tree_agenda(&mut self) {
        let cfg = self.cfg;
        let mut ag: Vec<(Round, Duty)> = Vec::new();
        for pass in 0..2u8 {
            let (cc_base, bc_base) = if pass == 0 {
                (cfg.base1(), cfg.base2())
            } else {
                (cfg.base4(), cfg.base5())
            };
            if !self.children.is_empty() {
                ag.push((cc_base + self.flip(self.c2), Duty::CcRecv(pass)));
            }
            if let Some(pc2) = self.p2_c2 {
                ag.push((cc_base + self.flip(pc2), Duty::CcSend(pass)));
                ag.push((bc_base + pc2, Duty::BcRecv(pass)));
            }
            if !self.children.is_empty() {
                ag.push((bc_base + self.c2, Duty::BcSend(pass)));
            }
            if pass == 0 {
                ag.push((cfg.base3(), Duty::Info4));
            }
        }
        ag.sort_unstable_by_key(|&(r, _)| r);
        self.agenda = ag.into();
    }

    /// Append the Linial duties once membership in `U` is established.
    fn maybe_schedule_linial(&mut self) {
        if self.in_u {
            for t in 0..self.lin_steps.len().max(1) as u16 {
                self.agenda
                    .push_back((self.cfg.lin_start() + t as Round, Duty::Lin(t)));
            }
        }
    }

    fn duties_at(&self, vround: Round) -> Vec<Duty> {
        self.agenda
            .iter()
            .filter(|&&(r, _)| r == vround)
            .map(|&(_, d)| d)
            .collect()
    }

    fn next_action(&mut self, vround: Round) -> Action {
        while self.agenda.front().is_some_and(|&(r, _)| r <= vround) {
            self.agenda.pop_front();
        }
        match self.agenda.front() {
            Some(&(r, _)) => Action::SleepUntil(r),
            None => {
                self.finish();
                Action::Halt
            }
        }
    }

    /// Assemble the output once all duties are done.
    fn finish(&mut self) {
        let gamma = if self.in_u {
            self.lin_color + 1
        } else {
            self.l_aux + self.cfg.ab2
        };
        self.out = Some(Lemma15Out {
            gamma,
            delta: if self.in_u { 0 } else { self.delta_aux },
            l_aux: self.l_aux,
            in_u: self.in_u,
        });
    }

    /// Once the tree is known (after the first broadcast pass), derive the
    /// root, `U`-membership, and our own record sanity.
    fn absorb_tree(&mut self, tree: Vec<TreeRec>) {
        self.tree = tree;
        let root = self
            .tree
            .iter()
            .find(|r| r.p2.is_none())
            .expect("every F₂ tree has a root");
        self.l_aux = root.label;
        self.in_u = root.deg_h <= self.cfg.b;
        if self.in_u {
            // Paper's claim: all members of a small-root cluster have
            // degree ≤ b (their c₁ colors sit above the threshold).
            debug_assert!(
                self.deg_h <= self.cfg.b,
                "U cluster contains a high-degree vertex"
            );
        }
        self.lin_color = self.label;
        // Our first Linial-loop exchange needs the initial colors of
        // U-neighbors, which arrive in the loop's own rounds.
    }

    /// Once the cluster's adjacency is known, compute the exact BFS depth.
    fn absorb_edges(&mut self, edges: Vec<(u64, Vec<u64>)>) {
        self.edges = edges;
        let mut adj: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (l, nbrs) in &self.edges {
            for &w in nbrs {
                adj.entry(*l).or_default().push(w);
                adj.entry(w).or_default().push(*l);
            }
        }
        // BFS from the root over cluster members.
        let members: std::collections::BTreeSet<u64> = self.tree.iter().map(|r| r.label).collect();
        let mut dist: BTreeMap<u64, u32> = BTreeMap::new();
        dist.insert(self.l_aux, 0);
        let mut queue = std::collections::VecDeque::from([self.l_aux]);
        while let Some(x) = queue.pop_front() {
            let dx = dist[&x];
            for &w in adj.get(&x).into_iter().flatten() {
                if members.contains(&w) && !dist.contains_key(&w) {
                    dist.insert(w, dx + 1);
                    queue.push_back(w);
                }
            }
        }
        self.delta_aux = *dist
            .get(&self.label)
            .expect("cluster is connected through p₂/tree edges");
    }

    fn tree_rec(&self) -> TreeRec {
        TreeRec {
            label: self.label,
            c2: self.c2,
            p2: self.p2,
            deg_h: self.deg_h,
        }
    }
}

impl VirtualProgram for Lemma15Vertex {
    type Msg = L15Msg;
    type Output = Lemma15Out;
    type Payload = ();

    fn send(&mut self, vround: Round, out: &mut Vec<VOutgoing<L15Msg>>) {
        match vround {
            1 => out.push(VOutgoing::Broadcast(L15Msg::Info1(self.c1))),
            2 => {
                let table: Vec<(u64, u64)> = self.nbr_c1.iter().map(|(&l, &c)| (l, c)).collect();
                out.push(VOutgoing::Broadcast(L15Msg::Info2(table)));
            }
            3 => out.push(VOutgoing::Broadcast(L15Msg::Info3(self.c2, self.p2))),
            _ => {
                for duty in self.duties_at(vround) {
                    match duty {
                        Duty::CcSend(0) => out.push(VOutgoing::ToCluster(
                            self.p2.expect("cc send implies a parent"),
                            L15Msg::TreeUp(Arc::new(self.bag_tree.clone())),
                        )),
                        Duty::CcSend(_) => out.push(VOutgoing::ToCluster(
                            self.p2.expect("cc send implies a parent"),
                            L15Msg::EdgeUp(Arc::new(self.bag_edges.clone())),
                        )),
                        Duty::BcSend(0) => out.push(VOutgoing::Broadcast(L15Msg::TreeDown(
                            Arc::new(self.tree.clone()),
                        ))),
                        Duty::BcSend(_) => out.push(VOutgoing::Broadcast(L15Msg::EdgeDown(
                            Arc::new(self.edges.clone()),
                        ))),
                        Duty::Info4 => out.push(VOutgoing::Broadcast(L15Msg::Info4(self.l_aux))),
                        Duty::Lin(_) => out.push(VOutgoing::Broadcast(L15Msg::Lin(self.lin_color))),
                        Duty::CcRecv(_) | Duty::BcRecv(_) => {}
                    }
                }
            }
        }
    }

    fn receive(&mut self, vround: Round, inbox: &[VEnvelope<L15Msg>]) -> Action {
        match vround {
            1 => {
                for e in inbox {
                    if let L15Msg::Info1(c1) = e.msg {
                        self.nbr_c1.insert(e.from, c1);
                    }
                }
                Action::Stay
            }
            2 => {
                for e in inbox {
                    if let L15Msg::Info2(t) = &e.msg {
                        self.nbr_tables.insert(e.from, t.clone());
                    }
                }
                self.compute_pointers();
                Action::Stay
            }
            3 => {
                for e in inbox {
                    if let L15Msg::Info3(c2, p2) = e.msg {
                        if p2 == Some(self.label) {
                            self.children.push(e.from);
                        }
                        if Some(e.from) == self.p2 {
                            self.p2_c2 = Some(c2);
                        }
                    }
                }
                self.children.sort_unstable();
                self.bag_tree = vec![self.tree_rec()];
                self.build_tree_agenda();
                // A singleton root's tree is itself.
                if self.p2.is_none() && self.children.is_empty() {
                    self.absorb_tree(vec![self.tree_rec()]);
                    self.maybe_schedule_linial_after_pass2_for_singleton();
                }
                self.next_action(vround)
            }
            _ => {
                let duties = self.duties_at(vround);
                for duty in duties {
                    match duty {
                        Duty::CcRecv(0) => {
                            let mut seen: std::collections::BTreeSet<u64> =
                                self.bag_tree.iter().map(|r| r.label).collect();
                            for e in inbox {
                                if let L15Msg::TreeUp(recs) = &e.msg {
                                    if self.children.contains(&e.from) {
                                        for r in recs.iter() {
                                            if seen.insert(r.label) {
                                                self.bag_tree.push(r.clone());
                                            }
                                        }
                                    }
                                }
                            }
                            if self.p2.is_none() {
                                // Root: the tree is complete.
                                self.tree = self.bag_tree.clone();
                                self.absorb_tree(self.bag_tree.clone());
                            }
                        }
                        Duty::CcRecv(_) => {
                            let mut seen: std::collections::BTreeSet<u64> =
                                self.bag_edges.iter().map(|r| r.0).collect();
                            for e in inbox {
                                if let L15Msg::EdgeUp(recs) = &e.msg {
                                    if self.children.contains(&e.from) {
                                        for r in recs.iter() {
                                            if seen.insert(r.0) {
                                                self.bag_edges.push(r.clone());
                                            }
                                        }
                                    }
                                }
                            }
                            if self.p2.is_none() {
                                self.absorb_edges(self.bag_edges.clone());
                                self.maybe_schedule_linial();
                            }
                        }
                        Duty::BcRecv(0) => {
                            let tree = inbox.iter().find_map(|e| match &e.msg {
                                L15Msg::TreeDown(t) if Some(e.from) == self.p2 => {
                                    Some(t.as_ref().clone())
                                }
                                _ => None,
                            });
                            let tree = tree.expect("parent broadcasts the tree");
                            self.absorb_tree(tree);
                        }
                        Duty::BcRecv(_) => {
                            let edges = inbox.iter().find_map(|e| match &e.msg {
                                L15Msg::EdgeDown(t) if Some(e.from) == self.p2 => {
                                    Some(t.as_ref().clone())
                                }
                                _ => None,
                            });
                            let edges = edges.expect("parent broadcasts the edges");
                            self.absorb_edges(edges);
                            self.maybe_schedule_linial();
                        }
                        Duty::Info4 => {
                            self.same_cluster_nbrs = inbox
                                .iter()
                                .filter_map(|e| match &e.msg {
                                    L15Msg::Info4(l) if *l == self.l_aux => Some(e.from),
                                    _ => None,
                                })
                                .collect();
                            self.same_cluster_nbrs.sort_unstable();
                            self.bag_edges = vec![(self.label, self.same_cluster_nbrs.clone())];
                            // Singleton clusters already know everything.
                            if self.p2.is_none() && self.children.is_empty() {
                                self.absorb_edges(self.bag_edges.clone());
                                self.maybe_schedule_linial();
                            }
                        }
                        Duty::Lin(t) => {
                            let nbr_colors: Vec<u64> = inbox
                                .iter()
                                .filter_map(|e| match &e.msg {
                                    L15Msg::Lin(c) => Some(*c),
                                    _ => None,
                                })
                                .collect();
                            if let Some(step) = self.lin_steps.get(t as usize).copied() {
                                self.lin_color =
                                    linial::reduce_color(self.lin_color, &nbr_colors, step);
                            }
                        }
                        Duty::CcSend(_) | Duty::BcSend(_) => {}
                    }
                }
                self.next_action(vround)
            }
        }
    }

    fn output(&self) -> Option<Lemma15Out> {
        self.out.clone()
    }
}

impl Lemma15Vertex {
    /// Singleton roots skip both tree passes entirely; they still wait for
    /// the Info4 round (already on the agenda) and schedule Linial when
    /// their (trivial) cluster adjacency is established there.
    fn maybe_schedule_linial_after_pass2_for_singleton(&mut self) {
        // Intentionally empty: handled in the Info4 duty.
    }
}

impl Codec for TreeRec {
    fn encode(&self, w: &mut Writer) {
        self.label.encode(w);
        self.c2.encode(w);
        self.p2.encode(w);
        self.deg_h.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(TreeRec {
            label: r.get()?,
            c2: r.get()?,
            p2: r.get()?,
            deg_h: r.get()?,
        })
    }
}

impl Codec for Lemma15Out {
    fn encode(&self, w: &mut Writer) {
        self.gamma.encode(w);
        self.delta.encode(w);
        self.l_aux.encode(w);
        self.in_u.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(Lemma15Out {
            gamma: r.get()?,
            delta: r.get()?,
            l_aux: r.get()?,
            in_u: r.get()?,
        })
    }
}

impl Codec for Duty {
    fn encode(&self, w: &mut Writer) {
        match self {
            Duty::CcRecv(p) => (0u8, *p).encode(w),
            Duty::CcSend(p) => (1u8, *p).encode(w),
            Duty::BcRecv(p) => (2u8, *p).encode(w),
            Duty::BcSend(p) => (3u8, *p).encode(w),
            Duty::Info4 => (4u8, 0u8).encode(w),
            Duty::Lin(t) => {
                (5u8, 0u8).encode(w);
                t.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let (tag, p): (u8, u8) = r.get()?;
        Ok(match tag {
            0 => Duty::CcRecv(p),
            1 => Duty::CcSend(p),
            2 => Duty::BcRecv(p),
            3 => Duty::BcSend(p),
            4 => Duty::Info4,
            5 => Duty::Lin(r.get()?),
            _ => return Err(CheckpointError::Corrupt("Duty tag")),
        })
    }
}

impl Codec for L15Msg {
    fn encode(&self, w: &mut Writer) {
        match self {
            L15Msg::Info1(c) => {
                0u8.encode(w);
                c.encode(w);
            }
            L15Msg::Info2(t) => {
                1u8.encode(w);
                t.encode(w);
            }
            L15Msg::Info3(c, p) => {
                2u8.encode(w);
                c.encode(w);
                p.encode(w);
            }
            L15Msg::TreeUp(v) => {
                3u8.encode(w);
                v.encode(w);
            }
            L15Msg::TreeDown(v) => {
                4u8.encode(w);
                v.encode(w);
            }
            L15Msg::Info4(l) => {
                5u8.encode(w);
                l.encode(w);
            }
            L15Msg::EdgeUp(v) => {
                6u8.encode(w);
                v.encode(w);
            }
            L15Msg::EdgeDown(v) => {
                7u8.encode(w);
                v.encode(w);
            }
            L15Msg::Lin(c) => {
                8u8.encode(w);
                c.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(match u8::decode(r)? {
            0 => L15Msg::Info1(r.get()?),
            1 => L15Msg::Info2(r.get()?),
            2 => L15Msg::Info3(r.get()?, r.get()?),
            3 => L15Msg::TreeUp(r.get()?),
            4 => L15Msg::TreeDown(r.get()?),
            5 => L15Msg::Info4(r.get()?),
            6 => L15Msg::EdgeUp(r.get()?),
            7 => L15Msg::EdgeDown(r.get()?),
            8 => L15Msg::Lin(r.get()?),
            _ => return Err(CheckpointError::Corrupt("L15Msg tag")),
        })
    }
}

/// Dynamic state: everything the phase's receive handlers mutate. The
/// config, the label, the `H`-neighborhood, `c₁`, and the Linial schedule
/// are pure functions of the constructor inputs and are rebuilt by the
/// simulator's factory before `restore` overlays the rest.
impl Persist for Lemma15Vertex {
    fn save(&self, w: &mut Writer) {
        self.nbr_c1.encode(w);
        self.nbr_tables.encode(w);
        self.p1.encode(w);
        self.shift.encode(w);
        self.c2.encode(w);
        self.p2.encode(w);
        self.p2_c2.encode(w);
        self.children.encode(w);
        self.bag_tree.encode(w);
        self.tree.encode(w);
        self.l_aux.encode(w);
        self.in_u.encode(w);
        self.same_cluster_nbrs.encode(w);
        self.bag_edges.encode(w);
        self.edges.encode(w);
        self.delta_aux.encode(w);
        self.lin_color.encode(w);
        self.agenda.encode(w);
        self.out.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.nbr_c1 = r.get()?;
        self.nbr_tables = r.get()?;
        self.p1 = r.get()?;
        self.shift = r.get()?;
        self.c2 = r.get()?;
        self.p2 = r.get()?;
        self.p2_c2 = r.get()?;
        self.children = r.get()?;
        self.bag_tree = r.get()?;
        self.tree = r.get()?;
        self.l_aux = r.get()?;
        self.in_u = r.get()?;
        self.same_cluster_nbrs = r.get()?;
        self.bag_edges = r.get()?;
        self.edges = r.get()?;
        self.delta_aux = r.get()?;
        self.lin_color = r.get()?;
        self.agenda = r.get()?;
        self.out = r.get()?;
        Ok(())
    }
}
