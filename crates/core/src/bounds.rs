//! Closed-form awake/round budgets for every algorithm in the crate.
//!
//! The tests and the experiment harness assert `measured ≤ bound`; the
//! bounds are the paper's statements made concrete with this
//! implementation's exact constants (no hidden `O(·)`).

use crate::lemma10::PaletteTree;
use crate::params::Params;
use crate::{gather, linial, virt};
use awake_graphs::Graph;

/// Lemma 6: broadcast/convergecast awake complexity (non-root nodes).
pub const LEMMA6_AWAKE: u64 = 3;

/// Lemma 6: round complexity for label bound `n_labels`.
pub fn lemma6_rounds(n_labels: u64) -> u64 {
    n_labels + 3
}

/// Awake rounds of the intra-cluster gather (per node).
pub const GATHER_AWAKE: u64 = 5;

/// Awake rounds the Lemma 7 simulator pays per awake virtual round.
pub const VIRT_AWAKE_PER_VROUND: u64 = 5;

/// Linial's round count from palette `m0` at degree bound `delta`
/// (the `O(log* n)` term, computed exactly).
pub fn linial_rounds(m0: u64, delta: u64) -> u64 {
    linial::schedule(m0, delta).len() as u64
}

/// Lemma 11 awake complexity on a `k`-coloring: one mandatory round plus
/// the `r(c)` wake set, `= 2 + log₂ q` with `q = 2^⌈log₂ k⌉`.
pub fn lemma11_awake(k: u64) -> u64 {
    2 + PaletteTree::covering(k).q().trailing_zeros() as u64
}

/// Lemma 11 round complexity (`1 + (2q − 1)`).
pub fn lemma11_rounds(k: u64) -> u64 {
    1 + PaletteTree::covering(k).horizon()
}

/// BM21 awake bound for a graph: Linial rounds (always awake, ≥ 1 for the
/// mandatory first round) + Lemma 11 on the `O(Δ²)` palette.
pub fn bm21_awake(g: &Graph) -> u64 {
    let delta = g.max_degree().max(1) as u64;
    linial_rounds(g.ident_bound(), delta).max(1) + lemma11_awake(linial::final_palette(delta))
}

/// Trivial baseline awake bound: `Δ + 2`.
pub fn trivial_awake(g: &Graph) -> u64 {
    g.max_degree() as u64 + 2
}

/// Virtual-round budget of one Lemma 15 execution at iteration `i`
/// (label bound `lb`): the constant info rounds, two Lemma 6 passes over
/// the `F₂` forest with labels `≤ 4·lb + 1`, and the Linial loop on
/// `H[U]`.
pub fn lemma15_vrounds(p: &Params, iteration: u32) -> u64 {
    let lb = p.label_bound(iteration);
    let n6 = 4 * lb + 2; // c₂ ranges over 0..=4·lb+1
    let t_u = linial_rounds(lb + 1, p.b);
    3 + 2 * (n6 + 2) + 1 + 2 * (n6 + 2) + 1 + 1 + t_u + 2
}

/// Awake virtual rounds a vertex spends inside Lemma 15 (constant + the
/// Linial loop).
pub fn lemma15_vertex_awake(p: &Params, iteration: u32) -> u64 {
    let lb = p.label_bound(iteration);
    let t_u = linial_rounds(lb + 1, p.b);
    // vr1..3 info + 2·(cc+bc) twice + membership round + Linial loop
    3 + 4 + 1 + 4 + 1 + t_u
}

/// Virtual-round budget of the Lemma 14 tree-gather (cluster-tree depth is
/// bounded by `n`).
pub fn lemma14_vrounds(p: &Params) -> u64 {
    2 * p.depth_bound as u64 + 8
}

/// Real-round budget of one full Theorem 13 iteration.
pub fn theorem13_iteration_rounds(p: &Params, iteration: u32) -> u64 {
    virt::virt_rounds(p.depth_bound, lemma15_vrounds(p, iteration))
        + virt::virt_rounds(p.depth_bound, lemma14_vrounds(p))
}

/// Awake bound of one Theorem 13 iteration: the Lemma 7 overhead on every
/// awake virtual round of Lemma 15, plus the O(1)-awake Lemma 14 stage.
pub fn theorem13_iteration_awake(p: &Params, iteration: u32) -> u64 {
    GATHER_AWAKE
        + VIRT_AWAKE_PER_VROUND * lemma15_vertex_awake(p, iteration)
        + GATHER_AWAKE
        + VIRT_AWAKE_PER_VROUND * 5
}

/// Awake bound for the whole Theorem 13 pipeline:
/// `O(√log n · log* n)` with explicit constants.
pub fn theorem13_awake(p: &Params) -> u64 {
    (1..=p.iterations)
        .map(|i| theorem13_iteration_awake(p, i))
        .sum()
}

/// Theorem 9 awake bound given a `c`-colored clustering: one gather plus
/// Lemma 11 on `H` through the Lemma 7 simulator.
pub fn theorem9_awake(c: u64) -> u64 {
    GATHER_AWAKE + VIRT_AWAKE_PER_VROUND * (1 + lemma11_awake(c))
}

/// Theorem 9 round bound: `O(c·n)`.
pub fn theorem9_rounds(p: &Params, c: u64) -> u64 {
    virt::virt_rounds(p.depth_bound, lemma11_rounds(c) + 1)
}

/// Theorem 1 awake bound: Theorem 13 + Theorem 9 on `≤ k·a·b²` colors.
pub fn theorem1_awake(p: &Params) -> u64 {
    theorem13_awake(p) + theorem9_awake(p.color_bound())
}

/// The gather's exact round budget (re-exported for the harness).
pub fn gather_rounds(depth_bound: u32) -> u64 {
    gather::gather_rounds(depth_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma11_bounds_are_logarithmic() {
        assert_eq!(lemma11_awake(1), 2);
        assert_eq!(lemma11_awake(2), 3);
        assert_eq!(lemma11_awake(8), 5);
        assert_eq!(lemma11_awake(9), 6); // q = 16
        assert_eq!(lemma11_rounds(8), 16);
    }

    #[test]
    fn theorem1_bound_is_sublogarithmic_in_n() {
        // The bound divided by log₂ n must *shrink* as n grows
        // (√log n · log* n = o(log n)).
        let small = Params::new(1 << 10, 1 << 10);
        let large = Params::new(1 << 26, 1 << 26);
        let ratio_small = theorem1_awake(&small) as f64 / 10.0;
        let ratio_large = theorem1_awake(&large) as f64 / 26.0;
        assert!(
            ratio_large < ratio_small,
            "bound/log n should decrease: {ratio_small} vs {ratio_large}"
        );
    }

    #[test]
    fn bounds_are_monotone_in_iteration() {
        let p = Params::new(4096, 4096);
        assert!(lemma15_vrounds(&p, 2) >= lemma15_vrounds(&p, 1));
        assert!(theorem13_iteration_rounds(&p, 1) > 0);
    }
}
