//! Closed-form awake/round budgets for every algorithm in the crate.
//!
//! The tests and the experiment harness assert `measured ≤ bound`; the
//! bounds are the paper's statements made concrete with this
//! implementation's exact constants (no hidden `O(·)`).

use crate::lemma10::PaletteTree;
use crate::params::Params;
use crate::{gather, linial, virt};
use awake_graphs::Graph;
use awake_sleeping::{redundancy_for, FaultPlan};

/// Lemma 6: broadcast/convergecast awake complexity (non-root nodes).
pub const LEMMA6_AWAKE: u64 = 3;

/// Lemma 6: round complexity for label bound `n_labels`.
pub fn lemma6_rounds(n_labels: u64) -> u64 {
    n_labels + 3
}

/// Awake rounds of the intra-cluster gather (per node).
pub const GATHER_AWAKE: u64 = 5;

/// Awake rounds the Lemma 7 simulator pays per awake virtual round.
pub const VIRT_AWAKE_PER_VROUND: u64 = 5;

/// Linial's round count from palette `m0` at degree bound `delta`
/// (the `O(log* n)` term, computed exactly).
pub fn linial_rounds(m0: u64, delta: u64) -> u64 {
    linial::schedule(m0, delta).len() as u64
}

/// Lemma 11 awake complexity on a `k`-coloring: one mandatory round plus
/// the `r(c)` wake set, `= 2 + log₂ q` with `q = 2^⌈log₂ k⌉`.
pub fn lemma11_awake(k: u64) -> u64 {
    2 + PaletteTree::covering(k).q().trailing_zeros() as u64
}

/// Lemma 11 round complexity (`1 + (2q − 1)`).
pub fn lemma11_rounds(k: u64) -> u64 {
    1 + PaletteTree::covering(k).horizon()
}

/// BM21 awake bound for a graph: Linial rounds (always awake, ≥ 1 for the
/// mandatory first round) + Lemma 11 on the `O(Δ²)` palette.
pub fn bm21_awake(g: &Graph) -> u64 {
    let delta = g.max_degree().max(1) as u64;
    linial_rounds(g.ident_bound(), delta).max(1) + lemma11_awake(linial::final_palette(delta))
}

/// Trivial baseline awake bound: `Δ + 2`.
pub fn trivial_awake(g: &Graph) -> u64 {
    g.max_degree() as u64 + 2
}

/// Virtual-round budget of one Lemma 15 execution at iteration `i`
/// (label bound `lb`): the constant info rounds, two Lemma 6 passes over
/// the `F₂` forest with labels `≤ 4·lb + 1`, and the Linial loop on
/// `H[U]`.
pub fn lemma15_vrounds(p: &Params, iteration: u32) -> u64 {
    let lb = p.label_bound(iteration);
    let n6 = 4 * lb + 2; // c₂ ranges over 0..=4·lb+1
    let t_u = linial_rounds(lb + 1, p.b);
    3 + 2 * (n6 + 2) + 1 + 2 * (n6 + 2) + 1 + 1 + t_u + 2
}

/// Awake virtual rounds a vertex spends inside Lemma 15 (constant + the
/// Linial loop).
pub fn lemma15_vertex_awake(p: &Params, iteration: u32) -> u64 {
    let lb = p.label_bound(iteration);
    let t_u = linial_rounds(lb + 1, p.b);
    // vr1..3 info + 2·(cc+bc) twice + membership round + Linial loop
    3 + 4 + 1 + 4 + 1 + t_u
}

/// Virtual-round budget of the Lemma 14 tree-gather (cluster-tree depth is
/// bounded by `n`).
pub fn lemma14_vrounds(p: &Params) -> u64 {
    2 * p.depth_bound as u64 + 8
}

/// Real-round budget of one full Theorem 13 iteration.
pub fn theorem13_iteration_rounds(p: &Params, iteration: u32) -> u64 {
    virt::virt_rounds(p.depth_bound, lemma15_vrounds(p, iteration))
        + virt::virt_rounds(p.depth_bound, lemma14_vrounds(p))
}

/// Awake bound of one Theorem 13 iteration: the Lemma 7 overhead on every
/// awake virtual round of Lemma 15, plus the O(1)-awake Lemma 14 stage.
pub fn theorem13_iteration_awake(p: &Params, iteration: u32) -> u64 {
    GATHER_AWAKE
        + VIRT_AWAKE_PER_VROUND * lemma15_vertex_awake(p, iteration)
        + GATHER_AWAKE
        + VIRT_AWAKE_PER_VROUND * 5
}

/// Awake bound for the whole Theorem 13 pipeline:
/// `O(√log n · log* n)` with explicit constants.
pub fn theorem13_awake(p: &Params) -> u64 {
    (1..=p.iterations)
        .map(|i| theorem13_iteration_awake(p, i))
        .sum()
}

/// Theorem 9 awake bound given a `c`-colored clustering: one gather plus
/// Lemma 11 on `H` through the Lemma 7 simulator.
pub fn theorem9_awake(c: u64) -> u64 {
    GATHER_AWAKE + VIRT_AWAKE_PER_VROUND * (1 + lemma11_awake(c))
}

/// Theorem 9 round bound: `O(c·n)`.
pub fn theorem9_rounds(p: &Params, c: u64) -> u64 {
    virt::virt_rounds(p.depth_bound, lemma11_rounds(c) + 1)
}

/// Theorem 1 awake bound: Theorem 13 + Theorem 9 on `≤ k·a·b²` colors.
pub fn theorem1_awake(p: &Params) -> u64 {
    theorem13_awake(p) + theorem9_awake(p.color_bound())
}

/// The gather's exact round budget (re-exported for the harness).
pub fn gather_rounds(depth_bound: u32) -> u64 {
    gather::gather_rounds(depth_bound)
}

// ---- round bounds ----

/// Trivial baseline round bound: every node announces at round
/// `1 + ident`, so the schedule ends by `ident_bound + 1`.
pub fn trivial_rounds(g: &Graph) -> u64 {
    g.ident_bound() + 1
}

/// BM21 round bound: the always-awake Linial stage (≥ 1 for the mandatory
/// first round) plus the Lemma 11 horizon on the `O(Δ²)` palette.
pub fn bm21_rounds(g: &Graph) -> u64 {
    let delta = g.max_degree().max(1) as u64;
    linial_rounds(g.ident_bound(), delta).max(1) + lemma11_rounds(linial::final_palette(delta))
}

/// Round bound of the whole Theorem 13 pipeline (`Σ` iteration budgets).
pub fn theorem13_rounds(p: &Params) -> u64 {
    (1..=p.iterations)
        .map(|i| theorem13_iteration_rounds(p, i))
        .sum()
}

/// Theorem 9 round bound including its stage-1 root-overlay gather (the
/// [`theorem9_rounds`] figure covers only the Lemma-11-on-`H` stage).
pub fn theorem9_rounds_total(p: &Params, c: u64) -> u64 {
    gather_rounds(p.depth_bound) + theorem9_rounds(p, c)
}

/// Theorem 1 round bound: Theorem 13 followed by Theorem 9 on the
/// `k·a·b²` color budget.
pub fn theorem1_rounds(p: &Params) -> u64 {
    theorem13_rounds(p) + theorem9_rounds_total(p, p.color_bound())
}

// ---- line-graph adapter bounds (edge problems) ----

/// Awake bound of the line-graph virtualization adapter running the
/// by-label [`EdgeGreedy`](crate::linegraph::EdgeGreedy) on `L(G)`.
///
/// A host is awake exactly when one of its incident edges' replicas is
/// awake (one virtual round of `L(G)` costs one real round of `G`), and
/// edge `e` is awake at most `deg_L(e) + 2` virtual rounds, so node `v`
/// pays at most `Σ_{e ∋ v} (deg_L(e) + 2)` awake rounds. With
/// `deg_L({u, w}) = deg(u) + deg(w) − 2` this collapses to the closed form
/// `deg(v)² + Σ_{u ∼ v} deg(u)`, maximized over hosts.
pub fn linegraph_awake(g: &Graph) -> u64 {
    g.nodes()
        .map(|v| {
            let dv = g.degree(v) as u64;
            let nbr_deg: u64 = g.neighbors(v).iter().map(|&u| g.degree(u) as u64).sum();
            dv * dv + nbr_deg
        })
        .max()
        .unwrap_or(0)
}

/// Round bound of the line-graph adapter: labels are `1..=m` and the
/// largest label announces (and every replica halts) at virtual round
/// `m` = real round `m`.
pub fn linegraph_rounds(g: &Graph) -> u64 {
    g.m() as u64
}

// ---- the audit entry point ----

/// A closed-form resource budget: the paper's bound with this
/// implementation's exact constants. The harness asserts
/// `measured max_awake ≤ awake` and `measured rounds ≤ rounds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Awake-complexity budget (max over nodes of awake rounds).
    pub awake: u64,
    /// Round-complexity budget (last round any node is awake).
    pub rounds: u64,
}

/// The solver generations the budgets cover. The threaded executor is
/// bit-for-bit identical to the serial one, so it shares
/// [`BoundAlgo::Trivial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundAlgo {
    /// The folklore by-identifier greedy (`O(Δ)` awake).
    Trivial,
    /// Barenboim–Maimon (`O(log Δ + log* n)` awake).
    Bm21,
    /// The paper's Theorem 1 (`O(√log n · log* n)` awake).
    Theorem1,
}

/// Which class of problem the scenario solves: budgets depend on the
/// pipeline, not the concrete O-LOCAL problem, except that edge problems
/// ride the line-graph adapter (and only on the trivial executors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemClass {
    /// A vertex problem (MIS, coloring, …) solved directly on `G`.
    Vertex,
    /// An edge problem (matching, edge coloring) solved on `L(G)` via the
    /// virtualization adapter.
    Edge,
}

/// The single audit entry point: the exact awake/round budget of running
/// `algo` on a `class` problem over `g` with parameters `p`.
///
/// Returns `None` for the unsupported pairings (edge problems exist for
/// the trivial adapter only — the same combinations the harness rejects
/// with a typed error).
pub fn budget_for(algo: BoundAlgo, class: ProblemClass, g: &Graph, p: &Params) -> Option<Budget> {
    match (class, algo) {
        (ProblemClass::Vertex, BoundAlgo::Trivial) => Some(Budget {
            awake: trivial_awake(g),
            rounds: trivial_rounds(g),
        }),
        (ProblemClass::Vertex, BoundAlgo::Bm21) => Some(Budget {
            awake: bm21_awake(g),
            rounds: bm21_rounds(g),
        }),
        (ProblemClass::Vertex, BoundAlgo::Theorem1) => Some(Budget {
            awake: theorem1_awake(p),
            rounds: theorem1_rounds(p),
        }),
        (ProblemClass::Edge, BoundAlgo::Trivial) => Some(Budget {
            awake: linegraph_awake(g),
            rounds: linegraph_rounds(g),
        }),
        (ProblemClass::Edge, _) => None,
    }
}

// ---- degraded budgets (the recovery contract) ----

/// Per-stage budgets of the BM21 pipeline at degree bound `delta`:
/// `[linial, lemma11]`. The rounds figures are the *same* closed forms the
/// resilient solvers size their [`Redundant`](awake_sleeping::Redundant)
/// windows from, so solver and auditor always agree on the stretch factor.
pub fn bm21_stage_budgets(g: &Graph, delta: u64) -> [Budget; 2] {
    let t = linial_rounds(g.ident_bound(), delta).max(1);
    let k = linial::final_palette(delta);
    [
        // Linial keeps every node awake for the whole stage.
        Budget {
            awake: t,
            rounds: t,
        },
        Budget {
            awake: lemma11_awake(k),
            rounds: lemma11_rounds(k),
        },
    ]
}

/// Per-stage budgets of the Theorem 13 pipeline, two per iteration
/// (`lemma15`, `lemma14`), in execution order. Early-exhausted runs simply
/// skip trailing stages, which only lowers the measured figures.
pub fn theorem13_stage_budgets(p: &Params) -> Vec<Budget> {
    let mut v = Vec::with_capacity(2 * p.iterations as usize);
    for i in 1..=p.iterations {
        v.push(Budget {
            awake: GATHER_AWAKE + VIRT_AWAKE_PER_VROUND * lemma15_vertex_awake(p, i),
            rounds: virt::virt_rounds(p.depth_bound, lemma15_vrounds(p, i)),
        });
        v.push(Budget {
            awake: GATHER_AWAKE + VIRT_AWAKE_PER_VROUND * 5,
            rounds: virt::virt_rounds(p.depth_bound, lemma14_vrounds(p)),
        });
    }
    v
}

/// Per-stage budgets of Theorem 9 on a `c`-colored clustering with depth
/// bound `db`: `[root-overlay gather, lemma11-on-H]`. Takes the depth
/// bound directly (the solver passes `g.n()`, the auditor
/// `Params::depth_bound` — equal by construction) so both sides derive
/// identical stretch factors.
pub fn theorem9_stage_budgets(db: u32, c: u64) -> [Budget; 2] {
    [
        Budget {
            awake: GATHER_AWAKE,
            rounds: gather_rounds(db),
        },
        Budget {
            awake: VIRT_AWAKE_PER_VROUND * (1 + lemma11_awake(c)),
            rounds: virt::virt_rounds(db, lemma11_rounds(c) + 1),
        },
    ]
}

/// Round budget of one stage degraded by `plan` at stretch factor `s`
/// (from [`redundancy_for`]): the stretched fault-free budget, extended to
/// the end of the fault window (crash-forced wake-ups can chain until the
/// quiet period) plus the delay horizon and a constant tail for the
/// crash-forced wake-up past the last faulty round. The resilient solvers
/// use this very figure as the engine's round cap.
pub fn degraded_stage_rounds(base_rounds: u64, s: u64, plan: &FaultPlan) -> u64 {
    s.saturating_mul(base_rounds)
        .max(plan.quiet_after)
        .saturating_add(plan.delay_rounds)
        .saturating_add(4)
}

/// Awake budget of one stage degraded by `plan`: the stretched fault-free
/// budget plus one recovery wake-up per possible crash. Crashes are rolled
/// only on awake node-rounds inside the fault window, so the extra term is
/// bounded by the window length (`burst_len`, then `quiet_after`, then the
/// whole degraded run), and a node is never awake more often than the run
/// has rounds.
pub fn degraded_stage_awake(base_awake: u64, s: u64, plan: &FaultPlan, rounds_d: u64) -> u64 {
    let mut window = if plan.quiet_after > 0 {
        plan.quiet_after.min(rounds_d)
    } else {
        rounds_d
    };
    if plan.burst_len > 0 {
        window = window.min(plan.burst_len);
    }
    s.saturating_mul(base_awake)
        .saturating_add(window)
        .saturating_add(2)
        .min(rounds_d)
}

/// The degraded audit entry point: the closed-form awake/round budget of
/// running `algo` on a `class` problem over `g` under fault injection
/// `plan`, with every stage wrapped in
/// [`Redundant`](awake_sleeping::Redundant) time redundancy the way the
/// resilient solvers do it.
///
/// The inflation is a pure function of the plan: per stage, the stretch
/// factor comes from [`redundancy_for`] on the same closed-form stage
/// round bound the solver uses, and the stage budget degrades by
/// [`degraded_stage_rounds`] / [`degraded_stage_awake`]. Stage budgets are
/// then summed per Lemma 8. An inactive plan degrades nothing — the result
/// equals [`budget_for`].
///
/// Returns `None` exactly where [`budget_for`] does (edge problems exist
/// for the trivial adapter only).
pub fn degraded_budget_for(
    algo: BoundAlgo,
    class: ProblemClass,
    g: &Graph,
    p: &Params,
    plan: &FaultPlan,
) -> Option<Budget> {
    let base = budget_for(algo, class, g, p)?;
    if !plan.is_active() {
        return Some(base);
    }
    let stages: Vec<Budget> = match (class, algo) {
        (_, BoundAlgo::Trivial) => vec![base],
        (ProblemClass::Vertex, BoundAlgo::Bm21) => {
            bm21_stage_budgets(g, g.max_degree().max(1) as u64).to_vec()
        }
        (ProblemClass::Vertex, BoundAlgo::Theorem1) => {
            let mut v = theorem13_stage_budgets(p);
            v.extend(theorem9_stage_budgets(p.depth_bound, p.color_bound()));
            v
        }
        (ProblemClass::Edge, _) => unreachable!("budget_for rejected these above"),
    };
    let mut awake = 0u64;
    let mut rounds = 0u64;
    for b in stages {
        let s = redundancy_for(plan, g.n(), b.rounds);
        let rd = degraded_stage_rounds(b.rounds, s, plan);
        awake = awake.saturating_add(degraded_stage_awake(b.awake, s, plan, rd));
        rounds = rounds.saturating_add(rd);
    }
    Some(Budget { awake, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma11_bounds_are_logarithmic() {
        assert_eq!(lemma11_awake(1), 2);
        assert_eq!(lemma11_awake(2), 3);
        assert_eq!(lemma11_awake(8), 5);
        assert_eq!(lemma11_awake(9), 6); // q = 16
        assert_eq!(lemma11_rounds(8), 16);
    }

    #[test]
    fn theorem1_bound_is_sublogarithmic_in_n() {
        // The bound divided by log₂ n must *shrink* as n grows
        // (√log n · log* n = o(log n)).
        let small = Params::new(1 << 10, 1 << 10);
        let large = Params::new(1 << 26, 1 << 26);
        let ratio_small = theorem1_awake(&small) as f64 / 10.0;
        let ratio_large = theorem1_awake(&large) as f64 / 26.0;
        assert!(
            ratio_large < ratio_small,
            "bound/log n should decrease: {ratio_small} vs {ratio_large}"
        );
    }

    #[test]
    fn bounds_are_monotone_in_iteration() {
        let p = Params::new(4096, 4096);
        assert!(lemma15_vrounds(&p, 2) >= lemma15_vrounds(&p, 1));
        assert!(theorem13_iteration_rounds(&p, 1) > 0);
    }

    /// The closed-form `lemma15_vrounds` must dominate the virtual-round
    /// budget the Theorem 13 engine actually allots (`cfg.vrounds() + 2`),
    /// or the round bounds would undercut the execution they audit.
    #[test]
    fn lemma15_vrounds_covers_the_engine_budget() {
        for n in [16usize, 256, 4096, 1 << 16] {
            let p = Params::new(n, n as u64);
            for i in 1..=p.iterations {
                let cfg = crate::lemma15::Lemma15Config {
                    b: p.b,
                    label_bound: p.label_bound(i),
                    ab2: p.ab2,
                };
                assert!(
                    lemma15_vrounds(&p, i) >= cfg.vrounds() + 2,
                    "n={n} iter={i}: bound {} < engine budget {}",
                    lemma15_vrounds(&p, i),
                    cfg.vrounds() + 2
                );
            }
        }
    }

    #[test]
    fn linegraph_bounds_closed_form() {
        use awake_graphs::generators;
        // Star S_4: hub degree 4. Hub bound = 16 + 4·1 = 20; a leaf pays
        // 1 + deg(hub) = 5. Rounds = m = 4.
        let g = generators::star(5);
        assert_eq!(linegraph_awake(&g), 20);
        assert_eq!(linegraph_rounds(&g), 4);
        // Edgeless graph: nothing wakes.
        let empty = awake_graphs::GraphBuilder::new(3).build().unwrap();
        assert_eq!(linegraph_awake(&empty), 0);
        assert_eq!(linegraph_rounds(&empty), 0);
    }

    #[test]
    fn budget_for_covers_every_supported_pairing() {
        use awake_graphs::generators;
        let g = generators::gnp(48, 0.1, 3);
        let p = Params::for_graph(&g);
        for algo in [BoundAlgo::Trivial, BoundAlgo::Bm21, BoundAlgo::Theorem1] {
            let b = budget_for(algo, ProblemClass::Vertex, &g, &p).unwrap();
            assert!(b.awake > 0 && b.rounds > 0, "{algo:?}: {b:?}");
        }
        let b = budget_for(BoundAlgo::Trivial, ProblemClass::Edge, &g, &p).unwrap();
        assert!(b.awake > 0 && b.rounds == g.m() as u64);
        assert_eq!(
            budget_for(BoundAlgo::Bm21, ProblemClass::Edge, &g, &p),
            None
        );
        assert_eq!(
            budget_for(BoundAlgo::Theorem1, ProblemClass::Edge, &g, &p),
            None
        );
    }

    #[test]
    fn round_bounds_dominate_awake_bounds() {
        // A node can be awake at most once per round, so every pipeline's
        // round budget must be at least its awake budget.
        use awake_graphs::generators;
        let g = generators::gnp(64, 0.1, 5);
        let p = Params::for_graph(&g);
        assert!(trivial_rounds(&g) >= trivial_awake(&g));
        assert!(bm21_rounds(&g) >= bm21_awake(&g));
        assert!(theorem1_rounds(&p) >= theorem1_awake(&p));
    }

    #[test]
    fn stage_budgets_sum_to_at_most_the_pipeline_budget() {
        // The degraded model decomposes each pipeline into stages whose
        // fault-free bounds must never exceed the composed closed form —
        // otherwise the inactive-plan degraded budget would be looser than
        // the audited one.
        use awake_graphs::generators;
        let g = generators::gnp(48, 0.1, 3);
        let p = Params::for_graph(&g);
        let bm = bm21_stage_budgets(&g, g.max_degree().max(1) as u64);
        assert!(bm.iter().map(|b| b.awake).sum::<u64>() <= bm21_awake(&g));
        assert!(bm.iter().map(|b| b.rounds).sum::<u64>() <= bm21_rounds(&g));
        let mut t1 = theorem13_stage_budgets(&p);
        t1.extend(theorem9_stage_budgets(p.depth_bound, p.color_bound()));
        assert!(t1.iter().map(|b| b.awake).sum::<u64>() <= theorem1_awake(&p));
        assert!(t1.iter().map(|b| b.rounds).sum::<u64>() <= theorem1_rounds(&p));
    }

    #[test]
    fn degraded_budget_is_identity_on_inactive_plans() {
        use awake_graphs::generators;
        let g = generators::gnp(40, 0.12, 1);
        let p = Params::for_graph(&g);
        let quiet = FaultPlan::new(5);
        for (algo, class) in [
            (BoundAlgo::Trivial, ProblemClass::Vertex),
            (BoundAlgo::Trivial, ProblemClass::Edge),
            (BoundAlgo::Bm21, ProblemClass::Vertex),
            (BoundAlgo::Theorem1, ProblemClass::Vertex),
        ] {
            assert_eq!(
                degraded_budget_for(algo, class, &g, &p, &quiet),
                budget_for(algo, class, &g, &p),
                "{algo:?}/{class:?}"
            );
        }
        // Unsupported pairings stay unsupported.
        let mut hot = FaultPlan::new(5);
        hot.crash_ppm = 100_000;
        assert_eq!(
            degraded_budget_for(BoundAlgo::Bm21, ProblemClass::Edge, &g, &p, &hot),
            None
        );
    }

    #[test]
    fn degraded_budget_dominates_the_fault_free_one() {
        // An active plan can only inflate: the degraded budget must
        // dominate the fault-free closed form for every supported pairing,
        // and the inflation must grow with the redundancy the plan forces.
        use awake_graphs::generators;
        let g = generators::gnp(40, 0.12, 1);
        let p = Params::for_graph(&g);
        let mut mild = FaultPlan::new(11);
        mild.drop_ppm = 40_000;
        mild.quiet_after = 30;
        let mut hot = FaultPlan { ..mild };
        hot.crash_ppm = 800_000;
        hot.burst_start = 1;
        hot.burst_len = 8;
        for (algo, class) in [
            (BoundAlgo::Trivial, ProblemClass::Vertex),
            (BoundAlgo::Trivial, ProblemClass::Edge),
            (BoundAlgo::Bm21, ProblemClass::Vertex),
            (BoundAlgo::Theorem1, ProblemClass::Vertex),
        ] {
            let base = budget_for(algo, class, &g, &p).unwrap();
            let dm = degraded_budget_for(algo, class, &g, &p, &mild).unwrap();
            let dh = degraded_budget_for(algo, class, &g, &p, &hot).unwrap();
            assert!(
                dm.awake >= base.awake && dm.rounds >= base.rounds,
                "{algo:?}/{class:?}"
            );
            assert!(
                dh.rounds >= dm.rounds,
                "{algo:?}/{class:?}: crashes widen rounds"
            );
        }
    }

    #[test]
    fn degraded_stage_math_is_monotone_and_capped() {
        let mut plan = FaultPlan::new(1);
        plan.drop_ppm = 10_000;
        plan.quiet_after = 20;
        let r2 = degraded_stage_rounds(50, 2, &plan);
        let r4 = degraded_stage_rounds(50, 4, &plan);
        assert!(r2 >= 2 * 50 && r4 > r2, "stretch inflates rounds");
        // Awake is never more than one event per degraded round.
        assert!(degraded_stage_awake(10_000, 4, &plan, r4) <= r4);
        // The quiet window bounds the crash-forced overhead term.
        let open = FaultPlan {
            quiet_after: 0,
            ..plan
        };
        assert!(degraded_stage_awake(3, 2, &plan, 1000) <= degraded_stage_awake(3, 2, &open, 1000));
    }
}
