//! Lemma 7: running an algorithm designed for the virtual graph `H` on the
//! underlying graph `G`, over a uniquely-labeled BFS-clustering.
//!
//! Every member of a cluster runs an identical **replica** of the vertex's
//! program (the paper's "gather everything at every node" made explicit:
//! since all members learn the same information, they can all simulate the
//! vertex deterministically). One *virtual round* `x` of `H` becomes a
//! *phase* of `2D+6` real rounds:
//!
//! 1. **exchange** — members forward the vertex's round-`x` messages across
//!    border edges to adjacent awake clusters (and collect incoming ones);
//! 2. **convergecast** — the incoming messages are merged up the BFS tree
//!    (depth-synchronized, ≤ 2 awake rounds);
//! 3. **broadcast** — the merged inbox is pushed back down (≤ 2 awake
//!    rounds); every member then advances the replica by one round of the
//!    inner program and sleeps until the phase of the vertex's next awake
//!    virtual round.
//!
//! A member is awake ≤ 5 real rounds per awake virtual round (the paper
//! proves ≤ 7), and clusters whose vertex sleeps are entirely asleep —
//! messages sent to them are lost, exactly the Sleeping semantics on `H`.

use crate::gather::{gather_rounds, ClusterView, GatherCore, GatherMsg, GatherStep, MemberRec};
use awake_sleeping::{
    Action, CheckpointError, Codec, Envelope, Outbox, Outgoing, Persist, Program, Reader, Round,
    View, Writer,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Cluster-level input handed to the inner program's factory.
///
/// Deliberately excludes member-specific data (own ident/ports) so that all
/// replicas of a vertex are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexInput<P> {
    /// The vertex's label (= cluster label).
    pub label: u64,
    /// Every member's record.
    pub members: BTreeMap<u64, MemberRec<P>>,
}

impl<P: Clone> VertexInput<P> {
    fn from_view(view: &ClusterView<P>) -> Self {
        VertexInput {
            label: view.label,
            members: view.members.clone(),
        }
    }

    /// Sorted distinct labels of adjacent vertices in `H`.
    pub fn neighbor_labels(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self
            .members
            .values()
            .flat_map(|m| m.border.iter().map(|b| b.1))
            .collect();
        l.sort_unstable();
        l.dedup();
        l
    }

    /// Degree in `H`.
    pub fn h_degree(&self) -> usize {
        self.neighbor_labels().len()
    }

    /// The root member's identifier.
    pub fn root_ident(&self) -> u64 {
        self.members
            .values()
            .find(|m| m.depth == 0)
            .map(|m| m.ident)
            .expect("BFS cluster has a root")
    }

    /// Intra-cluster edges as ident pairs (`a < b`, each once).
    pub fn intra_edges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for m in self.members.values() {
            for &w in &m.intra {
                if m.ident < w {
                    out.push((m.ident, w));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Border edges `(member ident, neighbor ident, neighbor label,
    /// neighbor depth, neighbor payload)`.
    pub fn border_edges(&self) -> Vec<(u64, u64, u64, u32, P)> {
        let mut out = Vec::new();
        for m in self.members.values() {
            for b in &m.border {
                out.push((m.ident, b.0, b.1, b.2, b.3.clone()));
            }
        }
        out.sort_unstable_by_key(|a| (a.0, a.1, a.2));
        out
    }
}

/// A message from an adjacent vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct VEnvelope<M> {
    /// Sender vertex label.
    pub from: u64,
    /// Payload.
    pub msg: M,
}

/// A message the inner program emits.
#[derive(Debug, Clone, PartialEq)]
pub enum VOutgoing<M> {
    /// To the vertex with this label (must be adjacent in `H`).
    ToCluster(u64, M),
    /// To every adjacent vertex.
    Broadcast(M),
}

/// A program for one vertex of the virtual graph `H`, in the Sleeping
/// model on `H`: `send` then `receive` per awake virtual round; all
/// vertices are awake at virtual round 1.
///
/// Implementations must be deterministic — every cluster member replays an
/// identical replica.
pub trait VirtualProgram: Sized {
    /// Virtual message type.
    type Msg: Clone + std::fmt::Debug + Send + Sync + PartialEq;
    /// Vertex-level output.
    type Output: Clone + std::fmt::Debug + Send + Sync;
    /// Per-node payload collected by the setup gather into [`VertexInput`].
    type Payload: Clone + std::fmt::Debug + Send + Sync;

    /// Append the messages to transmit at virtual round `vround` to `out`.
    ///
    /// `out` arrives empty; it is a pooled buffer the simulator clears and
    /// reuses across phases, so steady-state priming allocates nothing.
    fn send(&mut self, vround: Round, out: &mut Vec<VOutgoing<Self::Msg>>);

    /// Process the messages received at `vround`; choose the next action
    /// (rounds in the action are *virtual* rounds).
    fn receive(&mut self, vround: Round, inbox: &[VEnvelope<Self::Msg>]) -> Action;

    /// The vertex output; must be `Some` once halted.
    fn output(&self) -> Option<Self::Output>;
}

/// Physical message type of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum VirtMsg<P, M> {
    /// Setup-gather traffic.
    Gather(GatherMsg<P>),
    /// Border traffic at a phase's exchange round.
    Exchange {
        /// Sending vertex.
        from: u64,
        /// Target vertex (`None` = broadcast).
        to: Option<u64>,
        /// Per-round sequence number (for deduplication).
        seq: u16,
        /// Payload.
        msg: M,
    },
    /// Intra-cluster merge traffic (`Arc`-shared: per-recipient clones
    /// are O(1)).
    Bag {
        /// The cluster this bag belongs to.
        label: u64,
        /// Convergecast (`true`) or broadcast (`false`) leg.
        up: bool,
        /// `(from vertex, seq, msg)` triples.
        items: Arc<Vec<(u64, u16, M)>>,
    },
}

/// Rounds one phase occupies for depth bound `d`.
pub fn phase_rounds(d: u32) -> Round {
    2 * d as Round + 6
}

/// Total rounds of a simulation with `inner_rounds` virtual rounds.
pub fn virt_rounds(d: u32, inner_rounds: Round) -> Round {
    gather_rounds(d) + inner_rounds * phase_rounds(d)
}

// ---- phase timing (free functions over the public depth bound) ----

fn t0(db: u32, vround: Round) -> Round {
    1 + gather_rounds(db) + (vround - 1) * phase_rounds(db)
}
fn cc_recv(db: u32, vround: Round, depth: u32) -> Round {
    t0(db, vround) + 1 + (db - depth) as Round
}
fn cc_send(db: u32, vround: Round, depth: u32) -> Round {
    cc_recv(db, vround, depth) + 1
}
fn bc_base(db: u32, vround: Round) -> Round {
    t0(db, vround) + db as Round + 3
}
fn bc_recv(db: u32, vround: Round, depth: u32) -> Round {
    bc_base(db, vround) + depth as Round - 1
}
fn bc_send(db: u32, vround: Round, depth: u32) -> Round {
    bc_base(db, vround) + depth as Round
}

struct RunState<VP: VirtualProgram> {
    vp: VP,
    /// The cluster-level input the replica was built from — kept so a
    /// snapshot/crash restore can re-run the factory and then overlay the
    /// replica's dynamic state (see the `Persist` impl).
    vinput: VertexInput<VP::Payload>,
    depth: u32,
    has_children: bool,
    ports: Vec<(awake_graphs::NodeId, u64, u64)>,
    label: u64,
    /// Virtual round whose phase is currently executing.
    cur: Round,
    /// The vertex's next awake virtual round (set by `prime`).
    next: Round,
    /// The vertex's outgoing messages for `vround`.
    outgoing: Vec<(u16, Option<u64>, VP::Msg)>,
    /// Exchange items collected during the current phase.
    collected: Vec<(u64, u16, VP::Msg)>,
    /// Dedup keys of `collected`.
    collected_keys: BTreeSet<(u64, u16)>,
    /// Full merged inbox, kept behind one shared `Arc` so the downward
    /// re-broadcast and the local replica advance reuse the same buffer —
    /// a phase moves the item vector once (`mem::take`) instead of
    /// re-cloning it at every hand-off. [`publish_bag`] recycles the Vec's
    /// allocation back into `collected` once the Arc is unshared.
    bc_copy: Arc<Vec<(u64, u16, VP::Msg)>>,
    /// Set once the inner program halts.
    vp_done: bool,
    /// Pooled scratch for [`VirtualProgram::send`] (never persisted —
    /// empty outside `prime`).
    send_buf: Vec<VOutgoing<VP::Msg>>,
    /// Pooled index scratch for the merged-inbox sort (transient).
    order: Vec<u32>,
    /// Pooled inbox the replica reads each phase (transient).
    inbox_buf: Vec<VEnvelope<VP::Msg>>,
}

enum St<VP: VirtualProgram> {
    Inactive,
    Gather(GatherCore<VP::Payload>),
    Run(Box<RunState<VP>>),
    Done,
}

/// The Lemma 7 simulator: a Sleeping-model [`Program`] on `G` executing a
/// [`VirtualProgram`] on `H`.
///
/// Construct with [`VirtSim::participant`] / [`VirtSim::bystander`]; node
/// output is `Some(vertex output)` for participants, `None` for bystanders.
pub struct VirtSim<VP: VirtualProgram, F> {
    st: St<VP>,
    factory: F,
    depth_bound: u32,
    out: Option<VP::Output>,
}

impl<VP, F> VirtSim<VP, F>
where
    VP: VirtualProgram,
    F: Fn(&VertexInput<VP::Payload>) -> VP,
{
    /// A participating node with cluster `label`, BFS `depth`, identifier
    /// `ident` and gather payload `payload`.
    pub fn participant(
        label: u64,
        depth: u32,
        ident: u64,
        payload: VP::Payload,
        depth_bound: u32,
        factory: F,
    ) -> Self {
        VirtSim {
            st: St::Gather(GatherCore::new(
                label,
                depth,
                ident,
                payload,
                depth_bound,
                1,
            )),
            factory,
            depth_bound,
            out: None,
        }
    }

    /// A node outside the clustered subgraph: never wakes, outputs `None`.
    pub fn bystander(factory: F) -> Self {
        VirtSim {
            st: St::Inactive,
            factory,
            depth_bound: 0,
            out: None,
        }
    }
}

/// Prepare the outgoing messages for the vertex's next awake round. Both
/// the send scratch and the numbered `outgoing` buffer are pooled — a
/// steady-state prime allocates nothing.
fn prime<VP: VirtualProgram>(run: &mut RunState<VP>, next: Round) {
    run.next = next;
    run.send_buf.clear();
    run.vp.send(next, &mut run.send_buf);
    run.outgoing.clear();
    run.outgoing
        .extend(run.send_buf.drain(..).enumerate().map(|(i, o)| match o {
            VOutgoing::ToCluster(j, m) => (i as u16, Some(j), m),
            VOutgoing::Broadcast(m) => (i as u16, None, m),
        }));
    run.collected.clear();
    run.collected_keys.clear();
}

/// Publish `collected` as the phase's merged inbox bag. The previous
/// phase's bag allocation is recycled into the next `collected` whenever
/// this replica held its last `Arc` reference (the steady state: the
/// engine has delivered and dropped every broadcast copy by the time the
/// next phase merges) — so phase turnover reallocates nothing.
fn publish_bag<VP: VirtualProgram>(run: &mut RunState<VP>) {
    let fresh = Arc::new(std::mem::take(&mut run.collected));
    let old = std::mem::replace(&mut run.bc_copy, fresh);
    if let Ok(mut v) = Arc::try_unwrap(old) {
        v.clear();
        run.collected = v;
    }
}

/// Advance the replica once the phase's full inbox is known; returns the
/// engine action covering the node's remaining duties this phase.
fn process<VP: VirtualProgram>(
    out: &mut Option<VP::Output>,
    db: u32,
    run: &mut RunState<VP>,
) -> Action {
    // Sort/dedup through an index vector so only the surviving payloads are
    // cloned (into the inbox the replica reads) — the merged bag itself is
    // never copied. The stable sort keeps the first-inserted item among
    // equal `(from, seq)` keys, matching the old clone-sort-dedup exactly.
    let bag: &[(u64, u16, VP::Msg)] = &run.bc_copy;
    run.order.clear();
    run.order.extend(0..bag.len() as u32);
    run.order.sort_by_key(|&i| {
        let it = &bag[i as usize];
        (it.0, it.1)
    });
    run.order.dedup_by(|a, b| {
        let (x, y) = (&bag[*a as usize], &bag[*b as usize]);
        x.0 == y.0 && x.1 == y.1
    });
    run.inbox_buf.clear();
    run.inbox_buf.extend(run.order.iter().map(|&i| {
        let (from, _, msg) = &bag[i as usize];
        VEnvelope {
            from: *from,
            msg: msg.clone(),
        }
    }));
    let x = run.cur;
    match run.vp.receive(x, &run.inbox_buf) {
        Action::Stay => prime(run, x + 1),
        Action::SleepUntil(x2) => {
            assert!(x2 > x, "inner program must sleep strictly forward");
            prime(run, x2);
        }
        Action::Halt => {
            run.vp_done = true;
            *out = run.vp.output();
            assert!(out.is_some(), "inner program halted without output");
        }
    }
    if run.has_children {
        // Still owe the downward re-broadcast of the merged inbox.
        Action::SleepUntil(bc_send(db, x, run.depth))
    } else if run.vp_done {
        Action::Halt
    } else {
        Action::SleepUntil(t0(db, run.next))
    }
}

fn merge_items<VP: VirtualProgram>(
    run: &mut RunState<VP>,
    inbox: &[Envelope<VirtMsg<VP::Payload, VP::Msg>>],
    up: bool,
) {
    for e in inbox {
        if let VirtMsg::Bag {
            label,
            up: u,
            items,
        } = &e.msg
        {
            if *label == run.label && *u == up {
                for it in items.iter() {
                    if run.collected_keys.insert((it.0, it.1)) {
                        run.collected.push(it.clone());
                    }
                }
            }
        }
    }
}

impl<VP, F> Program for VirtSim<VP, F>
where
    VP: VirtualProgram,
    F: Fn(&VertexInput<VP::Payload>) -> VP,
{
    type Msg = VirtMsg<VP::Payload, VP::Msg>;
    type Output = Option<VP::Output>;

    fn initial_wake(&self) -> Option<Round> {
        match self.st {
            St::Inactive => None,
            _ => Some(1),
        }
    }

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        let db = self.depth_bound;
        match &mut self.st {
            St::Inactive | St::Done => {}
            St::Gather(core) => out.extend(core.send_at(view.round).into_iter().map(|o| match o {
                Outgoing::To(p, m) => Outgoing::To(p, VirtMsg::Gather(m)),
                Outgoing::Broadcast(m) => Outgoing::Broadcast(VirtMsg::Gather(m)),
            })),
            St::Run(run) => {
                let round = view.round;
                if !run.vp_done && round == t0(db, run.next) {
                    for (seq, to, msg) in &run.outgoing {
                        for &(port, _, l) in &run.ports {
                            let ship = match to {
                                Some(j) => l == *j,
                                None => l != run.label,
                            };
                            if ship {
                                out.to(
                                    port,
                                    VirtMsg::Exchange {
                                        from: run.label,
                                        to: *to,
                                        seq: *seq,
                                        msg: msg.clone(),
                                    },
                                );
                            }
                        }
                    }
                } else if round == cc_send(db, run.cur, run.depth) && run.depth > 0 {
                    // The up-leg bag is dead locally after this broadcast
                    // (bc_recv clears and refills `collected`): move it
                    // into the Arc instead of cloning the item vector.
                    out.broadcast(VirtMsg::Bag {
                        label: run.label,
                        up: true,
                        items: Arc::new(std::mem::take(&mut run.collected)),
                    });
                } else if round == bc_send(db, run.cur, run.depth) && run.has_children {
                    // O(1): the merged inbox is already behind an Arc.
                    out.broadcast(VirtMsg::Bag {
                        label: run.label,
                        up: false,
                        items: Arc::clone(&run.bc_copy),
                    });
                }
            }
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        let round = view.round;
        let db = self.depth_bound;
        match &mut self.st {
            St::Inactive | St::Done => unreachable!("inactive nodes never wake"),
            St::Gather(core) => {
                let ginbox: Vec<Envelope<GatherMsg<VP::Payload>>> = inbox
                    .iter()
                    .filter_map(|e| match &e.msg {
                        VirtMsg::Gather(g) => Some(Envelope {
                            from: e.from,
                            msg: g.clone(),
                        }),
                        _ => None,
                    })
                    .collect();
                match core.recv_at(round, &ginbox) {
                    GatherStep::WakeAt(r) => Action::SleepUntil(r),
                    GatherStep::Done => {
                        let cview = core.view().expect("gather done").clone();
                        let vinput = VertexInput::from_view(&cview);
                        let vp = (self.factory)(&vinput);
                        let has_children = cview.my_ports.iter().any(|&(_, nid, l)| {
                            l == cview.label
                                && cview
                                    .members
                                    .get(&nid)
                                    .is_some_and(|m| m.depth == cview.my_depth + 1)
                        });
                        let mut run = Box::new(RunState {
                            vp,
                            vinput,
                            depth: cview.my_depth,
                            has_children,
                            ports: cview.my_ports.clone(),
                            label: cview.label,
                            cur: 1,
                            next: 1,
                            outgoing: vec![],
                            collected: vec![],
                            collected_keys: BTreeSet::new(),
                            bc_copy: Arc::new(vec![]),
                            vp_done: false,
                            send_buf: vec![],
                            order: vec![],
                            inbox_buf: vec![],
                        });
                        // All vertices are awake at virtual round 1.
                        prime(&mut run, 1);
                        let wake = t0(db, 1);
                        self.st = St::Run(run);
                        Action::SleepUntil(wake)
                    }
                }
            }
            St::Run(run) => {
                let action = if round == t0(db, run.next) {
                    // Entering the phase of the next awake virtual round.
                    run.cur = run.next;
                    let x = run.cur;
                    for e in inbox {
                        if let VirtMsg::Exchange { from, to, seq, msg } = &e.msg {
                            let accept =
                                *from != run.label && (to.is_none() || *to == Some(run.label));
                            if accept && run.collected_keys.insert((*from, *seq)) {
                                run.collected.push((*from, *seq, msg.clone()));
                            }
                        }
                    }
                    if run.depth == 0 && !run.has_children {
                        publish_bag(run);
                        process(&mut self.out, db, run)
                    } else if run.has_children {
                        Action::SleepUntil(cc_recv(db, x, run.depth))
                    } else {
                        Action::SleepUntil(cc_send(db, x, run.depth))
                    }
                } else if round == cc_recv(db, run.cur, run.depth) && run.has_children {
                    merge_items(run, inbox, true);
                    if run.depth == 0 {
                        publish_bag(run);
                        process(&mut self.out, db, run)
                    } else {
                        Action::SleepUntil(cc_send(db, run.cur, run.depth))
                    }
                } else if round == cc_send(db, run.cur, run.depth) && run.depth > 0 {
                    Action::SleepUntil(bc_recv(db, run.cur, run.depth))
                } else if round == bc_recv(db, run.cur, run.depth) && run.depth > 0 {
                    run.collected.clear();
                    run.collected_keys.clear();
                    merge_items(run, inbox, false);
                    publish_bag(run);
                    process(&mut self.out, db, run)
                } else if round == bc_send(db, run.cur, run.depth) {
                    if run.vp_done {
                        Action::Halt
                    } else {
                        Action::SleepUntil(t0(db, run.next))
                    }
                } else {
                    unreachable!("VirtSim woke at unscheduled round {round}");
                };
                if matches!(action, Action::Halt) {
                    self.st = St::Done;
                }
                action
            }
        }
    }

    fn output(&self) -> Option<Self::Output> {
        match self.st {
            St::Inactive => Some(None),
            St::Done => Some(self.out.clone()),
            _ => None,
        }
    }

    fn span(&self) -> &'static str {
        match self.st {
            St::Gather(_) => "virt/gather",
            _ => "virt/phase",
        }
    }
}

impl<P: Codec> Codec for VertexInput<P> {
    fn encode(&self, w: &mut Writer) {
        self.label.encode(w);
        self.members.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(VertexInput {
            label: r.get()?,
            members: r.get()?,
        })
    }
}

/// Dynamic state of the simulator: which stage it is in, the gather core's
/// progress, or the full phase state of the running replica. The replica
/// itself is restored by re-running the factory on the serialized
/// [`VertexInput`] and then overlaying the inner program's dynamic state
/// through its own [`Persist`] impl — so any persistable
/// [`VirtualProgram`] rides through snapshots and crash-restarts without
/// the simulator knowing its internals.
impl<VP, F> Persist for VirtSim<VP, F>
where
    VP: VirtualProgram + Persist,
    VP::Payload: Codec,
    VP::Msg: Codec,
    VP::Output: Codec,
    F: Fn(&VertexInput<VP::Payload>) -> VP,
{
    fn save(&self, w: &mut Writer) {
        match &self.st {
            St::Inactive => 0u8.encode(w),
            St::Gather(core) => {
                1u8.encode(w);
                core.save(w);
            }
            St::Run(run) => {
                2u8.encode(w);
                run.vinput.encode(w);
                run.depth.encode(w);
                run.has_children.encode(w);
                run.ports.encode(w);
                run.label.encode(w);
                run.cur.encode(w);
                run.next.encode(w);
                run.outgoing.encode(w);
                run.collected.encode(w);
                run.bc_copy.encode(w);
                run.vp_done.encode(w);
                run.vp.save(w);
            }
            St::Done => 3u8.encode(w),
        }
        self.out.encode(w);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        match u8::decode(r)? {
            0 => self.st = St::Inactive,
            1 => match &mut self.st {
                St::Gather(core) => core.restore(r)?,
                _ => return Err(CheckpointError::Corrupt("VirtSim stage mismatch")),
            },
            2 => {
                let vinput: VertexInput<VP::Payload> = r.get()?;
                let mut vp = (self.factory)(&vinput);
                let depth = r.get()?;
                let has_children = r.get()?;
                let ports = r.get()?;
                let label = r.get()?;
                let cur = r.get()?;
                let next = r.get()?;
                let outgoing = r.get()?;
                let collected: Vec<(u64, u16, VP::Msg)> = r.get()?;
                let bc_copy = r.get()?;
                let vp_done = r.get()?;
                vp.restore(r)?;
                let collected_keys = collected.iter().map(|it| (it.0, it.1)).collect();
                self.st = St::Run(Box::new(RunState {
                    vp,
                    vinput,
                    depth,
                    has_children,
                    ports,
                    label,
                    cur,
                    next,
                    outgoing,
                    collected,
                    collected_keys,
                    bc_copy,
                    vp_done,
                    send_buf: vec![],
                    order: vec![],
                    inbox_buf: vec![],
                }));
            }
            3 => self.st = St::Done,
            _ => return Err(CheckpointError::Corrupt("VirtSim state tag")),
        }
        self.out = r.get()?;
        Ok(())
    }
}

impl<P: Codec, M: Codec> Codec for VirtMsg<P, M> {
    fn encode(&self, w: &mut Writer) {
        match self {
            VirtMsg::Gather(g) => {
                0u8.encode(w);
                g.encode(w);
            }
            VirtMsg::Exchange { from, to, seq, msg } => {
                1u8.encode(w);
                from.encode(w);
                to.encode(w);
                seq.encode(w);
                msg.encode(w);
            }
            VirtMsg::Bag { label, up, items } => {
                2u8.encode(w);
                label.encode(w);
                up.encode(w);
                items.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match u8::decode(r)? {
            0 => Ok(VirtMsg::Gather(r.get()?)),
            1 => Ok(VirtMsg::Exchange {
                from: r.get()?,
                to: r.get()?,
                seq: r.get()?,
                msg: r.get()?,
            }),
            2 => Ok(VirtMsg::Bag {
                label: r.get()?,
                up: r.get()?,
                items: r.get()?,
            }),
            _ => Err(CheckpointError::Corrupt("VirtMsg tag")),
        }
    }
}
