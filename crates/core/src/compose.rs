//! Lemma 8: sequential composition of Sleeping-model algorithms.
//!
//! Running algorithm `A₁` for (a deterministic budget of) `T₁` rounds and
//! then `A₂` yields awake complexity `S₁ + S₂` and round complexity
//! `T₁ + T₂`. The pipeline executes each stage as its own engine run and
//! accumulates the accounting additively; nodes that scheduled a wake-up
//! inside a later stage start it asleep via
//! [`Program::initial_wake`](awake_sleeping::Program::initial_wake), so the
//! per-node totals are exactly those of the concatenated single algorithm.

use awake_sleeping::Metrics;

/// Accounting for one named stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name (e.g. `"theorem13/iter1/lemma15"`).
    pub name: String,
    /// The stage's metrics.
    pub metrics: Metrics,
}

/// Additive accounting across stages (Lemma 8).
#[derive(Debug, Clone, Default)]
pub struct Composition {
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
}

impl Composition {
    /// Start an empty composition.
    pub fn new() -> Self {
        Composition::default()
    }

    /// Append a stage.
    pub fn push(&mut self, name: impl Into<String>, metrics: Metrics) {
        self.stages.push(StageReport {
            name: name.into(),
            metrics,
        });
    }

    /// Merge another composition's stages (prefixing their names).
    pub fn extend_prefixed(&mut self, prefix: &str, other: Composition) {
        for s in other.stages {
            self.stages.push(StageReport {
                name: format!("{prefix}/{}", s.name),
                metrics: s.metrics,
            });
        }
    }

    /// Per-node awake rounds summed over stages.
    pub fn awake_per_node(&self) -> Vec<u64> {
        let n = self
            .stages
            .iter()
            .map(|s| s.metrics.awake.len())
            .max()
            .unwrap_or(0);
        let mut acc = vec![0u64; n];
        for s in &self.stages {
            for (i, a) in s.metrics.awake.iter().enumerate() {
                acc[i] += a;
            }
        }
        acc
    }

    /// The composed awake complexity (Lemma 8: `Σ Sᵢ`, maximized per node).
    pub fn max_awake(&self) -> u64 {
        self.awake_per_node().into_iter().max().unwrap_or(0)
    }

    /// Node-averaged composed awake complexity.
    pub fn avg_awake(&self) -> f64 {
        let per = self.awake_per_node();
        if per.is_empty() {
            0.0
        } else {
            per.iter().sum::<u64>() as f64 / per.len() as f64
        }
    }

    /// The composed round complexity (`Σ Tᵢ`).
    pub fn rounds(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.rounds).sum()
    }

    /// Total awake node-round events across stages — the Sleeping model's
    /// cost unit, summed additively like the other Lemma 8 quantities.
    pub fn awake_events(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.awake_events).sum()
    }

    /// Virtual rounds the executors jumped (no awake node) across stages.
    pub fn rounds_skipped(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.rounds_skipped).sum()
    }

    /// Total messages sent across stages.
    pub fn messages_sent(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.messages_sent).sum()
    }

    /// Total messages lost across stages (sent to sleeping nodes).
    pub fn messages_lost(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.messages_lost).sum()
    }

    /// Messages dropped by fault injection, summed across stages.
    pub fn faults_dropped(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.faults_dropped).sum()
    }

    /// Messages duplicated by fault injection, summed across stages.
    pub fn faults_duplicated(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.metrics.faults_duplicated)
            .sum()
    }

    /// Messages delayed by fault injection, summed across stages.
    pub fn faults_delayed(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.faults_delayed).sum()
    }

    /// Node crash-restarts injected, summed across stages.
    pub fn faults_crashed(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.faults_crashed).sum()
    }

    /// Rounds with at least one node recovering from a crash, summed
    /// across stages (zero on fault-free runs).
    pub fn recovery_rounds(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.recovery_rounds).sum()
    }

    /// Awake node-rounds spent recovering from crashes, summed across
    /// stages — the energy overhead the degraded budgets bound.
    pub fn recovery_awake(&self) -> u64 {
        self.stages.iter().map(|s| s.metrics.recovery_awake).sum()
    }

    /// A compact multi-line accounting table.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<40} {:>10} {:>12}", "stage", "max awake", "rounds");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<40} {:>10} {:>12}",
                s.name,
                s.metrics.max_awake(),
                s.metrics.rounds
            );
        }
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>12}",
            "TOTAL (Lemma 8)",
            self.max_awake(),
            self.rounds()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::NodeId;

    fn metrics_with(awakes: &[u64], rounds: u64) -> Metrics {
        let mut m = Metrics::new(awakes.len());
        for (i, &a) in awakes.iter().enumerate() {
            for _ in 0..a {
                m.note_awake(NodeId(i as u32), "t");
            }
        }
        m.rounds = rounds;
        m
    }

    #[test]
    fn additive_accounting() {
        let mut c = Composition::new();
        c.push("s1", metrics_with(&[3, 1], 10));
        c.push("s2", metrics_with(&[0, 5], 7));
        assert_eq!(c.awake_per_node(), vec![3, 6]);
        assert_eq!(c.max_awake(), 6);
        assert_eq!(c.rounds(), 17);
        assert!((c.avg_awake() - 4.5).abs() < 1e-9);
        assert!(c.report().contains("TOTAL"));
    }

    #[test]
    fn extend_prefixed_names() {
        let mut inner = Composition::new();
        inner.push("x", metrics_with(&[1], 1));
        let mut outer = Composition::new();
        outer.extend_prefixed("outer", inner);
        assert_eq!(outer.stages[0].name, "outer/x");
    }
}
