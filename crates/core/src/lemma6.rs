//! Lemma 6 (Barenboim–Maimon): broadcast and convergecast on a labeled
//! spanning tree with **awake complexity exactly 3** and round complexity
//! `O(N)`.
//!
//! Setting: a rooted tree `T` (each non-root node knows the *port* of its
//! parent), a labeling `L : V → {1..N}` with `L(v) > L(parent(v))`, and `N`
//! known to all. Broadcast delivers the root's message to everyone;
//! convergecast accumulates everyone's payload at the root.
//!
//! The schedule (from the paper's proof):
//! * round 1 — every node announces `L(v)`; each node learns its parent's
//!   label (it knows only the parent's *port* beforehand);
//! * broadcast: wake at `2 + L(parent)` to receive, `2 + L(v)` to forward;
//! * convergecast: with flipped labels `L' = N − L`, wake at `2 + L'(v)`
//!   to collect the children's bags, `2 + L'(parent)` to forward — children
//!   have larger `L`, hence smaller `L'`, hence earlier turns.
//!
//! Awake complexity: the root is awake twice, every other node exactly 3
//! times — asserted by the tests and measured by experiment E5.

use awake_graphs::NodeId;
use awake_sleeping::{Action, Envelope, Outbox, Program, Round, View};

/// Per-node input for the Lemma 6 protocols.
#[derive(Debug, Clone)]
pub struct TreeInput {
    /// Port of the parent (`None` for the root).
    pub parent: Option<NodeId>,
    /// Label with `L(v) > L(parent(v))`, in `1..=label_bound`.
    pub label: u64,
    /// The public label bound `N`.
    pub label_bound: u64,
}

/// Messages of the Lemma 6 protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeMsg<T> {
    /// Round-1 label announcement.
    Label(u64),
    /// Broadcast payload on its way down.
    Down(T),
    /// Convergecast bag on its way up (addressed to the parent).
    Up(Vec<T>),
}

enum Stage {
    AnnounceLabels,
    AwaitParent,
    Deliver,
    Done,
}

/// The broadcast program: the root's `payload` reaches every node.
pub struct Broadcast<T> {
    input: TreeInput,
    payload: Option<T>,
    stage: Stage,
    received: Option<T>,
}

impl<T: Clone + std::fmt::Debug + Send + Sync> Broadcast<T> {
    /// Program for one node; `payload` must be `Some` exactly at the root.
    pub fn new(input: TreeInput, payload: Option<T>) -> Self {
        assert_eq!(
            input.parent.is_none(),
            payload.is_some(),
            "payload at the root, nowhere else"
        );
        assert!(
            (1..=input.label_bound).contains(&input.label),
            "label out of range"
        );
        Broadcast {
            input,
            payload,
            stage: Stage::AnnounceLabels,
            received: None,
        }
    }
}

impl<T: Clone + std::fmt::Debug + Send + Sync> Program for Broadcast<T> {
    type Msg = TreeMsg<T>;
    type Output = T;

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<TreeMsg<T>>) {
        match self.stage {
            Stage::AnnounceLabels => out.broadcast(TreeMsg::Label(self.input.label)),
            // forwarding round: 2 + L(v)
            Stage::Deliver if view.round == 2 + self.input.label => {
                let m = self
                    .payload
                    .clone()
                    .or_else(|| self.received.clone())
                    .expect("payload present when forwarding");
                out.broadcast(TreeMsg::Down(m));
            }
            _ => {}
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<TreeMsg<T>>]) -> Action {
        match &mut self.stage {
            Stage::AnnounceLabels => {
                // Root: skip straight to its forwarding round.
                if self.input.parent.is_none() {
                    self.stage = Stage::Deliver;
                    return Action::SleepUntil(2 + self.input.label);
                }
                let parent = self.input.parent.expect("non-root");
                let parent_label = inbox
                    .iter()
                    .find_map(|e| match (e.from == parent, &e.msg) {
                        (true, TreeMsg::Label(l)) => Some(*l),
                        _ => None,
                    })
                    .expect("parent announces its label at round 1");
                self.stage = Stage::AwaitParent;
                Action::SleepUntil(2 + parent_label)
            }
            Stage::AwaitParent => {
                let parent = self.input.parent.expect("non-root in AwaitParent");
                self.received = inbox.iter().find_map(|e| match (e.from == parent, &e.msg) {
                    (true, TreeMsg::Down(m)) => Some(m.clone()),
                    _ => None,
                });
                assert!(
                    self.received.is_some(),
                    "parent must forward at round {}",
                    view.round
                );
                self.stage = Stage::Deliver;
                Action::SleepUntil(2 + self.input.label)
            }
            Stage::Deliver => {
                self.stage = Stage::Done;
                Action::Halt
            }
            Stage::Done => unreachable!("halted"),
        }
    }

    fn output(&self) -> Option<T> {
        self.payload.clone().or_else(|| self.received.clone())
    }

    fn span(&self) -> &'static str {
        "lemma6/broadcast"
    }
}

/// The convergecast program: every node's `payload` reaches the root,
/// which outputs the full bag (non-roots output their forwarded bag).
pub struct Convergecast<T> {
    input: TreeInput,
    bag: Vec<T>,
    stage: CcStage,
}

enum CcStage {
    AnnounceLabels,
    Collect { parent_label: Option<u64> },
    Forward,
    Done,
}

impl<T: Clone + std::fmt::Debug + Send + Sync> Convergecast<T> {
    /// Program for one node with its payload.
    pub fn new(input: TreeInput, payload: T) -> Self {
        assert!(
            (1..=input.label_bound).contains(&input.label),
            "label out of range"
        );
        Convergecast {
            input,
            bag: vec![payload],
            stage: CcStage::AnnounceLabels,
        }
    }

    fn flipped(&self) -> u64 {
        self.input.label_bound - self.input.label
    }

    fn collect_round(&self) -> Round {
        2 + self.flipped()
    }
}

impl<T: Clone + std::fmt::Debug + Send + Sync> Program for Convergecast<T> {
    type Msg = TreeMsg<T>;
    type Output = Vec<T>;

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<TreeMsg<T>>) {
        match self.stage {
            CcStage::AnnounceLabels => {
                out.broadcast(TreeMsg::Label(self.input.label));
            }
            CcStage::Forward => {
                let parent = self.input.parent.expect("only non-roots forward");
                debug_assert!(view.round > self.collect_round());
                out.to(parent, TreeMsg::Up(self.bag.clone()));
            }
            _ => {}
        }
    }

    fn receive(&mut self, _view: &View<'_>, inbox: &[Envelope<TreeMsg<T>>]) -> Action {
        match &self.stage {
            CcStage::AnnounceLabels => {
                let parent_label = self.input.parent.map(|p| {
                    inbox
                        .iter()
                        .find_map(|e| match (e.from == p, &e.msg) {
                            (true, TreeMsg::Label(l)) => Some(*l),
                            _ => None,
                        })
                        .expect("parent announces its label at round 1")
                });
                self.stage = CcStage::Collect { parent_label };
                Action::SleepUntil(self.collect_round())
            }
            CcStage::Collect { parent_label } => {
                // Children (flipped label smaller... larger) send to us now.
                for e in inbox {
                    if let TreeMsg::Up(items) = &e.msg {
                        self.bag.extend(items.iter().cloned());
                    }
                }
                match parent_label {
                    None => {
                        self.stage = CcStage::Done;
                        Action::Halt
                    }
                    Some(pl) => {
                        let fp = self.input.label_bound - pl;
                        self.stage = CcStage::Forward;
                        Action::SleepUntil(2 + fp)
                    }
                }
            }
            CcStage::Forward => {
                self.stage = CcStage::Done;
                Action::Halt
            }
            CcStage::Done => unreachable!("halted"),
        }
    }

    fn output(&self) -> Option<Vec<T>> {
        Some(self.bag.clone())
    }

    fn span(&self) -> &'static str {
        "lemma6/convergecast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::{generators, traversal, Graph};
    use awake_sleeping::{Config, Engine};

    /// Build TreeInputs for a BFS spanning tree of `g` rooted at node 0,
    /// labeling each node `1 + its BFS distance`… that would violate
    /// strict monotonicity between siblings' labels? No: only the
    /// parent-child relation matters, and depth+1 > depth. But Lemma 6
    /// allows arbitrary monotone labels; we use ident-based labels to also
    /// exercise non-depth labelings.
    fn bfs_tree_inputs(g: &Graph, by_depth: bool) -> Vec<TreeInput> {
        let dist = traversal::bfs_distances(g, NodeId(0));
        let n = g.n();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        for v in g.nodes() {
            if v.0 == 0 {
                continue;
            }
            let dv = dist[v.index()].expect("connected");
            parent[v.index()] = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|u| dist[u.index()] == Some(dv - 1));
        }
        // label: depth-based or a topological ident-ish labeling
        (0..n)
            .map(|v| {
                let label = if by_depth {
                    dist[v].unwrap() as u64 + 1
                } else {
                    // parent's position in BFS order is smaller; use
                    // 1 + BFS-order index.
                    bfs_order_index(g, NodeId(v as u32)) + 1
                };
                TreeInput {
                    parent: parent[v],
                    label,
                    label_bound: n as u64 + 1,
                }
            })
            .collect()
    }

    fn bfs_order_index(g: &Graph, v: NodeId) -> u64 {
        // order nodes by (distance, id): parent precedes child.
        let dist = traversal::bfs_distances(g, NodeId(0));
        let mut order: Vec<(u32, u32)> =
            g.nodes().map(|u| (dist[u.index()].unwrap(), u.0)).collect();
        order.sort_unstable();
        order.iter().position(|&(_, u)| u == v.0).expect("present") as u64
    }

    #[test]
    fn broadcast_reaches_all_awake_exactly_3() {
        for g in [
            generators::path(9),
            generators::balanced_tree(15, 2),
            generators::random_tree(30, 4),
            generators::star(12),
        ] {
            let inputs = bfs_tree_inputs(&g, true);
            let programs: Vec<Broadcast<String>> = inputs
                .iter()
                .map(|inp| {
                    let payload = inp.parent.is_none().then(|| "hello".to_string());
                    Broadcast::new(inp.clone(), payload)
                })
                .collect();
            let run = Engine::new(&g, Config::default()).run(programs).unwrap();
            assert!(run.outputs.iter().all(|m| m == "hello"));
            // every non-root awake exactly 3 rounds; root exactly 2
            for v in g.nodes() {
                let expect = if inputs[v.index()].parent.is_none() {
                    2
                } else {
                    3
                };
                assert_eq!(run.metrics.awake[v.index()], expect, "node {v}");
            }
            // round complexity O(N)
            assert!(run.metrics.rounds <= 2 + g.n() as u64 + 1);
        }
    }

    #[test]
    fn broadcast_with_ident_labels() {
        let g = generators::random_tree(25, 11);
        let inputs = bfs_tree_inputs(&g, false);
        let programs: Vec<Broadcast<u64>> = inputs
            .iter()
            .map(|inp| Broadcast::new(inp.clone(), inp.parent.is_none().then_some(42)))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        assert!(run.outputs.iter().all(|&m| m == 42));
        assert_eq!(run.metrics.max_awake(), 3);
    }

    #[test]
    fn convergecast_collects_everything_at_root() {
        for g in [
            generators::path(8),
            generators::balanced_tree(21, 4),
            generators::random_tree(40, 2),
        ] {
            let inputs = bfs_tree_inputs(&g, true);
            let programs: Vec<Convergecast<u64>> = inputs
                .iter()
                .enumerate()
                .map(|(v, inp)| Convergecast::new(inp.clone(), g.ident(NodeId(v as u32))))
                .collect();
            let run = Engine::new(&g, Config::default()).run(programs).unwrap();
            let mut root_bag = run.outputs[0].clone();
            root_bag.sort_unstable();
            let expected: Vec<u64> = (1..=g.n() as u64).collect();
            assert_eq!(root_bag, expected, "root gathers all payloads");
            for v in g.nodes() {
                let expect = if inputs[v.index()].parent.is_none() {
                    2
                } else {
                    3
                };
                assert_eq!(run.metrics.awake[v.index()], expect, "node {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "payload at the root")]
    fn broadcast_rejects_misplaced_payload() {
        let _ = Broadcast::new(
            TreeInput {
                parent: Some(NodeId(0)),
                label: 2,
                label_bound: 5,
            },
            Some(1u64),
        );
    }
}
