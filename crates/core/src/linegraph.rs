//! Line-graph virtualization: running Sleeping-model programs for the
//! **edges** of `G` on the nodes of `G`.
//!
//! Every edge `e = {u, v}` becomes one virtual node of the line graph
//! `L(G)`. Both endpoints run an identical deterministic **replica** of
//! `e`'s program — the Lemma 7 replica technique ([`crate::virt`]),
//! specialized to the 2-member "cluster" `{u, v}` with depth bound 0: no
//! convergecast/broadcast legs are needed, because any two edges adjacent
//! in `L(G)` share a vertex, and that shared vertex hosts replicas of
//! *both*. A virtual round of `L(G)` therefore costs exactly **one** real
//! round of `G`:
//!
//! * a host delivers an awake replica's messages to its co-hosted
//!   replicas locally, and ships one copy across each sibling edge so the
//!   far replica sees the identical inbox;
//! * inboxes are merged by sorting on `(sender label, seq)` and deduping,
//!   so the two replicas of an edge advance in lock-step;
//! * a host is awake at round `x` iff one of its incident edges is awake
//!   at virtual round `x` — messages to fully sleeping hosts are lost,
//!   which is precisely the Sleeping semantics on `L(G)`.
//!
//! The machinery is shared with Lemma 7: edge programs implement the same
//! [`VirtualProgram`] trait, exchange [`VEnvelope`]s, emit [`VOutgoing`]s,
//! and ride the physical network inside [`VirtMsg::Exchange`] frames. The
//! [`EdgeGreedy`] inner program is the by-label sequential greedy for any
//! [`EdgeProblem`] — the trivial `O(Δ_L)`-awake baseline on `L(G)` —
//! executed unchanged by the serial engine or the worker-pool executor
//! ([`solve_edges`] / [`solve_edges_threaded`]).

use crate::resilient::run_stage;
use crate::virt::{VEnvelope, VOutgoing, VirtMsg, VirtualProgram};
use awake_graphs::{Graph, NodeId};
use awake_olocal::edge::{EdgeGreedyView, EdgeIndex, EdgeProblem};
use awake_sleeping::{
    threaded, Action, CheckpointError, Codec, Config, Engine, Envelope, FaultPlan, Metrics, Outbox,
    Persist, Program, Reader, Round, SimError, View, Writer,
};
use std::sync::Arc;

/// Cluster-level input of one edge: what both replicas are constructed
/// from (deliberately symmetric, like [`crate::virt::VertexInput`] —
/// host-specific data never reaches the replica, so the two replicas of
/// an edge are identical).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeCtx {
    /// The edge's label (1-based rank by identifier pair, see
    /// [`EdgeIndex`]).
    pub label: u64,
    /// Identifiers of the endpoints, `(smaller, larger)`.
    pub endpoints: (u64, u64),
    /// Degree in the line graph.
    pub line_degree: usize,
    /// Sorted labels of the adjacent edges.
    pub adjacent: Vec<u64>,
}

/// One hosted replica of an edge program.
struct Replica<VP: VirtualProgram> {
    vp: VP,
    label: u64,
    /// Sorted adjacent labels (incoming-message filter: both replicas
    /// must see identical inboxes, so each host keeps exactly the
    /// messages from `L(G)`-neighbors).
    adj: Vec<u64>,
    /// This host owns the edge (it is the higher-ident endpoint) and
    /// reports its output.
    owned: bool,
    /// Port to the edge's other endpoint (the far replica's host).
    far_port: NodeId,
    /// The replica's next awake virtual round.
    next: Round,
    /// Messages primed for virtual round `next`.
    outgoing: Vec<(u16, Option<u64>, VP::Msg)>,
    done: bool,
    output: Option<VP::Output>,
}

impl<VP: VirtualProgram> Replica<VP> {
    /// Prepare the outgoing messages for the replica's next awake round
    /// (the [`crate::virt`] `prime` step). `buf` is the host's pooled
    /// send scratch — cleared here, so primes allocate nothing once the
    /// buffers reach steady-state capacity.
    fn prime(&mut self, next: Round, buf: &mut Vec<VOutgoing<VP::Msg>>) {
        self.next = next;
        buf.clear();
        self.vp.send(next, buf);
        self.outgoing.clear();
        self.outgoing
            .extend(buf.drain(..).enumerate().map(|(i, o)| match o {
                VOutgoing::ToCluster(j, m) => (i as u16, Some(j), m),
                VOutgoing::Broadcast(m) => (i as u16, None, m),
            }));
    }
}

/// The line-graph host: a Sleeping-model [`Program`] for one node of `G`
/// executing the replicas of all its incident edges' [`VirtualProgram`]s
/// on `L(G)`.
///
/// Node output is the `(label, output)` list of the edges the node
/// **owns** (is the higher-ident endpoint of), ascending by label;
/// isolated nodes never wake and output an empty list.
pub struct LineGraphHost<VP: VirtualProgram> {
    /// Replicas ascending by label.
    replicas: Vec<Replica<VP>>,
    /// Local same-round deliveries `(replica idx, from label, seq, msg)`,
    /// filled in `send`, drained in `receive`.
    local: Vec<(u32, u64, u16, VP::Msg)>,
    /// Pooled merge scratch, local stream: entries for the current
    /// replica, born sorted by `(sender label, seq)`.
    lmerge: Vec<(u64, u16, VP::Msg)>,
    /// Pooled merge scratch, cross-edge stream (needs one stable sort).
    xmerge: Vec<(u64, u16, VP::Msg)>,
    /// Pooled merged inbox handed to the replica each round.
    venv: Vec<VEnvelope<VP::Msg>>,
    /// Pooled scratch for [`VirtualProgram::send`] during primes.
    send_buf: Vec<VOutgoing<VP::Msg>>,
}

/// Build one [`LineGraphHost`] per node of `g`, constructing each edge's
/// replica pair through `factory` (called once per (edge, endpoint) with
/// the edge's symmetric [`EdgeCtx`] — implementations must be
/// deterministic functions of it).
pub fn hosts<VP, F>(g: &Graph, idx: &EdgeIndex, factory: F) -> Vec<LineGraphHost<VP>>
where
    VP: VirtualProgram,
    F: Fn(&EdgeCtx) -> VP,
{
    let mut out: Vec<LineGraphHost<VP>> = g
        .nodes()
        .map(|_| LineGraphHost {
            replicas: Vec::new(),
            local: Vec::new(),
            lmerge: Vec::new(),
            xmerge: Vec::new(),
            venv: Vec::new(),
            send_buf: Vec::new(),
        })
        .collect();
    let mut buf = Vec::new();
    for i in 0..idx.m() {
        let (u, v) = idx.edges()[i];
        let ctx = EdgeCtx {
            label: idx.label(i),
            endpoints: idx.endpoint_idents(g, i),
            line_degree: idx.line_degree(g, i),
            adjacent: idx.adjacent_labels(i),
        };
        let owner = idx.owner(g, i);
        for (host, far) in [(u, v), (v, u)] {
            let mut rep = Replica {
                vp: factory(&ctx),
                label: ctx.label,
                adj: ctx.adjacent.clone(),
                owned: host == owner,
                far_port: far,
                next: 1,
                // Primes refill this in place; one slot absorbs the
                // common single-broadcast case without a mid-run grow.
                outgoing: Vec::with_capacity(1),
                done: false,
                output: None,
            };
            // All virtual nodes are awake at virtual round 1.
            rep.prime(1, &mut buf);
            out[host.index()].replicas.push(rep);
        }
    }
    for h in &mut out {
        h.replicas.sort_by_key(|r| r.label);
        // Warm the pooled scratch now that the replica count is known, so
        // steady state never grows a buffer mid-run: per round at most
        // every co-hosted replica hears from every other (`local`, and its
        // per-replica `lmerge`/`xmerge`/`venv` splits are each no larger).
        let r = h.replicas.len();
        h.local.reserve(r.saturating_sub(1) * 2);
        h.lmerge.reserve(r);
        h.xmerge.reserve(r);
        h.venv.reserve(r * 2);
        h.send_buf.reserve(2);
    }
    out
}

impl<VP: VirtualProgram> Program for LineGraphHost<VP> {
    type Msg = VirtMsg<(), VP::Msg>;
    type Output = Vec<(u64, VP::Output)>;

    fn initial_wake(&self) -> Option<Round> {
        if self.replicas.is_empty() {
            None
        } else {
            Some(1)
        }
    }

    fn send(&mut self, view: &View<'_>, out: &mut Outbox<Self::Msg>) {
        let round = view.round;
        self.local.clear();
        for i in 0..self.replicas.len() {
            if self.replicas[i].done || self.replicas[i].next != round {
                continue;
            }
            for k in 0..self.replicas[i].outgoing.len() {
                let (seq, to, _) = self.replicas[i].outgoing[k];
                // Any two edges at this host share this vertex, so every
                // co-hosted replica is an L(G)-neighbor of the sender.
                for j in 0..self.replicas.len() {
                    if j == i {
                        continue;
                    }
                    let ship = match to {
                        Some(l) => l == self.replicas[j].label,
                        None => true,
                    };
                    if !ship {
                        continue;
                    }
                    let msg = self.replicas[i].outgoing[k].2.clone();
                    self.local
                        .push((j as u32, self.replicas[i].label, seq, msg.clone()));
                    // The far replica of edge j must see the identical
                    // message; its host is one hop across edge j.
                    out.to(
                        self.replicas[j].far_port,
                        VirtMsg::Exchange {
                            from: self.replicas[i].label,
                            to,
                            seq,
                            msg,
                        },
                    );
                }
            }
        }
    }

    fn receive(&mut self, view: &View<'_>, inbox: &[Envelope<Self::Msg>]) -> Action {
        let round = view.round;
        let mut min_next: Option<Round> = None;
        let LineGraphHost {
            replicas,
            local,
            lmerge,
            xmerge,
            venv,
            send_buf,
        } = self;
        for (j, rep) in replicas.iter_mut().enumerate() {
            if rep.done {
                continue;
            }
            if rep.next != round {
                let n = rep.next;
                min_next = Some(min_next.map_or(n, |m| m.min(n)));
                continue;
            }
            // Merge local and cross-edge deliveries for replica j: keep
            // exactly the messages from L(G)-neighbors addressed to this
            // edge, ordered by (sender, seq) with duplicates dropped —
            // both replicas of the edge construct this very sequence.
            //
            // The local stream is born sorted: `send` visits senders in
            // ascending replica (= label) order and seqs ascend within a
            // sender, so only the cross-edge stream needs a sort; the two
            // streams then zip through a pre-sized two-way merge. Ties
            // take the local entry first — exactly what the old stable
            // sort over [local..., cross...] + keep-first dedup did, which
            // matters when faults duplicate frames.
            lmerge.clear();
            for (tgt, from, seq, msg) in local.iter() {
                if *tgt == j as u32 {
                    lmerge.push((*from, *seq, msg.clone()));
                }
            }
            debug_assert!(
                lmerge
                    .windows(2)
                    .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
                "local deliveries must be born sorted by (sender, seq)"
            );
            xmerge.clear();
            for e in inbox {
                if let VirtMsg::Exchange { from, to, seq, msg } = &e.msg {
                    let addressed = match to {
                        Some(l) => *l == rep.label,
                        None => true,
                    };
                    if addressed && rep.adj.binary_search(from).is_ok() {
                        xmerge.push((*from, *seq, msg.clone()));
                    }
                }
            }
            xmerge.sort_by_key(|a| (a.0, a.1));
            venv.clear();
            venv.reserve(lmerge.len() + xmerge.len());
            {
                let mut a = lmerge.drain(..).peekable();
                let mut b = xmerge.drain(..).peekable();
                let mut last: Option<(u64, u16)> = None;
                loop {
                    let take_local = match (a.peek(), b.peek()) {
                        (Some(x), Some(y)) => (x.0, x.1) <= (y.0, y.1),
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    let (from, seq, msg) = if take_local {
                        a.next().expect("peeked")
                    } else {
                        b.next().expect("peeked")
                    };
                    if last != Some((from, seq)) {
                        last = Some((from, seq));
                        venv.push(VEnvelope { from, msg });
                    }
                }
            }
            match rep.vp.receive(round, venv) {
                Action::Stay => rep.prime(round + 1, send_buf),
                // Deliberately unvalidated: a non-future wake round is
                // propagated to the engine below, which reports
                // `SimError::InvalidSleep` for this host — the same error
                // surface every other program has.
                Action::SleepUntil(x) => rep.prime(x, send_buf),
                Action::Halt => {
                    rep.done = true;
                    rep.output = rep.vp.output();
                    assert!(
                        rep.output.is_some(),
                        "edge program halted without an output"
                    );
                }
            }
            if !rep.done {
                let n = rep.next;
                min_next = Some(min_next.map_or(n, |m| m.min(n)));
            }
        }
        local.clear();
        match min_next {
            None => Action::Halt,
            Some(n) if n == round + 1 => Action::Stay,
            Some(n) => Action::SleepUntil(n),
        }
    }

    fn output(&self) -> Option<Self::Output> {
        if self.replicas.iter().any(|r| !r.done) {
            return None;
        }
        // A filtered collect has no size hint and would grow the vector
        // several times per host; count first so this is one allocation.
        let owned = self.replicas.iter().filter(|r| r.owned).count();
        let mut out = Vec::with_capacity(owned);
        out.extend(self.replicas.iter().filter(|r| r.owned).map(|r| {
            (
                r.label,
                r.output.clone().expect("halted replicas have outputs"),
            )
        }));
        Some(out)
    }

    fn span(&self) -> &'static str {
        "linegraph"
    }
}

/// The by-label sequential greedy for an [`EdgeProblem`], as a
/// [`VirtualProgram`] on `L(G)` — the line-graph counterpart of
/// [`crate::trivial::TrivialGreedy`]. Edge `e` wakes at virtual round 1,
/// at round `l` for every adjacent label `l < label(e)` (to hear those
/// decisions), and decides + announces at virtual round `label(e)`.
/// Awake `deg_L(e) + 2 = O(Δ_L)` virtual rounds; `m` rounds total.
pub struct EdgeGreedy<EP: EdgeProblem> {
    /// The run-wide shared context — every replica of every edge holds
    /// the same `Arc` (the [`VirtMsg::Bag`] sharing pattern applied to
    /// construction: one problem clone and one input vector per run,
    /// not two per edge).
    shared: Arc<GreedyShared<EP>>,
    /// This edge's index into [`GreedyShared::inputs`].
    input_idx: usize,
    label: u64,
    endpoints: (u64, u64),
    line_degree: usize,
    /// Ascending virtual wake rounds.
    wakes: Vec<Round>,
    cursor: usize,
    collected: Vec<(u64, EP::Output)>,
    decided: Option<EP::Output>,
}

/// The immutable per-run context shared by every [`EdgeGreedy`] replica:
/// the problem instance and the full per-edge input vector (canonical
/// [`EdgeIndex`] order), behind one `Arc`.
#[derive(Debug)]
pub struct GreedyShared<EP: EdgeProblem> {
    /// The problem being solved.
    pub problem: EP,
    /// Per-edge inputs in canonical [`EdgeIndex`] order.
    pub inputs: Vec<EP::Input>,
}

impl<EP: EdgeProblem> EdgeGreedy<EP> {
    /// The greedy program for one edge: `shared` is the run-wide context
    /// (cheaply cloned per replica), `input_idx` the edge's index into
    /// `shared.inputs`.
    pub fn new(shared: Arc<GreedyShared<EP>>, input_idx: usize, ctx: &EdgeCtx) -> Self {
        let mut wakes: Vec<Round> = std::iter::once(1)
            .chain(ctx.adjacent.iter().filter(|&&l| l < ctx.label).copied())
            .chain(std::iter::once(ctx.label))
            .collect();
        wakes.sort_unstable();
        wakes.dedup();
        // `collected` holds one announcement per smaller adjacent label —
        // at most every wake round but the deciding one — so sizing it
        // here keeps the run itself allocation-free.
        let collected = Vec::with_capacity(wakes.len().saturating_sub(1));
        EdgeGreedy {
            shared,
            input_idx,
            label: ctx.label,
            endpoints: ctx.endpoints,
            line_degree: ctx.line_degree,
            wakes,
            cursor: 0,
            collected,
            decided: None,
        }
    }
}

impl<EP> VirtualProgram for EdgeGreedy<EP>
where
    EP: EdgeProblem,
{
    /// An announcement: `(label, decided output)`.
    type Msg = (u64, EP::Output);
    type Output = EP::Output;
    type Payload = ();

    fn send(&mut self, vround: Round, out: &mut Vec<VOutgoing<Self::Msg>>) {
        if vround != self.label {
            return;
        }
        // Decide now: every adjacent edge with a smaller label announced
        // at its own (earlier) label round, and this edge was awake then.
        let view = EdgeGreedyView {
            label: self.label,
            endpoints: self.endpoints,
            line_degree: self.line_degree,
            input: &self.shared.inputs[self.input_idx],
            out_neighbors: &self.collected,
        };
        let decision = self.shared.problem.decide(&view);
        self.decided = Some(decision.clone());
        out.push(VOutgoing::Broadcast((self.label, decision)));
    }

    fn receive(&mut self, vround: Round, inbox: &[VEnvelope<Self::Msg>]) -> Action {
        for e in inbox {
            let (l, out) = &e.msg;
            if *l < self.label && !self.collected.iter().any(|(k, _)| k == l) {
                self.collected.push((*l, out.clone()));
            }
        }
        while self.cursor < self.wakes.len() && self.wakes[self.cursor] <= vround {
            self.cursor += 1;
        }
        match self.wakes.get(self.cursor) {
            Some(&r) => Action::SleepUntil(r),
            None => Action::Halt,
        }
    }

    fn output(&self) -> Option<EP::Output> {
        self.decided.clone()
    }
}

/// A completed edge-problem run: per-edge outputs in [`EdgeIndex`]
/// canonical order, plus the engine's full resource accounting.
#[derive(Debug)]
pub struct EdgeRun<O> {
    /// Output of each edge (canonical [`Graph::edges`] order).
    pub outputs: Vec<O>,
    /// The underlying engine run's metrics.
    pub metrics: Metrics,
}

/// Solve an [`EdgeProblem`] on the serial engine via the line-graph
/// adapter with the [`EdgeGreedy`] inner program.
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if `inputs.len() != g.m()`.
pub fn solve_edges<EP>(
    g: &Graph,
    problem: &EP,
    inputs: &[EP::Input],
    config: Config,
) -> Result<EdgeRun<EP::Output>, SimError>
where
    EP: EdgeProblem + Clone,
{
    let idx = EdgeIndex::new(g);
    let programs = greedy_hosts(g, &idx, problem, inputs);
    let run = Engine::new(g, config).run(programs)?;
    Ok(collect(&idx, run.outputs, run.metrics))
}

/// [`solve_edges`] on the worker-pool executor — bit-for-bit identical
/// results, per the executor equivalence contract.
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if `inputs.len() != g.m()`.
pub fn solve_edges_threaded<EP>(
    g: &Graph,
    problem: &EP,
    inputs: &[EP::Input],
    config: Config,
    workers: usize,
) -> Result<EdgeRun<EP::Output>, SimError>
where
    EP: EdgeProblem + Clone + Send + Sync,
{
    let idx = EdgeIndex::new(g);
    let programs = greedy_hosts(g, &idx, problem, inputs);
    let run = threaded::run_threaded(g, programs, config, workers)?;
    Ok(collect(&idx, run.outputs, run.metrics))
}

/// [`solve_edges`] under a seeded fault plan, following the crate's
/// [recovery contract](crate::resilient): the hosts run wrapped in
/// [`Redundant`](awake_sleeping::Redundant) time redundancy sized from
/// `plan`, so crash-restarts of a host (which rewind *all* of its
/// replicas at once), dropped `VirtMsg` frames, duplicates, and delays
/// are all masked by retransmission inside each stretched window.
/// Deterministic and bit-for-bit identical to
/// [`solve_edges_threaded_faulty`] under the same plan at any worker
/// count. With a quiet period after the last fault the outputs stay
/// valid and the accounting stays within
/// [`crate::bounds::degraded_budget_for`]. An inactive plan runs exactly
/// like [`solve_edges`].
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if `inputs.len() != g.m()`.
pub fn solve_edges_faulty<EP>(
    g: &Graph,
    problem: &EP,
    inputs: &[EP::Input],
    config: Config,
    plan: &FaultPlan,
) -> Result<EdgeRun<EP::Output>, SimError>
where
    EP: EdgeProblem + Clone + Send + Sync,
    EP::Output: Codec,
{
    solve_edges_resilient(g, problem, inputs, config, plan, None)
}

/// [`solve_edges_faulty`] on the worker-pool executor.
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if `inputs.len() != g.m()`.
pub fn solve_edges_threaded_faulty<EP>(
    g: &Graph,
    problem: &EP,
    inputs: &[EP::Input],
    config: Config,
    workers: usize,
    plan: &FaultPlan,
) -> Result<EdgeRun<EP::Output>, SimError>
where
    EP: EdgeProblem + Clone + Send + Sync,
    EP::Output: Codec,
{
    solve_edges_resilient(g, problem, inputs, config, plan, Some(workers))
}

fn solve_edges_resilient<EP>(
    g: &Graph,
    problem: &EP,
    inputs: &[EP::Input],
    config: Config,
    plan: &FaultPlan,
    workers: Option<usize>,
) -> Result<EdgeRun<EP::Output>, SimError>
where
    EP: EdgeProblem + Clone + Send + Sync,
    EP::Output: Codec,
{
    let idx = EdgeIndex::new(g);
    let programs = greedy_hosts(g, &idx, problem, inputs);
    let base_rounds = crate::bounds::linegraph_rounds(g).max(1);
    let run = run_stage(g, programs, config, base_rounds, Some(plan), workers)?;
    Ok(collect(&idx, run.outputs, run.metrics))
}

/// The [`EdgeGreedy`] host set for `problem` (exposed so benches and
/// tests can drive the executors directly).
pub fn greedy_hosts<EP>(
    g: &Graph,
    idx: &EdgeIndex,
    problem: &EP,
    inputs: &[EP::Input],
) -> Vec<LineGraphHost<EdgeGreedy<EP>>>
where
    EP: EdgeProblem + Clone,
{
    assert_eq!(inputs.len(), idx.m(), "inputs length mismatch");
    let shared = Arc::new(GreedyShared {
        problem: problem.clone(),
        inputs: inputs.to_vec(),
    });
    hosts(g, idx, |ctx| {
        let i = idx.index_of_label(ctx.label);
        EdgeGreedy::new(Arc::clone(&shared), i, ctx)
    })
}

/// Dynamic replica state: the hosted program's own state plus the
/// prime-step bookkeeping (`next`, `outgoing`, `done`, `output`). The
/// topology fields (`label`, `adj`, `owned`, `far_port`) are rebuilt by
/// [`hosts`] and stay put. `local` and the pooled merge/send buffers are
/// intra-round scratch: empty at round boundaries, and explicitly
/// cleared on restore so a crash restore applied mid-round (after `send`
/// filled `local`) fully rewinds to the start-of-round image.
impl<VP> Persist for LineGraphHost<VP>
where
    VP: VirtualProgram + Persist,
    VP::Msg: Codec,
    VP::Output: Codec,
{
    fn save(&self, w: &mut Writer) {
        self.replicas.len().encode(w);
        for rep in &self.replicas {
            rep.vp.save(w);
            rep.next.encode(w);
            rep.outgoing.encode(w);
            rep.done.encode(w);
            rep.output.encode(w);
        }
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let count: usize = r.get()?;
        if count != self.replicas.len() {
            return Err(CheckpointError::Corrupt("replica count mismatch"));
        }
        for rep in &mut self.replicas {
            rep.vp.restore(r)?;
            rep.next = r.get()?;
            rep.outgoing = r.get()?;
            rep.done = r.get()?;
            rep.output = r.get()?;
        }
        self.local.clear();
        self.lmerge.clear();
        self.xmerge.clear();
        self.venv.clear();
        self.send_buf.clear();
        Ok(())
    }
}

/// Dynamic state: the schedule cursor, collected lower decisions and the
/// own decision. The schedule itself (`wakes`) is derived from the static
/// [`EdgeCtx`] in [`EdgeGreedy::new`] and stays put.
impl<EP: EdgeProblem> Persist for EdgeGreedy<EP>
where
    EP::Output: Codec,
{
    fn save(&self, w: &mut Writer) {
        self.cursor.encode(w);
        self.collected.encode(w);
        self.decided.encode(w);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.cursor = r.get()?;
        self.collected = r.get()?;
        self.decided = r.get()?;
        Ok(())
    }
}

/// Flatten per-node owned outputs back to canonical edge order.
fn collect<O: Clone + std::fmt::Debug>(
    idx: &EdgeIndex,
    node_outputs: Vec<Vec<(u64, O)>>,
    metrics: Metrics,
) -> EdgeRun<O> {
    let mut outputs: Vec<Option<O>> = vec![None; idx.m()];
    for owned in &node_outputs {
        for (label, out) in owned {
            let i = idx.index_of_label(*label);
            debug_assert!(outputs[i].is_none(), "edge {i} reported twice");
            outputs[i] = Some(out.clone());
        }
    }
    EdgeRun {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every edge has exactly one owner"))
            .collect(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::generators;
    use awake_olocal::edge::{solve_edges_sequentially, EdgeColoring, MaximalMatching};

    fn families() -> Vec<Graph> {
        vec![
            generators::path(9),
            generators::cycle(8),
            generators::star(12),
            generators::complete(7),
            generators::gnp(32, 0.15, 4),
            generators::random_tree(24, 2),
            generators::grid(4, 5),
            generators::caterpillar(5, 2),
            generators::lollipop(5, 4),
            generators::path(1), // no edges: every host inactive
            GraphBuilder_disconnected(),
        ]
    }

    /// Two components + an isolated node: exercises bystander hosts.
    #[allow(non_snake_case)]
    fn GraphBuilder_disconnected() -> Graph {
        let mut b = awake_graphs::GraphBuilder::new(7);
        b.edge(0, 1).edge(1, 2).edge(4, 5).edge(5, 6);
        b.build().unwrap()
    }

    #[test]
    fn adapter_matches_the_sequential_reference() {
        for g in families() {
            let idx = EdgeIndex::new(&g);
            let inputs = vec![(); idx.m()];
            let mat = solve_edges(&g, &MaximalMatching, &inputs, Config::default())
                .unwrap()
                .outputs;
            let mat_seq = solve_edges_sequentially(&MaximalMatching, &g, &idx, &inputs);
            assert_eq!(mat, mat_seq, "matching diverges on {g:?}");
            MaximalMatching.validate(&g, &inputs, &mat).unwrap();

            let col = solve_edges(&g, &EdgeColoring, &inputs, Config::default())
                .unwrap()
                .outputs;
            let col_seq = solve_edges_sequentially(&EdgeColoring, &g, &idx, &inputs);
            assert_eq!(col, col_seq, "coloring diverges on {g:?}");
            EdgeColoring.validate(&g, &inputs, &col).unwrap();
        }
    }

    #[test]
    fn adapter_awake_cost_is_line_degree_bounded() {
        // A host's awake rounds are at most the union of its incident
        // edges' wake rounds: Σ_e∋v (deg_L(e) + 2).
        let g = generators::gnp(40, 0.12, 9);
        let idx = EdgeIndex::new(&g);
        let run = solve_edges(&g, &MaximalMatching, &vec![(); idx.m()], Config::default()).unwrap();
        for v in g.nodes() {
            let bound: u64 = idx
                .incident(v)
                .iter()
                .map(|&i| idx.line_degree(&g, i as usize) as u64 + 2)
                .sum();
            assert!(
                run.metrics.awake[v.index()] <= bound.max(1),
                "node {v}: awake {} > bound {bound}",
                run.metrics.awake[v.index()]
            );
        }
        // Round complexity ≤ m (the largest label's announce round).
        assert!(run.metrics.rounds <= idx.m() as u64 + 1);
    }

    #[test]
    fn custom_idents_change_the_processing_order_consistently() {
        let g = generators::cycle(7).with_idents(vec![70, 10, 60, 20, 50, 30, 40]);
        let idx = EdgeIndex::new(&g);
        let run = solve_edges(&g, &MaximalMatching, &vec![(); idx.m()], Config::default()).unwrap();
        let seq = solve_edges_sequentially(&MaximalMatching, &g, &idx, &vec![(); idx.m()]);
        assert_eq!(run.outputs, seq);
        MaximalMatching
            .validate(&g, &vec![(); idx.m()], &run.outputs)
            .unwrap();
    }

    #[test]
    fn serial_and_threaded_adapters_agree() {
        let g = generators::gnp(28, 0.18, 11);
        let inputs = vec![(); g.m()];
        let a = solve_edges(&g, &EdgeColoring, &inputs, Config::default()).unwrap();
        for workers in [1, 2, 4] {
            let b = solve_edges_threaded(&g, &EdgeColoring, &inputs, Config::default(), workers)
                .unwrap();
            assert_eq!(a.outputs, b.outputs, "workers = {workers}");
            assert_eq!(a.metrics, b.metrics, "workers = {workers}");
        }
    }

    /// An inner program that requests an invalid (non-future) wake round
    /// at virtual round 1 when its edge is marked bad: the host must
    /// surface it as the engine's `InvalidSleep`, like any other program.
    struct BadSleeper {
        bad: bool,
    }

    impl VirtualProgram for BadSleeper {
        type Msg = ();
        type Output = ();
        type Payload = ();
        fn send(&mut self, _vround: Round, _out: &mut Vec<VOutgoing<()>>) {}
        fn receive(&mut self, vround: Round, _inbox: &[VEnvelope<()>]) -> Action {
            if self.bad {
                Action::SleepUntil(vround) // not strictly future
            } else {
                Action::Halt
            }
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn invalid_inner_sleep_surfaces_as_engine_error() {
        let g = generators::path(6);
        let idx = EdgeIndex::new(&g);
        // Mark the middle edge bad: its lower endpoint is v2.
        let bad_label = idx.label(2);
        let programs = hosts(&g, &idx, |ctx| BadSleeper {
            bad: ctx.label == bad_label,
        });
        let err = Engine::new(&g, Config::default())
            .run(programs)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidSleep {
                node: NodeId(2),
                round: 1,
                until: 1
            }
        );
    }
}
