//! The Barenboim–Maimon baseline \[BM21\]: any O-LOCAL problem with awake
//! complexity `O(log Δ + log* n)`.
//!
//! Pipeline (composed per Lemma 8): Linial's reduction to an
//! `O(Δ²)`-coloring (`O(log* n)` always-awake rounds), then the Lemma 11
//! wake-schedule solver on that coloring (`O(log Δ)` awake rounds,
//! `O(Δ²)` total rounds).

use crate::bounds;
use crate::compose::Composition;
use crate::lemma11::ColorScheduled;
use crate::linial::{self, ColorReduction};
use crate::resilient::run_stage;
use awake_graphs::Graph;
use awake_olocal::OLocalProblem;
use awake_sleeping::{Codec, Config, Engine, FaultPlan, SimError};

/// Result of a BM21 run.
#[derive(Debug)]
pub struct Bm21Result<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// Stage-by-stage accounting (Lemma 8 totals).
    pub composition: Composition,
    /// The intermediate `O(Δ²)` coloring (1-based).
    pub colors: Vec<u64>,
}

/// Solve `problem` on `g` with the BM21 algorithm.
///
/// `delta` defaults to the graph's maximum degree (the standard global
/// knowledge assumption of \[BM21\]); pass a larger bound to study
/// sensitivity.
///
/// # Errors
/// Propagates simulator errors (a bug in the schedule, or an exceeded
/// round budget).
pub fn solve<P>(
    g: &Graph,
    problem: &P,
    inputs: &[P::Input],
    delta: Option<usize>,
) -> Result<Bm21Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone,
{
    assert_eq!(inputs.len(), g.n(), "inputs length mismatch");
    let delta = delta.unwrap_or_else(|| g.max_degree()).max(1) as u64;
    let mut composition = Composition::new();

    // Stage 1: Linial to k = O(Δ²) colors. Hoist the `O(n)` ident-bound
    // scan out of the per-node loop — inline it was `O(n²)`, which
    // dominated the whole sweep past n ≈ 2^14.
    let ident_bound = g.ident_bound();
    let programs: Vec<ColorReduction> = g
        .nodes()
        .map(|v| ColorReduction::from_ident(g.ident(v), ident_bound, delta))
        .collect();
    let run = Engine::new(g, Config::default()).run(programs)?;
    let k = linial::final_palette(delta);
    let colors: Vec<u64> = run.outputs.iter().map(|c| c + 1).collect();
    composition.push("bm21/linial", run.metrics);

    // Stage 2: Lemma 11 on the computed coloring.
    let programs: Vec<ColorScheduled<P>> = g
        .nodes()
        .map(|v| {
            ColorScheduled::new(
                problem.clone(),
                inputs[v.index()].clone(),
                colors[v.index()],
                k,
            )
        })
        .collect();
    let run = Engine::new(g, Config::default()).run(programs)?;
    composition.push("bm21/lemma11", run.metrics);

    Ok(Bm21Result {
        outputs: run.outputs,
        composition,
        colors,
    })
}

/// [`solve`] under the crate's [recovery contract](crate::resilient):
/// both stages run wrapped in [`Redundant`](awake_sleeping::Redundant)
/// time redundancy sized from `plan`, on the serial engine or (with
/// `workers`) the worker-pool executor — bit-for-bit identical either
/// way. With a quiet period after the last fault the outputs stay valid
/// and the accounting stays within
/// [`bounds::degraded_budget_for`] for
/// [`BoundAlgo::Bm21`](bounds::BoundAlgo::Bm21). An inactive plan runs
/// exactly like [`solve`].
///
/// # Errors
/// Propagates simulator errors.
pub fn solve_faulty<P>(
    g: &Graph,
    problem: &P,
    inputs: &[P::Input],
    delta: Option<usize>,
    plan: &FaultPlan,
    workers: Option<usize>,
) -> Result<Bm21Result<P::Output>, SimError>
where
    P: OLocalProblem + Clone + Send + Sync,
    P::Output: Codec,
{
    assert_eq!(inputs.len(), g.n(), "inputs length mismatch");
    let delta = delta.unwrap_or_else(|| g.max_degree()).max(1) as u64;
    let stage_budgets = bounds::bm21_stage_budgets(g, delta);
    let mut composition = Composition::new();

    let ident_bound = g.ident_bound();
    let programs: Vec<ColorReduction> = g
        .nodes()
        .map(|v| ColorReduction::from_ident(g.ident(v), ident_bound, delta))
        .collect();
    let run = run_stage(
        g,
        programs,
        Config::default(),
        stage_budgets[0].rounds,
        Some(plan),
        workers,
    )?;
    let k = linial::final_palette(delta);
    let colors: Vec<u64> = run.outputs.iter().map(|c| c + 1).collect();
    composition.push("bm21/linial", run.metrics);

    let programs: Vec<ColorScheduled<P>> = g
        .nodes()
        .map(|v| {
            ColorScheduled::new(
                problem.clone(),
                inputs[v.index()].clone(),
                colors[v.index()],
                k,
            )
        })
        .collect();
    let run = run_stage(
        g,
        programs,
        Config::default(),
        stage_budgets[1].rounds,
        Some(plan),
        workers,
    )?;
    composition.push("bm21/lemma11", run.metrics);

    Ok(Bm21Result {
        outputs: run.outputs,
        composition,
        colors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::{coloring, generators};
    use awake_olocal::problems::{
        DegreePlusOneListColoring, DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover,
    };

    #[test]
    fn bm21_solves_all_problems() {
        for g in [
            generators::gnp(70, 0.08, 6),
            generators::random_regular(60, 5, 1),
            generators::grid(7, 8),
            generators::complete(9),
        ] {
            let r = solve(&g, &DeltaPlusOneColoring, &vec![(); g.n()], None).unwrap();
            DeltaPlusOneColoring
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();
            coloring::check_proper(&g, &r.colors).unwrap();
            assert!(
                r.composition.max_awake() <= bounds::bm21_awake(&g),
                "awake {} > bound {}",
                r.composition.max_awake(),
                bounds::bm21_awake(&g)
            );

            let r = solve(&g, &MaximalIndependentSet, &vec![(); g.n()], None).unwrap();
            MaximalIndependentSet
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();

            let r = solve(&g, &MinimalVertexCover, &vec![(); g.n()], None).unwrap();
            MinimalVertexCover
                .validate(&g, &vec![(); g.n()], &r.outputs)
                .unwrap();

            let p = DegreePlusOneListColoring;
            let inputs = p.trivial_inputs(&g);
            let r = solve(&g, &p, &inputs, None).unwrap();
            p.validate(&g, &inputs, &r.outputs).unwrap();
        }
    }

    #[test]
    fn awake_grows_with_log_delta() {
        // On cliques Δ = n−1: awake ≈ 2 log n; on cycles Δ = 2: awake O(1).
        let clique = generators::complete(64);
        let cycle = generators::cycle(64);
        let a_clique = solve(&clique, &MaximalIndependentSet, &[(); 64], None)
            .unwrap()
            .composition
            .max_awake();
        let a_cycle = solve(&cycle, &MaximalIndependentSet, &[(); 64], None)
            .unwrap()
            .composition
            .max_awake();
        assert!(
            a_clique > a_cycle + 4,
            "clique {a_clique} should pay ≈2·log Δ more than cycle {a_cycle}"
        );
    }
}
