//! Theorem 13: computing a colored BFS-clustering with `2^{O(√log n)}`
//! colors, awake complexity `O(√log n · log* n)`, and polynomial round
//! complexity (Figure 3 of the paper).
//!
//! The pipeline iterates `k = 2⌈√log₂ n⌉` times. Iteration `i` starts from
//! a uniquely-labeled BFS-clustering `(ℓ_{i−1}, δ_{i−1})` of the surviving
//! subgraph `G_{i−1}` (iteration 1: singletons labeled by identifier) and:
//!
//! 1. runs **Lemma 15** on the virtual graph `H_{i−1}` through the
//!    **Lemma 7** simulator — every vertex gets `(γ', δ', ℓ_aux, in_U)`;
//! 2. **finalizes** the `U` vertices: their member nodes adopt the final
//!    color `(i−1)·a·b² + γ'` with their current depth `δ_{i−1}(v)`, and
//!    leave the computation (they sleep through all later stages);
//! 3. runs **Lemma 14** on the rest to flatten `(ℓ_{i−1}, δ_{i−1})` +
//!    `(γ', δ')` into the next clustering `(ℓ_i, δ_i)` of `G_i`.
//!
//! Since Lemma 15 leaves at most `n_H/b` non-`U` vertices and
//! `b^k ≥ n²`, the graph is exhausted after at most `k` iterations. Colors
//! assigned at different iterations come from disjoint ranges, and two
//! same-colored clusters of one iteration are never adjacent (they were
//! distinct vertices of a properly-colored `H[U]`), so the result is a
//! valid colored BFS-clustering — `validate_colored` checks it in tests.

use crate::bounds;
use crate::clustering::{Assign, Clustering};
use crate::compose::Composition;
use crate::lemma14::{lemma14_vrounds, L14Payload, TreeGatherVertex};
use crate::lemma15::{Lemma15Config, Lemma15Out, Lemma15Vertex};
use crate::linial;
use crate::params::Params;
use crate::resilient::run_stage;
use crate::virt::{virt_rounds, VirtSim};
use awake_graphs::Graph;
use awake_sleeping::{Config, FaultPlan, SimError};

/// The pipeline's result.
#[derive(Debug)]
pub struct Theorem13Result {
    /// The colored BFS-clustering `(γ, δ)` covering every node.
    pub clustering: Clustering,
    /// Stage-by-stage accounting.
    pub composition: Composition,
    /// Per-iteration statistics: `(iteration, clusters before, finalized
    /// nodes, surviving clusters)` — experiment E3's shrink-factor series.
    pub iteration_stats: Vec<IterationStats>,
}

/// Statistics of one pipeline iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationStats {
    /// Iteration number (1-based).
    pub iteration: u32,
    /// Vertices of `H` entering the iteration.
    pub clusters_before: usize,
    /// Nodes finalized (members of `U` vertices).
    pub finalized_nodes: usize,
    /// Surviving (big) clusters after the iteration — Lemma 15 bounds
    /// this by `clusters_before / b`.
    pub clusters_after: usize,
}

/// Compute a colored BFS-clustering of `g` (Theorem 13).
///
/// # Errors
/// Propagates simulator errors.
///
/// # Panics
/// Panics if the pipeline fails to exhaust the graph within `k`
/// iterations — that would contradict Lemma 15's shrink guarantee.
pub fn compute(g: &Graph, params: &Params) -> Result<Theorem13Result, SimError> {
    compute_impl(g, params, None, None)
}

/// [`compute`] under the crate's [recovery contract](crate::resilient):
/// every Lemma 15 / Lemma 14 stage runs wrapped in
/// [`Redundant`](awake_sleeping::Redundant) time redundancy sized from
/// `plan`, serially or (with `workers`) on the worker-pool executor —
/// bit-for-bit identical either way.
///
/// # Errors
/// Propagates simulator errors.
///
/// # Panics
/// Like [`compute`].
pub fn compute_faulty(
    g: &Graph,
    params: &Params,
    plan: &FaultPlan,
    workers: Option<usize>,
) -> Result<Theorem13Result, SimError> {
    compute_impl(g, params, Some(plan), workers)
}

fn compute_impl(
    g: &Graph,
    params: &Params,
    plan: Option<&FaultPlan>,
    workers: Option<usize>,
) -> Result<Theorem13Result, SimError> {
    let mut composition = Composition::new();
    let mut iteration_stats = Vec::new();
    let mut final_assign: Vec<Option<Assign>> = vec![None; g.n()];

    // Current uniquely-labeled clustering of the surviving subgraph;
    // None = finalized (out of the game).
    let mut current: Vec<Option<Assign>> = Clustering::singletons(g).assign;
    let db = params.depth_bound;

    for iteration in 1..=params.iterations {
        if current.iter().all(|a| a.is_none()) {
            break;
        }
        let cfg = Lemma15Config {
            b: params.b,
            label_bound: params.label_bound(iteration),
            ab2: params.ab2,
        };
        let clusters_before = Clustering {
            assign: current.clone(),
        }
        .labels()
        .len();

        // ---- Stage 1: Lemma 15 on H via Lemma 7 ----
        let budget = Config::with_max_rounds(virt_rounds(db, cfg.vrounds() + 2) + 2);
        let factory = move |vi: &crate::virt::VertexInput<()>| Lemma15Vertex::new(cfg, vi);
        let programs: Vec<VirtSim<Lemma15Vertex, _>> = g
            .nodes()
            .map(|v| match current[v.index()] {
                Some(a) => VirtSim::participant(a.label, a.depth, g.ident(v), (), db, factory),
                None => VirtSim::bystander(factory),
            })
            .collect();
        let base_rounds = virt_rounds(db, bounds::lemma15_vrounds(params, iteration));
        let run = run_stage(g, programs, budget, base_rounds, plan, workers)?;
        composition.push(format!("theorem13/iter{iteration}/lemma15"), run.metrics);
        let out15: Vec<Option<Lemma15Out>> = run.outputs;

        // ---- Finalize U vertices ----
        let mut finalized_nodes = 0;
        for v in g.nodes() {
            if let (Some(a), Some(o)) = (current[v.index()], &out15[v.index()]) {
                if o.in_u {
                    debug_assert!(o.gamma >= 1 && o.gamma <= params.ab2);
                    final_assign[v.index()] = Some(Assign {
                        label: (iteration as u64 - 1) * params.ab2 + o.gamma,
                        depth: a.depth,
                    });
                    current[v.index()] = None;
                    finalized_nodes += 1;
                }
            }
        }

        // ---- Stage 2: Lemma 14 on the survivors ----
        let survivors = current.iter().flatten().count();
        let mut clusters_after = 0;
        if survivors > 0 {
            let budget = Config::with_max_rounds(virt_rounds(db, lemma14_vrounds(db) + 2) + 2);
            let factory =
                move |vi: &crate::virt::VertexInput<L14Payload>| TreeGatherVertex::new(vi, db);
            let programs: Vec<VirtSim<TreeGatherVertex, _>> = g
                .nodes()
                .map(|v| match (current[v.index()], &out15[v.index()]) {
                    (Some(a), Some(o)) => {
                        let payload: L14Payload = (o.gamma, o.delta);
                        VirtSim::participant(a.label, a.depth, g.ident(v), payload, db, factory)
                    }
                    _ => VirtSim::bystander(factory),
                })
                .collect();
            let base_rounds = virt_rounds(db, bounds::lemma14_vrounds(params));
            let run = run_stage(g, programs, budget, base_rounds, plan, workers)?;
            composition.push(format!("theorem13/iter{iteration}/lemma14"), run.metrics);
            for v in g.nodes() {
                if current[v.index()].is_some() {
                    let o = run.outputs[v.index()]
                        .as_ref()
                        .expect("survivors participate in Lemma 14");
                    let depth = o.depths[&g.ident(v)];
                    current[v.index()] = Some(Assign { label: o.l2, depth });
                }
            }
            clusters_after = Clustering {
                assign: current.clone(),
            }
            .labels()
            .len();
        }

        iteration_stats.push(IterationStats {
            iteration,
            clusters_before,
            finalized_nodes,
            clusters_after,
        });
    }

    assert!(
        current.iter().all(|a| a.is_none()),
        "pipeline must exhaust the graph within k iterations"
    );
    Ok(Theorem13Result {
        clustering: Clustering {
            assign: final_assign,
        },
        composition,
        iteration_stats,
    })
}

/// Closed-form sanity used by tests: the paper's color bound `k·a·b²`.
pub fn color_bound(params: &Params) -> u64 {
    params.color_bound()
}

/// Linial's fixpoint at the pipeline's degree threshold (`a·b²`),
/// re-exported for reporting.
pub fn ab2(params: &Params) -> u64 {
    linial::final_palette(params.b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use awake_graphs::generators;

    fn check(g: &Graph) -> Theorem13Result {
        let params = Params::for_graph(g);
        let res = compute(g, &params).expect("pipeline runs");
        // Every node colored, validly, within the color bound.
        assert_eq!(res.clustering.assigned(), g.n());
        res.clustering.validate_colored(g).unwrap();
        assert!(res.clustering.max_label() <= params.color_bound());
        // Awake complexity within the closed-form budget.
        assert!(
            res.composition.max_awake() <= bounds::theorem13_awake(&params),
            "awake {} > bound {}",
            res.composition.max_awake(),
            bounds::theorem13_awake(&params)
        );
        res
    }

    #[test]
    fn theorem13_on_small_families() {
        for g in [
            generators::path(10),
            generators::cycle(12),
            generators::complete(8),
            generators::star(9),
            generators::grid(4, 5),
        ] {
            check(&g);
        }
    }

    #[test]
    fn theorem13_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::gnp(48, 0.12, seed);
            check(&g);
        }
    }

    #[test]
    fn lemma15_shrink_factor_holds() {
        // Surviving clusters after one iteration ≤ clusters_before / b.
        let g = generators::gnp(120, 0.08, 7);
        let params = Params::for_graph(&g);
        let res = check(&g);
        for s in &res.iteration_stats {
            assert!(
                (s.clusters_after as u64) * params.b <= s.clusters_before as u64,
                "iteration {}: {} survivors from {} (b = {})",
                s.iteration,
                s.clusters_after,
                s.clusters_before,
                params.b
            );
        }
    }
}
