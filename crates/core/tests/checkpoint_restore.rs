//! End-to-end checkpoint/restore invariant over the real algorithms:
//! *run-to-round-r + snapshot + restore + run-to-end* must be bit-for-bit
//! identical to the uninterrupted run — outputs, `Metrics`, and trace —
//! for every pause round `r`, on the serial engine and on the threaded
//! executor at any worker count, with and without fault injection, for a
//! node problem and an edge problem (via the line-graph adapter).
//!
//! These are the acceptance tests of the snapshot format: the unit tests
//! in `awake-sleeping` exercise synthetic programs; here the persisted
//! state is the shipped solvers'.

use awake_core::linegraph::greedy_hosts;
use awake_core::trivial::TrivialGreedy;
use awake_graphs::{generators, Graph};
use awake_olocal::edge::{EdgeIndex, MaximalMatching};
use awake_olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
use awake_olocal::EdgeProblem;
use awake_sleeping::{
    threaded, Codec, Config, Engine, FaultPlan, Paused, Persist, Program, Run, Snapshot, TraceMode,
};

/// Workers exercised on every resume (the acceptance matrix).
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Tracing stays on so "bit-for-bit" covers the event log, not just
/// outputs and counters.
fn traced() -> Config {
    Config {
        trace: TraceMode::Capped(1 << 20),
        ..Config::default()
    }
}

fn assert_same_run<O: PartialEq + std::fmt::Debug>(full: &Run<O>, resumed: &Run<O>, what: &str) {
    assert_eq!(full.outputs, resumed.outputs, "{what}: outputs diverged");
    assert_eq!(full.metrics, resumed.metrics, "{what}: metrics diverged");
    assert_eq!(full.trace, resumed.trace, "{what}: trace diverged");
    assert_eq!(
        full.trace_dropped, resumed.trace_dropped,
        "{what}: trace_dropped diverged"
    );
}

/// The property driver: snapshot the run at *every* round boundary and
/// check each restore — serial and at every worker count — lands on the
/// uninterrupted run exactly. Also asserts the serial and threaded
/// snapshot images are byte-identical at each pause round.
fn check_every_round<P, F>(g: &Graph, make: F, plan: Option<FaultPlan>)
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec + PartialEq + std::fmt::Debug,
    F: Fn() -> Vec<P>,
{
    let engine = Engine::new(g, traced());
    let full = match plan.as_ref() {
        None => engine.run(make()).unwrap(),
        Some(p) => engine.run_faulty(make(), p).unwrap(),
    };
    let mut paused_at_least_once = false;
    for r in 1..=full.metrics.rounds {
        let snap = match engine.snapshot_at(make(), plan.as_ref(), r).unwrap() {
            Paused::Snapshot(s) => s,
            // pausing after the final scheduled round completes instead
            Paused::Done(run) => {
                assert_same_run(&full, &run, &format!("completed at pause bound {r}"));
                continue;
            }
        };
        paused_at_least_once = true;
        assert_eq!(snap.round(), r, "snapshot stamps its pause bound");
        let threaded_snap =
            match threaded::snapshot_at_threaded(g, make(), traced(), 3, plan.as_ref(), r).unwrap()
            {
                Paused::Snapshot(s) => s,
                Paused::Done(_) => panic!("serial paused at {r} but threaded completed"),
            };
        assert_eq!(
            snap.as_bytes(),
            threaded_snap.as_bytes(),
            "serial and threaded snapshots differ at round {r}"
        );
        let resumed = engine.resume(make(), &snap).unwrap();
        assert_same_run(&full, &resumed, &format!("serial resume from round {r}"));
        for w in WORKERS {
            let resumed = threaded::resume_threaded(g, make(), &snap, w).unwrap();
            assert_same_run(
                &full,
                &resumed,
                &format!("{w}-worker resume from round {r}"),
            );
        }
    }
    assert!(
        paused_at_least_once,
        "run finished in {} round(s) — too short to exercise a pause",
        full.metrics.rounds
    );
}

fn mis_programs(g: &Graph) -> Vec<TrivialGreedy<MaximalIndependentSet>> {
    g.nodes()
        .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
        .collect()
}

#[test]
fn node_problem_snapshot_restore_is_bit_for_bit_at_every_round() {
    let g = generators::gnp(28, 0.15, 7);
    check_every_round(&g, || mis_programs(&g), None);
}

#[test]
fn fault_injected_run_snapshot_restore_is_bit_for_bit_at_every_round() {
    let g = generators::gnp(24, 0.18, 11);
    let plan = FaultPlan {
        drop_ppm: 60_000,
        dup_ppm: 40_000,
        delay_ppm: 40_000,
        crash_ppm: 25_000,
        delay_rounds: 2,
        ..FaultPlan::new(0xFA17)
    };
    let make = || -> Vec<TrivialGreedy<DeltaPlusOneColoring>> {
        g.nodes()
            .map(|_| TrivialGreedy::new(DeltaPlusOneColoring, ()))
            .collect()
    };
    // the rates must actually fire, or this test silently degenerates to
    // the fault-free case
    let full = Engine::new(&g, traced()).run_faulty(make(), &plan).unwrap();
    assert!(
        full.metrics.faults_dropped > 0
            && full.metrics.faults_duplicated > 0
            && full.metrics.faults_crashed > 0,
        "fault plan injected nothing: {:?}",
        full.metrics
    );
    check_every_round(&g, make, Some(plan));
}

#[test]
fn edge_problem_snapshot_restore_is_bit_for_bit_at_every_round() {
    let g = generators::gnp(16, 0.2, 5);
    let idx = EdgeIndex::new(&g);
    let inputs = MaximalMatching.trivial_inputs(&g);
    check_every_round(
        &g,
        || greedy_hosts(&g, &idx, &MaximalMatching, &inputs),
        None,
    );
}

#[test]
fn checkpointed_run_snapshots_all_resume_to_the_same_result() {
    let g = generators::gnp(28, 0.15, 7);
    let engine = Engine::new(&g, traced());
    let full = engine.run(mis_programs(&g)).unwrap();
    let mut snaps: Vec<Snapshot> = Vec::new();
    let checkpointed = engine
        .run_checkpointed(mis_programs(&g), None, 3, |s| {
            snaps.push(Snapshot::from_bytes(s.as_bytes().to_vec()).unwrap())
        })
        .unwrap();
    assert_same_run(
        &full,
        &checkpointed,
        "checkpointing must not perturb the run",
    );
    assert!(
        snaps.len() >= 2,
        "expected several snapshots, got {}",
        snaps.len()
    );
    for snap in &snaps {
        let resumed = engine.resume(mis_programs(&g), snap).unwrap();
        assert_same_run(
            &full,
            &resumed,
            &format!("resume from emitted snapshot at round {}", snap.round()),
        );
    }
}

#[test]
fn truncated_snapshots_never_resume_at_any_cut_point() {
    let g = generators::gnp(12, 0.25, 3);
    let engine = Engine::new(&g, traced());
    let snap = match engine.snapshot_at(mis_programs(&g), None, 2).unwrap() {
        Paused::Snapshot(s) => s,
        Paused::Done(_) => panic!("run too short to snapshot"),
    };
    let bytes = snap.as_bytes();
    // every strict prefix must be rejected — at header validation or at
    // payload decode — never silently accepted
    for cut in 0..bytes.len() {
        match Snapshot::from_bytes(bytes[..cut].to_vec()) {
            Err(_) => {}
            Ok(s) => assert!(
                engine.resume(mis_programs(&g), &s).is_err(),
                "truncated snapshot ({cut}/{} bytes) resumed successfully",
                bytes.len()
            ),
        }
    }
}

#[test]
fn corrupted_and_mismatched_snapshots_are_rejected() {
    let g = generators::gnp(12, 0.25, 3);
    let engine = Engine::new(&g, traced());
    let snap = match engine.snapshot_at(mis_programs(&g), None, 2).unwrap() {
        Paused::Snapshot(s) => s,
        Paused::Done(_) => panic!("run too short to snapshot"),
    };
    // flip each magic byte: the header check must catch it
    for i in 0..8 {
        let mut bad = snap.as_bytes().to_vec();
        bad[i] ^= 0xFF;
        assert!(
            Snapshot::from_bytes(bad).is_err(),
            "corrupted magic byte {i} accepted"
        );
    }
    // a snapshot of one graph must not restore onto another
    let other = generators::gnp(12, 0.25, 99);
    let err = Engine::new(&other, traced()).resume(mis_programs(&other), &snap);
    assert!(err.is_err(), "snapshot restored onto a different graph");
    // and the threaded resume path applies the same checks
    let err = threaded::resume_threaded(&other, mis_programs(&other), &snap, 2);
    assert!(err.is_err(), "threaded resume accepted a mismatched graph");
}
