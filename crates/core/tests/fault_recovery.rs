//! The recovery contract, end to end: under a seeded [`FaultPlan`] with a
//! quiet period after the last fault, every resilient solver still
//! produces a **valid** output, its resource usage stays within the
//! closed-form **degraded budget**
//! ([`bounds::degraded_budget_for`]), and the run is **bit-for-bit
//! identical** on the serial engine and the worker-pool executor at 1, 2,
//! 4, and 8 workers — for the trivial baseline, BM21, the Theorem 1
//! staged pipeline (gather + virtual-graph layers included), and the
//! line-graph edge adapter.
//!
//! Fault rolls are pure functions of the plan seed, so each plan below is
//! a *fixed, verified adversary*: the tests are exact and deterministic,
//! not statistical. Drops in particular are covered per seed (every
//! retransmitted copy of a message is rolled independently, so a hostile
//! seed could kill all of them) — which is precisely why the contract is
//! checked against pinned seeds rather than argued by construction.

use awake_core::bounds::{self, BoundAlgo, ProblemClass};
use awake_core::linegraph::{self, greedy_hosts};
use awake_core::resilient::run_stage;
use awake_core::trivial::TrivialGreedy;
use awake_core::{bm21, theorem1};
use awake_graphs::{generators, Graph};
use awake_olocal::edge::{EdgeIndex, MaximalMatching};
use awake_olocal::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
use awake_olocal::{EdgeProblem, OLocalProblem};
use awake_sleeping::{
    redundancy_for, threaded, Codec, Config, Engine, FaultPlan, Metrics, Paused, Persist, Program,
    Redundant,
};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// A dense crash burst early in each stage, then silence: the adversary
/// of the contract's "targeted crashes" clause.
fn crash_burst(seed: u64) -> FaultPlan {
    FaultPlan {
        crash_ppm: 600_000,
        burst_start: 2,
        burst_len: 6,
        quiet_after: 30,
        ..FaultPlan::new(seed)
    }
}

/// Every fault kind at once at moderate rates, quiet after round 25.
fn messy(seed: u64) -> FaultPlan {
    FaultPlan {
        drop_ppm: 40_000,
        dup_ppm: 30_000,
        delay_ppm: 30_000,
        delay_rounds: 2,
        crash_ppm: 60_000,
        quiet_after: 25,
        ..FaultPlan::new(seed)
    }
}

fn assert_within(metrics_awake: u64, metrics_rounds: u64, b: bounds::Budget, what: &str) {
    assert!(
        metrics_awake <= b.awake,
        "{what}: awake {metrics_awake} > degraded budget {}",
        b.awake
    );
    assert!(
        metrics_rounds <= b.rounds,
        "{what}: rounds {metrics_rounds} > degraded budget {}",
        b.rounds
    );
}

// ---- trivial baseline ----

#[test]
fn trivial_recovers_within_the_degraded_budget_at_every_worker_count() {
    for g in [generators::gnp(36, 0.14, 4), generators::cycle(18)] {
        let p = awake_core::params::Params::for_graph(&g);
        for plan in [crash_burst(0xEE1), messy(0xEE2)] {
            let budget = bounds::degraded_budget_for(
                BoundAlgo::Trivial,
                ProblemClass::Vertex,
                &g,
                &p,
                &plan,
            )
            .unwrap();
            let make = || -> Vec<TrivialGreedy<MaximalIndependentSet>> {
                g.nodes()
                    .map(|_| TrivialGreedy::new(MaximalIndependentSet, ()))
                    .collect()
            };
            let base = bounds::trivial_rounds(&g);
            let serial = run_stage(&g, make(), Config::default(), base, Some(&plan), None).unwrap();
            assert!(
                serial.metrics.faults_crashed > 0,
                "plan {:#x} injected no crashes",
                plan.seed
            );
            MaximalIndependentSet
                .validate(&g, &vec![(); g.n()], &serial.outputs)
                .unwrap();
            assert_within(
                serial.metrics.max_awake(),
                serial.metrics.rounds,
                budget,
                "trivial",
            );
            for w in WORKERS {
                let t =
                    run_stage(&g, make(), Config::default(), base, Some(&plan), Some(w)).unwrap();
                assert_eq!(serial.outputs, t.outputs, "{w} workers: outputs");
                assert_eq!(serial.metrics, t.metrics, "{w} workers: metrics");
            }
        }
    }
}

// ---- BM21 ----

#[test]
fn bm21_recovers_within_the_degraded_budget_at_every_worker_count() {
    for g in [generators::gnp(40, 0.1, 6), generators::grid(5, 6)] {
        let p = awake_core::params::Params::for_graph(&g);
        for plan in [crash_burst(0xB1), messy(0xB2)] {
            let budget =
                bounds::degraded_budget_for(BoundAlgo::Bm21, ProblemClass::Vertex, &g, &p, &plan)
                    .unwrap();
            let serial = bm21::solve_faulty(
                &g,
                &DeltaPlusOneColoring,
                &vec![(); g.n()],
                None,
                &plan,
                None,
            )
            .unwrap();
            DeltaPlusOneColoring
                .validate(&g, &vec![(); g.n()], &serial.outputs)
                .unwrap();
            awake_graphs::coloring::check_proper(&g, &serial.colors).unwrap();
            assert_within(
                serial.composition.max_awake(),
                serial.composition.rounds(),
                budget,
                "bm21",
            );
            for w in WORKERS {
                let t = bm21::solve_faulty(
                    &g,
                    &DeltaPlusOneColoring,
                    &vec![(); g.n()],
                    None,
                    &plan,
                    Some(w),
                )
                .unwrap();
                assert_eq!(serial.outputs, t.outputs, "{w} workers: outputs");
                assert_eq!(serial.colors, t.colors, "{w} workers: colors");
                assert_eq!(
                    serial.composition.stages.len(),
                    t.composition.stages.len(),
                    "{w} workers: stage count"
                );
                for (a, b) in serial.composition.stages.iter().zip(&t.composition.stages) {
                    assert_eq!(a.name, b.name, "{w} workers: stage names");
                    assert_eq!(a.metrics, b.metrics, "{w} workers: {} metrics", a.name);
                }
            }
        }
    }
}

// ---- Theorem 1 (staged pipeline: gather + virt layers included) ----

#[test]
fn theorem1_recovers_within_the_degraded_budget_at_every_worker_count() {
    let g = generators::gnp(20, 0.2, 3);
    let p = awake_core::params::Params::for_graph(&g);
    let plan = crash_burst(0x71);
    let budget =
        bounds::degraded_budget_for(BoundAlgo::Theorem1, ProblemClass::Vertex, &g, &p, &plan)
            .unwrap();
    let serial = theorem1::solve_faulty(
        &g,
        &MaximalIndependentSet,
        theorem1::Options::default(),
        &plan,
        None,
    )
    .unwrap();
    MaximalIndependentSet
        .validate(&g, &vec![(); g.n()], &serial.outputs)
        .unwrap();
    serial.clustering.validate_colored(&g).unwrap();
    assert_within(
        serial.composition.max_awake(),
        serial.composition.rounds(),
        budget,
        "theorem1",
    );
    for w in WORKERS {
        let t = theorem1::solve_faulty(
            &g,
            &MaximalIndependentSet,
            theorem1::Options::default(),
            &plan,
            Some(w),
        )
        .unwrap();
        assert_eq!(serial.outputs, t.outputs, "{w} workers: outputs");
        assert_eq!(
            serial.composition.stages.len(),
            t.composition.stages.len(),
            "{w} workers: stage count"
        );
        for (a, b) in serial.composition.stages.iter().zip(&t.composition.stages) {
            assert_eq!(a.name, b.name, "{w} workers: stage names");
            assert_eq!(a.metrics, b.metrics, "{w} workers: {} metrics", a.name);
        }
    }
}

#[test]
fn theorem1_survives_a_message_fault_mix() {
    let g = generators::cycle(14);
    let p = awake_core::params::Params::for_graph(&g);
    let plan = messy(0x72);
    let budget =
        bounds::degraded_budget_for(BoundAlgo::Theorem1, ProblemClass::Vertex, &g, &p, &plan)
            .unwrap();
    let r = theorem1::solve_faulty(
        &g,
        &DeltaPlusOneColoring,
        theorem1::Options::default(),
        &plan,
        None,
    )
    .unwrap();
    DeltaPlusOneColoring
        .validate(&g, &vec![(); g.n()], &r.outputs)
        .unwrap();
    assert_within(
        r.composition.max_awake(),
        r.composition.rounds(),
        budget,
        "theorem1/messy",
    );
}

// ---- the line-graph edge adapter ----

#[test]
fn edge_adapter_recovers_within_the_degraded_budget_at_every_worker_count() {
    let g = generators::gnp(14, 0.25, 2);
    let p = awake_core::params::Params::for_graph(&g);
    let inputs = MaximalMatching.trivial_inputs(&g);
    for plan in [crash_burst(0xED1), messy(0xED2)] {
        let budget =
            bounds::degraded_budget_for(BoundAlgo::Trivial, ProblemClass::Edge, &g, &p, &plan)
                .unwrap();
        let serial =
            linegraph::solve_edges_faulty(&g, &MaximalMatching, &inputs, Config::default(), &plan)
                .unwrap();
        MaximalMatching
            .validate(&g, &inputs, &serial.outputs)
            .unwrap();
        assert_within(
            serial.metrics.max_awake(),
            serial.metrics.rounds,
            budget,
            "edge adapter",
        );
        for w in WORKERS {
            let t = linegraph::solve_edges_threaded_faulty(
                &g,
                &MaximalMatching,
                &inputs,
                Config::default(),
                w,
                &plan,
            )
            .unwrap();
            assert_eq!(serial.outputs, t.outputs, "{w} workers: outputs");
            assert_eq!(serial.metrics, t.metrics, "{w} workers: metrics");
        }
    }
}

// ---- mid-outage snapshots ----

/// Snapshot the wrapped faulty run at every round of the fault window
/// (which includes rounds where crashed nodes are mid-outage, i.e. still
/// in recovery) and check that restore + run-to-end lands bit-for-bit on
/// the uninterrupted faulty run, serially and on the threaded executor.
fn check_mid_outage_snapshots<P, F>(g: &Graph, make: F, plan: &FaultPlan, what: &str) -> Metrics
where
    P: Program + Persist + Send,
    P::Msg: Codec,
    P::Output: Codec + PartialEq + std::fmt::Debug,
    F: Fn() -> Vec<P>,
{
    let engine = Engine::new(g, Config::default());
    let full = engine.run_faulty(make(), plan).unwrap();
    assert!(
        full.metrics.faults_crashed > 0,
        "{what}: the plan must actually crash nodes"
    );
    // The window where outages (and their recovery tails) live; +8 covers
    // recovery rounds past the last injection.
    let horizon = plan.quiet_after.saturating_add(8).min(full.metrics.rounds);
    let mut paused = 0;
    for r in 1..=horizon {
        let snap = match engine.snapshot_at(make(), Some(plan), r).unwrap() {
            Paused::Snapshot(s) => s,
            Paused::Done(_) => continue,
        };
        paused += 1;
        let resumed = engine.resume(make(), &snap).unwrap();
        assert_eq!(full.outputs, resumed.outputs, "{what}: outputs @ {r}");
        assert_eq!(full.metrics, resumed.metrics, "{what}: metrics @ {r}");
        let resumed = threaded::resume_threaded(g, make(), &snap, 3).unwrap();
        assert_eq!(
            full.outputs, resumed.outputs,
            "{what}: threaded outputs @ {r}"
        );
        assert_eq!(
            full.metrics, resumed.metrics,
            "{what}: threaded metrics @ {r}"
        );
    }
    assert!(
        paused > 0,
        "{what}: no round paused inside the fault window"
    );
    full.metrics
}

#[test]
fn mid_outage_snapshots_are_bit_for_bit_for_every_resilient_program() {
    let plan = FaultPlan {
        crash_ppm: 250_000,
        quiet_after: 16,
        ..FaultPlan::new(0x5A)
    };

    // Trivial baseline, wrapped exactly as the resilient paths wrap it.
    let g = generators::gnp(14, 0.22, 9);
    let s = redundancy_for(&plan, g.n(), bounds::trivial_rounds(&g));
    check_mid_outage_snapshots(
        &g,
        || {
            g.nodes()
                .map(|_| Redundant::new(TrivialGreedy::new(MaximalIndependentSet, ()), s))
                .collect()
        },
        &plan,
        "trivial",
    );

    // BM21 stage 1 (Linial color reduction).
    let delta = g.max_degree().max(1) as u64;
    let sb = bounds::bm21_stage_budgets(&g, delta);
    let s = redundancy_for(&plan, g.n(), sb[0].rounds);
    let ident_bound = g.ident_bound();
    check_mid_outage_snapshots(
        &g,
        || {
            g.nodes()
                .map(|v| {
                    Redundant::new(
                        awake_core::linial::ColorReduction::from_ident(
                            g.ident(v),
                            ident_bound,
                            delta,
                        ),
                        s,
                    )
                })
                .collect()
        },
        &plan,
        "bm21/linial",
    );

    // BM21 stage 2 (Lemma 11 on a proper coloring — identifiers are one).
    let k = ident_bound;
    let s = redundancy_for(&plan, g.n(), bounds::lemma11_rounds(k));
    check_mid_outage_snapshots(
        &g,
        || {
            g.nodes()
                .map(|v| {
                    Redundant::new(
                        awake_core::lemma11::ColorScheduled::new(
                            DeltaPlusOneColoring,
                            (),
                            g.ident(v) + 1,
                            k + 1,
                        ),
                        s,
                    )
                })
                .collect()
        },
        &plan,
        "bm21/lemma11",
    );

    // The line-graph adapter's hosts (EdgeGreedy replicas).
    let ge = generators::gnp(10, 0.3, 5);
    let idx = EdgeIndex::new(&ge);
    let inputs = MaximalMatching.trivial_inputs(&ge);
    let s = redundancy_for(&plan, ge.n(), bounds::linegraph_rounds(&ge).max(1));
    check_mid_outage_snapshots(
        &ge,
        || {
            greedy_hosts(&ge, &idx, &MaximalMatching, &inputs)
                .into_iter()
                .map(|h| Redundant::new(h, s))
                .collect()
        },
        &plan,
        "linegraph",
    );
}
