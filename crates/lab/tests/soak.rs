//! The adversarial fault soak: every scenario recovers to a valid output
//! within its closed-form degraded budget, and the executor matrix
//! (serial plus 1/2/4/8 workers) is bit-for-bit equivalent on the shared
//! crash stream.

use awake_lab::runner::Runner;
use awake_lab::scenario::presets;

const SOAK_SEED: u64 = 1;

#[test]
fn soak_preset_recovers_validly_within_degraded_budgets() {
    let suite = presets::by_name("soak").expect("soak preset registered");
    let report = Runner::serial()
        .run("soak", &suite, SOAK_SEED)
        .expect("soak suite runs");
    assert_eq!(report.scenarios.len(), suite.len());
    for s in &report.scenarios {
        assert!(s.valid, "{}: output invalid after the fault soak", s.name);
        assert!(
            s.bound_ok,
            "{}: awake {} / rounds {} exceed degraded bounds {} / {}",
            s.name, s.metrics.max_awake, s.metrics.rounds, s.awake_bound, s.round_bound
        );
        let injected = s.metrics.faults_dropped
            + s.metrics.faults_duplicated
            + s.metrics.faults_delayed
            + s.metrics.faults_crashed;
        assert!(injected > 0, "{}: the adversary never fired", s.name);
    }
}

#[test]
fn soak_crash_matrix_is_bit_for_bit_across_worker_counts() {
    let suite = presets::by_name("soak").expect("soak preset registered");
    let report = Runner::serial()
        .run("soak", &suite, SOAK_SEED)
        .expect("soak suite runs");

    // The decision-crash rows run serial, then 1/2/4/8 workers, over one
    // graph and one fault stream; every metric column must agree.
    let crash_rows: Vec<_> = report
        .scenarios
        .iter()
        .filter(|s| s.name.starts_with("mis/gnp-64"))
        .collect();
    assert_eq!(crash_rows.len(), 5, "serial + 4 worker counts");
    let reference = crash_rows[0];
    assert!(
        reference.metrics.faults_crashed > 0,
        "crash storm must land"
    );
    for row in &crash_rows[1..] {
        assert_eq!(
            row.metrics, reference.metrics,
            "{} diverged from {}",
            row.name, reference.name
        );
        assert_eq!((row.n, row.m), (reference.n, reference.m));
        assert_eq!(row.seed, reference.seed, "shared family must share seed");
    }

    // The tree-drop pair (serial vs. 4 workers) agrees the same way.
    let tree_rows: Vec<_> = report
        .scenarios
        .iter()
        .filter(|s| s.name.starts_with("coloring/tree-72"))
        .collect();
    assert_eq!(tree_rows.len(), 2);
    assert!(tree_rows[0].metrics.faults_dropped > 0, "drops must land");
    assert_eq!(tree_rows[0].metrics, tree_rows[1].metrics);
}
