//! Exit-code and recoverability contracts of the `suite` and
//! `baseline-diff` binaries — what CI scripts and operators key on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("awake-lab-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn baseline_diff(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_baseline-diff"))
        .args(args)
        .output()
        .expect("spawn baseline-diff")
}

fn suite(args: &[&str], cwd: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_suite"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn suite")
}

#[test]
fn baseline_diff_names_a_missing_input_and_how_to_produce_it() {
    let dir = scratch_dir("bd-missing");
    let baseline = dir.join("BENCH_baseline.json");
    let current = dir.join("BENCH_engine.json");
    std::fs::write(&baseline, b"{\"schema\": \"awake-bench/v1\"}").unwrap();

    // current report missing: exit 3, names the file and the bench command
    let out = baseline_diff(&[baseline.to_str().unwrap(), current.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "missing input gets exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("current report") && err.contains("BENCH_engine.json"),
        "stderr must name the missing file: {err}"
    );
    assert!(
        err.contains("produce it with") && err.contains("cargo bench"),
        "stderr must say how to produce it: {err}"
    );

    // baseline missing: same code, baseline-flavored hint
    std::fs::write(&current, b"{}").unwrap();
    std::fs::remove_file(&baseline).unwrap();
    let out = baseline_diff(&[baseline.to_str().unwrap(), current.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("baseline report") && err.contains("git restore"),
        "stderr must explain how to restore the baseline: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn baseline_diff_keeps_exit_2_for_malformed_json() {
    let dir = scratch_dir("bd-parse");
    let baseline = dir.join("baseline.json");
    let current = dir.join("current.json");
    std::fs::write(&baseline, b"{ not json").unwrap();
    std::fs::write(&current, b"{}").unwrap();
    let out = baseline_diff(&[baseline.to_str().unwrap(), current.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed JSON is a usage-class error, not a missing-file error"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn suite_checkpoint_run_and_resume_produce_identical_reports() {
    let dir = scratch_dir("suite-resume");
    let filter = "mis/"; // a handful of quick-preset scenarios
    let base = [
        "--preset",
        "quick",
        "--filter",
        filter,
        "--seed",
        "4",
        "--canonical",
    ];

    // uninterrupted reference run
    let out = suite(&[&base[..], &["--out", "full.json"]].concat(), &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let full = std::fs::read(dir.join("full.json")).unwrap();

    // checkpointed run, then a resume over its artifacts (the ledger is
    // complete, so the resume only reloads rows — the report must still
    // come out byte-identical)
    let out = suite(
        &[
            &base[..],
            &[
                "--out",
                "resumed.json",
                "--checkpoint-dir",
                "ckpts",
                "--checkpoint-every",
                "2",
            ],
        ]
        .concat(),
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(dir.join("resumed.json")).unwrap(), full);
    std::fs::remove_file(dir.join("resumed.json")).unwrap();

    // drop the ledger to force the scenarios through their snapshots
    std::fs::remove_file(dir.join("ckpts/progress.json")).unwrap();
    let out = suite(
        &[&base[..], &["--out", "resumed.json", "--resume", "ckpts"]].concat(),
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(dir.join("resumed.json")).unwrap(),
        full,
        "resumed report differs from the uninterrupted run"
    );
    // atomic writes leave no temp residue
    assert!(!dir.join("resumed.json.tmp").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn suite_faults_preset_passes_validation_and_degraded_audit_gates() {
    // Fault-injected scenarios recover to valid outputs and gate against
    // their closed-form *degraded* budgets — no exemption from either gate.
    let dir = scratch_dir("suite-faults");
    let out = suite(
        &["--preset", "faults", "--audit", "--out", "faults.json"],
        &dir,
    );
    assert!(
        out.status.success(),
        "faults preset must pass both gates: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("gate against their degraded budgets"),
        "degraded gating must be stated: {text}"
    );
    assert!(
        !text.contains("exempt"),
        "the audit exemption is gone — no row may claim it: {text}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn suite_list_shows_scenario_counts_and_gate_flags() {
    let dir = scratch_dir("suite-list");
    let out = suite(&["--list"], &dir);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // every preset row carries its scenario count; the gated presets
    // advertise which gate treats them specially
    assert!(text.contains("scenarios]"), "counts missing: {text}");
    assert!(
        text.contains("(degraded-audit"),
        "fault presets must advertise degraded-budget gating: {text}"
    );
    assert!(
        text.contains("(budget-bounded)"),
        "scaling presets must advertise the wall-clock budget gate: {text}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn suite_budget_gate_fails_naming_the_slowest_scenario() {
    let dir = scratch_dir("suite-budget");
    let base = [
        "--preset",
        "quick",
        "--filter",
        "mis/",
        "--canonical",
        "--out",
        "r.json",
    ];

    // a zero-second budget always trips; the artifacts must still land
    let out = suite(&[&base[..], &["--budget-secs", "0"]].concat(), &dir);
    assert_eq!(out.status.code(), Some(1), "blown budget is a gate failure");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("budget FAILED") && err.contains("slowest scenario"),
        "failure must name the slowest scenario: {err}"
    );
    assert!(
        dir.join("r.json").exists(),
        "report must be written before the budget gate fires"
    );

    // a generous budget passes and reports the headroom
    let out = suite(&[&base[..], &["--budget-secs", "86400"]].concat(), &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("budget ok"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn suite_rejects_contradictory_checkpoint_flags() {
    let dir = scratch_dir("suite-flags");
    let out = suite(&["--checkpoint-dir", "a", "--resume", "b"], &dir);
    assert_eq!(out.status.code(), Some(2));
    let out = suite(&["--checkpoint-every", "5"], &dir);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}
