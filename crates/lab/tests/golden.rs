//! Golden-snapshot and determinism tests for the suite report.
//!
//! The canonical JSON form of a suite report is a compatibility surface:
//! the committed snapshot pins it byte for byte at a fixed seed. If a
//! change legitimately alters the report (new metric, new preset member,
//! changed RNG derivation — all semver-relevant events), regenerate with
//!
//! ```sh
//! BLESS=1 cargo test -p awake-lab --test golden
//! ```

use awake_lab::report::Report;
use awake_lab::runner::Runner;
use awake_lab::scenario::presets;

/// The seed the snapshot was blessed at (also the suite binary's default).
const GOLDEN_SEED: u64 = 1;

fn quick_report(runner: Runner) -> Report {
    let suite = presets::by_name("quick").expect("quick preset exists");
    runner
        .run("quick", &suite, GOLDEN_SEED)
        .expect("quick suite runs")
}

#[test]
fn quick_canonical_json_matches_golden_snapshot() {
    let canon = quick_report(Runner::serial()).canonical_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_quick.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &canon).expect("write blessed snapshot");
        return;
    }
    let expected = std::fs::read_to_string(path).expect("committed snapshot exists");
    assert_eq!(
        canon, expected,
        "canonical suite JSON drifted from tests/golden_quick.json — if the \
         change is intentional, regenerate with BLESS=1"
    );
}

#[test]
fn edges_canonical_json_matches_golden_snapshot_at_any_shard_count() {
    let suite = presets::by_name("edges").expect("edges preset exists");
    let serial = Runner::serial()
        .run("edges", &suite, GOLDEN_SEED)
        .expect("edges suite runs");
    assert!(
        serial.scenarios.iter().all(|s| s.valid),
        "edge validators must accept every scenario"
    );
    // Byte-identical reports at any shard count — the determinism
    // contract of the runner extends to the line-graph adapter rows.
    let canon = serial.canonical_json();
    for shards in [2usize, 4, 7] {
        let sharded = Runner::sharded(shards)
            .run("edges", &suite, GOLDEN_SEED)
            .expect("edges suite runs sharded");
        assert_eq!(canon, sharded.canonical_json(), "shards = {shards}");
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_edges.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &canon).expect("write blessed snapshot");
        return;
    }
    let expected = std::fs::read_to_string(path).expect("committed snapshot exists");
    assert_eq!(
        canon, expected,
        "canonical edges-suite JSON drifted from tests/golden_edges.json — if \
         the change is intentional, regenerate with BLESS=1"
    );
}

#[test]
fn serial_and_sharded_runners_produce_identical_reports() {
    let serial = quick_report(Runner::serial());
    let sharded = quick_report(Runner::sharded(4));

    // Everything deterministic must agree, scenario by scenario…
    assert_eq!(serial.scenarios.len(), sharded.scenarios.len());
    for (a, b) in serial.scenarios.iter().zip(&sharded.scenarios) {
        assert_eq!(a.name, b.name, "suite order must be preserved");
        assert_eq!(a.seed, b.seed);
        assert_eq!((a.n, a.m), (b.n, b.m));
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.metrics, b.metrics, "metrics differ for {}", a.name);
    }
    // …and so must the canonical serialization, byte for byte.
    assert_eq!(serial.canonical_json(), sharded.canonical_json());
}
