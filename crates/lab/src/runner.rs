//! Executing scenarios: serially, or sharded across worker threads.
//!
//! The runner guarantees that the *deterministic* part of a
//! [`Report`] — everything in
//! [`ScenarioMetrics`] plus the graph
//! shape and validation verdict — is identical regardless of shard count:
//! each scenario derives its RNG seed from the suite seed and its
//! graph-family key ([`Scenario::seed`]), runs independently, and results
//! are merged in suite order. The determinism test in `tests/golden.rs`
//! asserts this.

use crate::fsio::write_atomic;
use crate::report::{Report, ScenarioMetrics, ScenarioReport, Timing};
use crate::scenario::{Algo, ProblemKind, Scenario};
use awake_core::bounds::{self, BoundAlgo, ProblemClass};
use awake_core::params::Params;
use awake_core::trivial::TrivialGreedy;
use awake_core::{bm21, linegraph, theorem1};
use awake_graphs::Graph;
use awake_olocal::edge::{EdgeColoring, MaximalMatching};
use awake_olocal::problems::{
    DegreePlusOneListColoring, DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover,
};
use awake_olocal::{EdgeProblem, OLocalProblem};
use awake_sleeping::{
    redundancy_for, threaded, Codec, Config, Engine, FaultPlan, Persist, Program, Redundant, Round,
    Run, SimError, Snapshot,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Why a scenario could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The simulator aborted.
    Sim(SimError),
    /// The scenario paired a problem with a solver that cannot run it —
    /// edge problems ride the line-graph adapter, which exists for the
    /// `trivial` / `trivial-t*` executors only. Fault injection is *not* a
    /// reason anymore: every solver, the staged pipelines and the
    /// line-graph adapter included, takes crash/drop/dup/delay injection
    /// through the time-redundancy recovery contract
    /// ([`awake_core::resilient`]) and is audited against the degraded
    /// budgets.
    UnsupportedAlgo {
        /// The problem's label.
        problem: &'static str,
        /// The solver's label.
        algo: String,
    },
    /// A recoverable run could not write or restore a snapshot file
    /// (I/O failure, or a corrupt/foreign checkpoint under the expected
    /// name).
    Checkpoint(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => e.fmt(f),
            RunError::UnsupportedAlgo { problem, algo } => {
                write!(f, "problem `{problem}` cannot run on solver `{algo}`")
            }
            RunError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// A scenario run failure: which scenario, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabError {
    /// The failing scenario's name.
    pub scenario: String,
    /// The underlying failure.
    pub error: RunError,
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario {}: {}", self.scenario, self.error)
    }
}

impl std::error::Error for LabError {}

/// Reads a process-wide allocation counter (installed by the host binary's
/// `#[global_allocator]`); the runner records deltas around each scenario.
pub type AllocProbe = fn() -> u64;

/// Runs suites of [`Scenario`]s and produces [`Report`]s.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    shards: usize,
    alloc_probe: Option<AllocProbe>,
}

impl Runner {
    /// A serial runner: scenarios execute one by one, in suite order.
    pub fn serial() -> Self {
        Runner {
            shards: 1,
            alloc_probe: None,
        }
    }

    /// A sharded runner: up to `shards` scenarios execute concurrently on
    /// worker threads (results are still reported in suite order, and the
    /// deterministic fields are identical to a serial run).
    pub fn sharded(shards: usize) -> Self {
        Runner {
            shards: shards.max(1),
            alloc_probe: None,
        }
    }

    /// Record per-scenario heap-allocation deltas through `probe`.
    ///
    /// Attribution is exact only on a serial runner — sharded scenarios
    /// share the process-wide counter, so their deltas overlap. The field
    /// is excluded from the canonical report either way.
    pub fn with_alloc_probe(mut self, probe: AllocProbe) -> Self {
        self.alloc_probe = Some(probe);
        self
    }

    /// Run every scenario and collect a [`Report`].
    ///
    /// # Errors
    /// Returns the first failing scenario's [`LabError`] (in suite order).
    pub fn run(&self, suite: &str, scenarios: &[Scenario], seed: u64) -> Result<Report, LabError> {
        self.run_observed(suite, scenarios, seed, |_| {})
    }

    /// Like [`Runner::run`], but `observer` is invoked with the growing
    /// partial report each time the completed **in-suite-order prefix**
    /// extends — the hook the suite uses to stream energy points to disk
    /// as long sweeps finish, so a killed 2²¹-node sweep still leaves
    /// every completed point behind. On a sharded runner, scenarios
    /// finishing out of order are buffered until their predecessors
    /// complete, keeping each emitted partial a byte-prefix of the final
    /// report's scenario list.
    ///
    /// # Errors
    /// Returns the first failing scenario's [`LabError`] (in suite order).
    pub fn run_observed(
        &self,
        suite: &str,
        scenarios: &[Scenario],
        seed: u64,
        observer: impl Fn(&Report) + Sync,
    ) -> Result<Report, LabError> {
        let partial = |rows: &[ScenarioReport]| Report {
            suite: suite.to_string(),
            seed,
            scenarios: rows.to_vec(),
        };
        let results: Vec<Result<ScenarioReport, LabError>> = if self.shards == 1 {
            let mut acc: Vec<Result<ScenarioReport, LabError>> =
                Vec::with_capacity(scenarios.len());
            let mut prefix: Vec<ScenarioReport> = Vec::with_capacity(scenarios.len());
            for sc in scenarios {
                let r = run_scenario(sc, seed, self.alloc_probe);
                if let Ok(row) = &r {
                    if prefix.len() == acc.len() {
                        prefix.push(row.clone());
                        observer(&partial(&prefix));
                    }
                }
                acc.push(r);
            }
            acc
        } else {
            let slots: Vec<Mutex<Option<Result<ScenarioReport, LabError>>>> =
                scenarios.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            // The contiguous completed-and-ok prefix emitted so far; a
            // worker that fills a slot tries to extend it (lock order is
            // always prefix → slot, and a slot lock is never held while
            // waiting on the prefix, so the two cannot deadlock).
            let emitted: Mutex<Vec<ScenarioReport>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..self.shards.min(scenarios.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(sc) = scenarios.get(i) else { break };
                        let r = run_scenario(sc, seed, self.alloc_probe);
                        *slots[i].lock().unwrap() = Some(r);
                        let mut prefix = emitted.lock().unwrap();
                        let mut grew = false;
                        while let Some(slot) = slots.get(prefix.len()) {
                            let Some(Ok(row)) = slot.lock().unwrap().clone() else {
                                break;
                            };
                            prefix.push(row);
                            grew = true;
                        }
                        if grew {
                            observer(&partial(&prefix));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
                .collect()
        };
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        Ok(Report {
            suite: suite.to_string(),
            seed,
            scenarios: out,
        })
    }

    /// Run a suite **recoverably**: progress and in-flight engine state
    /// persist under `dir`, so a killed run can be re-invoked on the same
    /// directory and continue to the same canonical report, byte for byte.
    ///
    /// * After each completed scenario, `dir/progress.json` is atomically
    ///   rewritten with the canonical partial report; on re-invocation,
    ///   completed rows are reloaded instead of re-run (their
    ///   deterministic fields are identical either way — wall time and
    ///   allocations of reloaded rows read as zero, which only the
    ///   non-canonical report form shows).
    /// * With `every = Some(n)`, vertex scenarios on the `trivial` /
    ///   `trivial-t*` executors additionally persist an engine
    ///   [`Snapshot`] to `dir/<scenario>.ckpt` (atomically) every `n`
    ///   rounds; a re-invocation restores the newest snapshot and runs
    ///   only the remaining rounds. Scenarios without snapshot support
    ///   (staged pipelines, edge adapters) are deterministic and simply
    ///   re-run from scratch.
    /// * `every = None` is resume-only mode: existing snapshots are
    ///   consumed, no new ones are written.
    ///
    /// Scenarios execute serially, in suite order — recoverability needs
    /// a well-defined "done so far" prefix, so the shard count is ignored
    /// here.
    ///
    /// # Errors
    /// The first failing scenario's [`LabError`]; snapshot and progress
    /// I/O failures surface as [`RunError::Checkpoint`].
    pub fn run_recoverable(
        &self,
        suite: &str,
        scenarios: &[Scenario],
        seed: u64,
        dir: &Path,
        every: Option<Round>,
    ) -> Result<Report, LabError> {
        let io_err = |scenario: &Scenario, msg: String| LabError {
            scenario: scenario.name.clone(),
            error: RunError::Checkpoint(msg),
        };
        if let Some(first) = scenarios.first() {
            std::fs::create_dir_all(dir)
                .map_err(|e| io_err(first, format!("creating {}: {e}", dir.display())))?;
        }
        let progress_path = dir.join("progress.json");
        // A torn or foreign ledger is never fatal: surviving rows reload,
        // the rest (reported as typed `ProgressError`s) simply re-run.
        let done = match std::fs::read_to_string(&progress_path) {
            Ok(text) => parse_progress(&text).0,
            Err(_) => Vec::new(),
        };
        let mut out: Vec<ScenarioReport> = Vec::with_capacity(scenarios.len());
        for sc in scenarios {
            let reloaded = done
                .iter()
                .find(|row| row.name == sc.name)
                .and_then(|row| row.to_report(sc, seed));
            let row = match reloaded {
                Some(row) => row,
                None => {
                    let ck = CkptFile {
                        path: dir.join(ckpt_file_name(&sc.name)),
                        every,
                    };
                    run_scenario_inner(sc, seed, self.alloc_probe, Some(&ck))?
                }
            };
            out.push(row);
            let partial = Report {
                suite: suite.to_string(),
                seed,
                scenarios: out.clone(),
            };
            write_atomic(&progress_path, partial.canonical_json().as_bytes())
                .map_err(|e| io_err(sc, format!("writing {}: {e}", progress_path.display())))?;
        }
        Ok(Report {
            suite: suite.to_string(),
            seed,
            scenarios: out,
        })
    }
}

/// One row reloaded from `progress.json` — only what the canonical form
/// carries and [`Scenario`] cannot re-derive cheaply.
struct ProgressRow {
    name: String,
    problem: String,
    family: String,
    algo: String,
    n: u64,
    m: u64,
    valid: bool,
    awake_bound: u64,
    round_bound: u64,
    bound_ok: bool,
    metrics: ScenarioMetrics,
}

impl ProgressRow {
    /// Rebuild the [`ScenarioReport`], cross-checking the row against the
    /// scenario it claims to be (`None` on any mismatch ⇒ re-run). The
    /// seed is recomputed from the scenario rather than re-parsed — JSON
    /// numbers travel as `f64`, which cannot hold every `u64` seed.
    fn to_report(&self, sc: &Scenario, suite_seed: u64) -> Option<ScenarioReport> {
        if self.problem != sc.problem.key()
            || self.family != sc.family.key()
            || self.algo != sc.algo.key()
        {
            return None;
        }
        Some(ScenarioReport {
            name: sc.name.clone(),
            problem: sc.problem.key(),
            family: sc.family.key(),
            algo: sc.algo.key(),
            seed: sc.seed(suite_seed),
            n: usize::try_from(self.n).ok()?,
            m: usize::try_from(self.m).ok()?,
            valid: self.valid,
            awake_bound: self.awake_bound,
            round_bound: self.round_bound,
            bound_ok: self.bound_ok,
            metrics: self.metrics.clone(),
            timing: Timing::default(),
        })
    }
}

/// Why (part of) a `progress.json` ledger could not be reloaded. The
/// runner's response is always the same — drop the unreadable part and
/// re-run the affected scenarios — but the typed cause distinguishes "the
/// whole ledger is foreign" from "one row was torn mid-write", which the
/// tests pin separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressError {
    /// The document failed to parse, carried a different schema tag, or
    /// had no scenario array: the whole ledger is ignored.
    Document,
    /// The row at this index (in ledger order) was truncated or corrupt —
    /// a required field missing, mistyped, or outside the exact-`f64`
    /// integer range. Only that row is dropped.
    TornRow(usize),
}

/// Parse a `progress.json` written by
/// [`Runner::run_recoverable`] back into rows. Tolerant by design:
/// anything unreadable (missing file handled by the caller, wrong schema,
/// torn fields, numbers outside exact-`f64` range) is reported as a typed
/// [`ProgressError`] next to the rows that *did* survive, and the affected
/// scenarios are simply re-run.
fn parse_progress(text: &str) -> (Vec<ProgressRow>, Vec<ProgressError>) {
    use crate::json::{parse, Value};
    let exact_u64 = |v: Option<&Value>| -> Option<u64> {
        let f = v?.as_f64()?;
        // beyond 2^53, f64 can no longer represent every integer
        (f.fract() == 0.0 && (0.0..=9007199254740992.0).contains(&f)).then_some(f as u64)
    };
    let Ok(doc) = parse(text) else {
        return (Vec::new(), vec![ProgressError::Document]);
    };
    if doc.get("schema").and_then(Value::as_str) != Some(crate::report::REPORT_SCHEMA) {
        return (Vec::new(), vec![ProgressError::Document]);
    }
    let Some(Value::Arr(rows)) = doc.get("scenarios") else {
        return (Vec::new(), vec![ProgressError::Document]);
    };
    let mut out = Vec::with_capacity(rows.len());
    let mut errors = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let parsed = (|| {
            Some(ProgressRow {
                name: row.get("name")?.as_str()?.to_string(),
                problem: row.get("problem")?.as_str()?.to_string(),
                family: row.get("family")?.as_str()?.to_string(),
                algo: row.get("algo")?.as_str()?.to_string(),
                n: exact_u64(row.get("n"))?,
                m: exact_u64(row.get("m"))?,
                valid: matches!(row.get("valid")?, Value::Bool(true)),
                awake_bound: exact_u64(row.get("awake_bound"))?,
                round_bound: exact_u64(row.get("round_bound"))?,
                bound_ok: matches!(row.get("bound_ok")?, Value::Bool(true)),
                metrics: ScenarioMetrics {
                    rounds: exact_u64(row.get("rounds"))?,
                    max_awake: exact_u64(row.get("max_awake"))?,
                    awake_p50: exact_u64(row.get("awake_p50"))?,
                    awake_p99: exact_u64(row.get("awake_p99"))?,
                    total_awake: exact_u64(row.get("total_awake"))?,
                    avg_awake: row.get("avg_awake")?.as_f64()?,
                    messages_sent: exact_u64(row.get("messages_sent"))?,
                    messages_lost: exact_u64(row.get("messages_lost"))?,
                    faults_dropped: exact_u64(row.get("faults_dropped"))?,
                    faults_duplicated: exact_u64(row.get("faults_duplicated"))?,
                    faults_delayed: exact_u64(row.get("faults_delayed"))?,
                    faults_crashed: exact_u64(row.get("faults_crashed"))?,
                    recovery_rounds: exact_u64(row.get("recovery_rounds"))?,
                    recovery_awake: exact_u64(row.get("recovery_awake"))?,
                    awake_events: exact_u64(row.get("awake_events"))?,
                    rounds_skipped: exact_u64(row.get("rounds_skipped"))?,
                },
            })
        })();
        match parsed {
            Some(r) => out.push(r),
            None => errors.push(ProgressError::TornRow(i)),
        }
    }
    (out, errors)
}

/// One scenario's snapshot file in a recoverable run: where it lives and
/// whether the run should keep refreshing it (`every = None` means
/// resume-only — restore if the file exists, emit nothing new).
struct CkptFile {
    path: PathBuf,
    every: Option<Round>,
}

impl CkptFile {
    /// The existing snapshot under the final name, if any. A stray
    /// `*.tmp` staging sibling is invisible here by construction — the
    /// lookup is by exact name.
    fn load(&self) -> Result<Option<Snapshot>, RunError> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(RunError::Checkpoint(format!(
                    "reading {}: {e}",
                    self.path.display()
                )))
            }
        };
        Snapshot::from_bytes(bytes)
            .map(Some)
            .map_err(|e| RunError::Checkpoint(format!("decoding {}: {e:?}", self.path.display())))
    }

    /// Persist `snap` atomically, remembering the first I/O failure (the
    /// engine sink is infallible, so errors are surfaced after the run).
    fn store(&self, snap: &Snapshot, first_err: &mut Option<String>) {
        if first_err.is_none() {
            if let Err(e) = write_atomic(&self.path, snap.as_bytes()) {
                *first_err = Some(format!("writing {}: {e}", self.path.display()));
            }
        }
    }
}

/// The snapshot file name of a scenario: its name with every character
/// outside `[A-Za-z0-9._-]` mapped to `-`, plus `.ckpt`.
fn ckpt_file_name(scenario: &str) -> String {
    let mut s: String = scenario
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect();
    s.push_str(".ckpt");
    s
}

/// Run one scenario with the given suite seed.
///
/// # Errors
/// Propagates simulator errors, tagged with the scenario name.
pub fn run_scenario(
    sc: &Scenario,
    suite_seed: u64,
    probe: Option<AllocProbe>,
) -> Result<ScenarioReport, LabError> {
    run_scenario_inner(sc, suite_seed, probe, None)
}

fn run_scenario_inner(
    sc: &Scenario,
    suite_seed: u64,
    probe: Option<AllocProbe>,
    ckpt: Option<&CkptFile>,
) -> Result<ScenarioReport, LabError> {
    let seed = sc.seed(suite_seed);
    let a0 = probe.map(|p| p()).unwrap_or(0);
    let t0 = Instant::now();
    let g = sc.family.build(seed);
    let (metrics, valid) = match sc.problem {
        ProblemKind::Coloring => solve(&DeltaPlusOneColoring, sc, &g, seed, ckpt),
        ProblemKind::ListColoring => solve(&DegreePlusOneListColoring, sc, &g, seed, ckpt),
        ProblemKind::Mis => solve(&MaximalIndependentSet, sc, &g, seed, ckpt),
        ProblemKind::VertexCover => solve(&MinimalVertexCover, sc, &g, seed, ckpt),
        ProblemKind::Matching => solve_edge(&MaximalMatching, sc, &g, seed),
        ProblemKind::EdgeColoring => solve_edge(&EdgeColoring, sc, &g, seed),
    }
    .map_err(|error| LabError {
        scenario: sc.name.clone(),
        error,
    })?;
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let allocations = probe.map(|p| p() - a0).unwrap_or(0);
    let budget = audited_budget_of(sc, &g, seed);
    let bound_ok = metrics.max_awake <= budget.awake && metrics.rounds <= budget.rounds;
    Ok(ScenarioReport {
        name: sc.name.clone(),
        problem: sc.problem.key(),
        family: sc.family.key(),
        algo: sc.algo.key(),
        seed,
        n: g.n(),
        m: g.m(),
        valid,
        awake_bound: budget.awake,
        round_bound: budget.rounds,
        bound_ok,
        metrics,
        timing: Timing {
            wall_ns,
            allocations,
        },
    })
}

/// The closed-form budget of a scenario on its built graph — the
/// [`bounds::budget_for`] entry point with the harness's axis mapping.
/// The worker-pool executor is bit-for-bit identical to the serial one,
/// so both trivial executors share [`BoundAlgo::Trivial`]; the staged
/// pipelines use the same [`Params`] derivation the solvers themselves
/// apply ([`Params::for_graph`]).
///
/// # Panics
/// Panics on an unsupported (algo × problem) pairing — those fail the
/// scenario with [`RunError::UnsupportedAlgo`] before budgets are
/// consulted, so reaching this with one is a harness bug.
pub fn budget_of(sc: &Scenario, g: &Graph) -> bounds::Budget {
    let (algo, class) = bound_axes(sc);
    let params = Params::for_graph(g);
    bounds::budget_for(algo, class, g, &params)
        .expect("supported (algo × problem) pairings have budgets")
}

/// The budget a scenario is *audited* against: [`budget_of`] on fault-free
/// rows, the closed-form degraded budget
/// ([`bounds::degraded_budget_for`]) on fault-injected ones — evaluated at
/// the exact [`FaultPlan`] the run injects (`seed` is the scenario's
/// derived seed, which also seeds the plan). There is no audit exemption
/// for fault scenarios: the degraded budget is a hard gate like any other.
///
/// # Panics
/// Like [`budget_of`], on an unsupported (algo × problem) pairing.
pub fn audited_budget_of(sc: &Scenario, g: &Graph, seed: u64) -> bounds::Budget {
    match sc.faults.map(|f| f.plan(seed)) {
        Some(plan) if plan.is_active() => {
            let (algo, class) = bound_axes(sc);
            let params = Params::for_graph(g);
            bounds::degraded_budget_for(algo, class, g, &params, &plan)
                .expect("supported (algo × problem) pairings have degraded budgets")
        }
        _ => budget_of(sc, g),
    }
}

/// The harness's axis mapping into [`bounds`]: both trivial executors are
/// bit-for-bit identical and share [`BoundAlgo::Trivial`].
fn bound_axes(sc: &Scenario) -> (BoundAlgo, ProblemClass) {
    let algo = match sc.algo {
        Algo::Trivial | Algo::TrivialThreaded(_) => BoundAlgo::Trivial,
        Algo::Bm21 => BoundAlgo::Bm21,
        Algo::Theorem1 => BoundAlgo::Theorem1,
    };
    let class = if sc.problem.is_edge() {
        ProblemClass::Edge
    } else {
        ProblemClass::Vertex
    };
    (algo, class)
}

/// Run a family of vertex programs through every executor path a scenario
/// can take — resume from a persisted snapshot, fresh checkpointed run, or
/// plain run; serial or worker-pool; fault-injected or not. All paths are
/// bit-for-bit equivalent on the deterministic metrics; snapshots carry
/// the fault plan and its stream position, so a resumed faulty run
/// continues the exact same injection schedule.
fn run_vertex<Q>(
    g: &Graph,
    programs: impl Fn() -> Vec<Q>,
    config: Config,
    workers: Option<usize>,
    plan: Option<&FaultPlan>,
    ckpt: Option<&CkptFile>,
    resumed: Option<Snapshot>,
) -> Result<Run<Q::Output>, RunError>
where
    Q: Program + Persist + Send,
    Q::Msg: Codec,
    Q::Output: Codec,
{
    let engine = Engine::new(g, config);
    let mut store_err: Option<String> = None;
    let run = match (resumed, ckpt.and_then(|ck| ck.every)) {
        // restore the persisted round boundary, finish the run
        (Some(snap), _) => match workers {
            None => engine
                .resume(programs(), &snap)
                .map_err(|e| RunError::Checkpoint(format!("resume: {e}")))?,
            Some(w) => threaded::resume_threaded(g, programs(), &snap, w)
                .map_err(|e| RunError::Checkpoint(format!("resume: {e}")))?,
        },
        // fresh recoverable run: persist a snapshot every N rounds
        (None, Some(every)) => {
            let ck = ckpt.expect("every implies a checkpoint file");
            match workers {
                None => engine
                    .run_checkpointed(programs(), plan, every, |s| ck.store(s, &mut store_err))?,
                Some(w) => threaded::run_threaded_checkpointed(
                    g,
                    programs(),
                    config,
                    w,
                    plan,
                    every,
                    |s| ck.store(s, &mut store_err),
                )?,
            }
        }
        // plain run (with or without fault injection)
        (None, None) => match (workers, plan) {
            (None, None) => engine.run(programs())?,
            (None, Some(p)) => engine.run_faulty(programs(), p)?,
            (Some(w), None) => threaded::run_threaded(g, programs(), config, w)?,
            (Some(w), Some(p)) => threaded::run_threaded_faulty(g, programs(), config, w, p)?,
        },
    };
    if let Some(msg) = store_err {
        return Err(RunError::Checkpoint(msg));
    }
    Ok(run)
}

/// Solve the scenario's problem on `g` with the scenario's algorithm and
/// validate the outputs. `seed` is the scenario's derived seed (it also
/// seeds the fault plan, if any); `ckpt` carries the snapshot file of a
/// recoverable run. An active fault plan routes the trivial executors
/// through the [`Redundant`] time-redundancy wrapper and the staged
/// pipelines through their `*_faulty` entry points — the recovery
/// contract every solver now honors.
fn solve<P>(
    problem: &P,
    sc: &Scenario,
    g: &Graph,
    seed: u64,
    ckpt: Option<&CkptFile>,
) -> Result<(ScenarioMetrics, bool), RunError>
where
    P: OLocalProblem + Clone + Send + Sync,
    P::Input: Clone + Codec,
    P::Output: Codec,
{
    let inputs = problem.trivial_inputs(g);
    let plan = sc.faults.map(|f| f.plan(seed));
    let active = plan.filter(|p| p.is_active());
    let programs = || -> Vec<TrivialGreedy<P>> {
        g.nodes()
            .map(|v| TrivialGreedy::new(problem.clone(), inputs[v.index()].clone()))
            .collect()
    };
    match sc.algo {
        Algo::Trivial | Algo::TrivialThreaded(_) => {
            let workers = match sc.algo {
                Algo::TrivialThreaded(w) => Some(w),
                _ => None,
            };
            let resumed = match ckpt {
                Some(ck) => ck.load()?,
                None => None,
            };
            let run = match &active {
                // An active plan wraps every program in time redundancy —
                // the same sizing and round cap `resilient::run_stage`
                // applies to the staged pipelines, so the suite's degraded
                // budgets gate this path too.
                Some(p) => {
                    let base = bounds::trivial_rounds(g);
                    let s = redundancy_for(p, g.n(), base);
                    let cap = Config {
                        max_rounds: bounds::degraded_stage_rounds(base, s, p),
                        ..Config::default()
                    };
                    let wrapped = || -> Vec<Redundant<TrivialGreedy<P>>> {
                        programs()
                            .into_iter()
                            .map(|q| Redundant::new(q, s))
                            .collect()
                    };
                    run_vertex(g, wrapped, cap, workers, Some(p), ckpt, resumed)?
                }
                None => run_vertex(
                    g,
                    programs,
                    Config::default(),
                    workers,
                    plan.as_ref(),
                    ckpt,
                    resumed,
                )?,
            };
            let valid = problem.validate(g, &inputs, &run.outputs).is_ok();
            Ok((ScenarioMetrics::from_metrics(&run.metrics), valid))
        }
        Algo::Bm21 => {
            let r = match &active {
                Some(p) => bm21::solve_faulty(g, problem, &inputs, None, p, None)?,
                None => bm21::solve(g, problem, &inputs, None)?,
            };
            let valid = problem.validate(g, &inputs, &r.outputs).is_ok();
            Ok((ScenarioMetrics::from_composition(&r.composition), valid))
        }
        Algo::Theorem1 => {
            let r = match &active {
                Some(p) => theorem1::solve_with_inputs_faulty(
                    g,
                    problem,
                    &inputs,
                    Default::default(),
                    p,
                    None,
                )?,
                None => theorem1::solve_with_inputs(g, problem, &inputs, Default::default())?,
            };
            let valid = problem.validate(g, &inputs, &r.outputs).is_ok();
            Ok((ScenarioMetrics::from_composition(&r.composition), valid))
        }
    }
}

/// Solve an edge-problem scenario through the line-graph virtualization
/// adapter and validate the per-edge outputs. Recoverable runs re-execute
/// edge scenarios deterministically rather than snapshotting them (the
/// adapter's host state is [`awake_sleeping::Persist`]-capable, but the
/// suite keeps snapshot files to the vertex executors). Fault injection —
/// crash-restarts included — rides the adapter through the
/// [`Redundant`]-wrapped `solve_edges_faulty` entry points and is audited
/// against the degraded budgets.
fn solve_edge<P>(
    problem: &P,
    sc: &Scenario,
    g: &Graph,
    seed: u64,
) -> Result<(ScenarioMetrics, bool), RunError>
where
    P: EdgeProblem + Clone + Send + Sync,
    P::Input: Clone,
    P::Output: awake_sleeping::Codec,
{
    let inputs = problem.trivial_inputs(g);
    let plan = sc.faults.map(|f| f.plan(seed));
    let run = match (sc.algo, &plan) {
        (Algo::Trivial, None) => linegraph::solve_edges(g, problem, &inputs, Config::default())?,
        (Algo::Trivial, Some(p)) => {
            linegraph::solve_edges_faulty(g, problem, &inputs, Config::default(), p)?
        }
        (Algo::TrivialThreaded(workers), None) => {
            linegraph::solve_edges_threaded(g, problem, &inputs, Config::default(), workers)?
        }
        (Algo::TrivialThreaded(workers), Some(p)) => linegraph::solve_edges_threaded_faulty(
            g,
            problem,
            &inputs,
            Config::default(),
            workers,
            p,
        )?,
        (Algo::Bm21 | Algo::Theorem1, _) => {
            return Err(RunError::UnsupportedAlgo {
                problem: problem.name(),
                algo: sc.algo.key(),
            })
        }
    };
    let valid = problem.validate(g, &inputs, &run.outputs).is_ok();
    Ok((ScenarioMetrics::from_metrics(&run.metrics), valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GraphFamily;

    fn tiny(algo: Algo) -> Scenario {
        Scenario::of(GraphFamily::Gnp { n: 24, p: 0.15 }, ProblemKind::Mis, algo).build()
    }

    #[test]
    fn all_algorithms_run_and_validate_within_budget() {
        for algo in [
            Algo::Trivial,
            Algo::TrivialThreaded(2),
            Algo::Bm21,
            Algo::Theorem1,
        ] {
            let r = run_scenario(&tiny(algo), 3, None).unwrap();
            assert!(r.valid, "{} invalid", r.name);
            assert!(r.metrics.max_awake > 0);
            assert_eq!(r.n, 24);
            // the measured-vs-stated audit `bounds.rs` promises
            assert!(
                r.bound_ok,
                "{}: awake {}/{} rounds {}/{}",
                r.name, r.metrics.max_awake, r.awake_bound, r.metrics.rounds, r.round_bound
            );
            assert!(r.metrics.awake_p50 <= r.metrics.awake_p99);
            assert!(r.metrics.awake_p99 <= r.metrics.max_awake);
        }
    }

    #[test]
    fn serial_and_threaded_trivial_agree_exactly() {
        // same family ⇒ same seed ⇒ same graph instance
        let a = run_scenario(&tiny(Algo::Trivial), 3, None).unwrap();
        let b = run_scenario(&tiny(Algo::TrivialThreaded(4)), 3, None).unwrap();
        assert_eq!(a.metrics, b.metrics, "executors must agree bit for bit");
    }

    #[test]
    fn sharded_runner_matches_serial() {
        let scenarios: Vec<Scenario> = [
            ProblemKind::Coloring,
            ProblemKind::ListColoring,
            ProblemKind::Mis,
            ProblemKind::VertexCover,
        ]
        .into_iter()
        .map(|p| Scenario::of(GraphFamily::RandomTree { n: 32 }, p, Algo::Bm21).build())
        .collect();
        let serial = Runner::serial().run("t", &scenarios, 11).unwrap();
        let sharded = Runner::sharded(3).run("t", &scenarios, 11).unwrap();
        assert_eq!(serial.canonical_json(), sharded.canonical_json());
    }

    #[test]
    fn observed_run_streams_growing_in_order_prefixes() {
        let scenarios: Vec<Scenario> = [
            ProblemKind::Coloring,
            ProblemKind::ListColoring,
            ProblemKind::Mis,
            ProblemKind::VertexCover,
        ]
        .into_iter()
        .map(|p| Scenario::of(GraphFamily::RandomTree { n: 32 }, p, Algo::Bm21).build())
        .collect();
        for runner in [Runner::serial(), Runner::sharded(3)] {
            let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let r = runner
                .run_observed("t", &scenarios, 11, |partial| {
                    // every emission is an in-suite-order prefix
                    for (i, row) in partial.scenarios.iter().enumerate() {
                        assert_eq!(row.name, scenarios[i].name);
                    }
                    seen.lock().unwrap().push(partial.scenarios.len());
                })
                .unwrap();
            let seen = seen.into_inner().unwrap();
            assert!(seen.windows(2).all(|w| w[0] < w[1]), "prefixes must grow");
            assert_eq!(
                seen.last().copied(),
                Some(r.scenarios.len()),
                "the last emission must carry the whole suite"
            );
        }
    }

    #[test]
    fn errors_carry_the_scenario_name() {
        let e = LabError {
            scenario: "x".into(),
            error: RunError::Sim(SimError::RoundBudgetExceeded { limit: 1 }),
        };
        assert!(e.to_string().contains("scenario x"));
        assert!(e.to_string().contains("budget 1"));
    }

    fn tiny_edge(problem: ProblemKind, algo: Algo) -> Scenario {
        Scenario::of(GraphFamily::Gnp { n: 24, p: 0.15 }, problem, algo).build()
    }

    #[test]
    fn edge_problems_run_and_validate_on_both_executors() {
        for problem in ProblemKind::EDGE {
            let a = run_scenario(&tiny_edge(problem, Algo::Trivial), 3, None).unwrap();
            assert!(a.valid, "{} invalid", a.name);
            assert!(a.metrics.max_awake > 0);
            assert!(
                a.bound_ok,
                "{}: awake {}/{} rounds {}/{}",
                a.name, a.metrics.max_awake, a.awake_bound, a.metrics.rounds, a.round_bound
            );
            // serial/threaded share the graph instance and must agree
            let b = run_scenario(&tiny_edge(problem, Algo::TrivialThreaded(4)), 3, None).unwrap();
            assert_eq!(a.metrics, b.metrics, "executors must agree bit for bit");
        }
    }

    #[test]
    fn edge_problems_reject_staged_solvers() {
        let e =
            run_scenario(&tiny_edge(ProblemKind::Matching, Algo::Theorem1), 3, None).unwrap_err();
        assert!(
            matches!(e.error, RunError::UnsupportedAlgo { .. }),
            "got {e}"
        );
        assert!(e.to_string().contains("theorem1"));
    }

    use crate::scenario::FaultSpec;

    /// Rates high enough that every fault kind fires on a 80-node run,
    /// including crash-restarts at round 1 and at decision rounds. The
    /// quiet tail lets the run settle, so the degraded budgets apply and
    /// `bound_ok` is a real gate on these rows.
    fn rough() -> FaultSpec {
        FaultSpec {
            drop_ppm: 50_000,
            dup_ppm: 30_000,
            delay_ppm: 30_000,
            crash_ppm: 20_000,
            delay_rounds: 2,
            burst_start: 0,
            burst_len: 0,
            quiet_after: 48,
        }
    }

    fn faulty(problem: ProblemKind, algo: Algo) -> Scenario {
        Scenario::of(GraphFamily::Gnp { n: 80, p: 0.08 }, problem, algo)
            .with_faults(rough())
            .build()
    }

    #[test]
    fn fault_injected_scenarios_complete_identically_on_both_executors() {
        for problem in [ProblemKind::Mis, ProblemKind::Coloring] {
            let a = run_scenario(&faulty(problem, Algo::Trivial), 5, None).unwrap();
            let b = run_scenario(&faulty(problem, Algo::TrivialThreaded(4)), 5, None).unwrap();
            assert_eq!(a.metrics, b.metrics, "{problem:?}: executors diverged");
            // the plan must actually have injected something, crashes
            // included — the run recovers, validates, and stays within
            // the degraded budget
            assert!(a.metrics.faults_dropped > 0, "{problem:?}: no drops");
            assert!(a.metrics.faults_crashed > 0, "{problem:?}: no crashes");
            assert!(a.valid, "{}: invalid after recovery", a.name);
            assert!(
                a.bound_ok,
                "{}: awake {}/{} rounds {}/{}",
                a.name, a.metrics.max_awake, a.awake_bound, a.metrics.rounds, a.round_bound
            );
        }
    }

    #[test]
    fn edge_scenarios_take_message_and_crash_faults() {
        // message-only faults ride the line-graph adapter as before
        let msg_only = FaultSpec {
            crash_ppm: 0,
            ..rough()
        };
        let sc = |algo| {
            Scenario::of(
                GraphFamily::Gnp { n: 80, p: 0.08 },
                ProblemKind::Matching,
                algo,
            )
            .with_faults(msg_only)
            .build()
        };
        let a = run_scenario(&sc(Algo::Trivial), 5, None).unwrap();
        let b = run_scenario(&sc(Algo::TrivialThreaded(4)), 5, None).unwrap();
        assert_eq!(a.metrics, b.metrics, "executors diverged");
        assert!(a.metrics.faults_dropped > 0, "no drops injected");
        // crash-restart now rides the adapter too: every host replica
        // rewinds together under the time-redundancy wrapper, recovers,
        // and the row gates against the degraded budget
        let a = run_scenario(&faulty(ProblemKind::Matching, Algo::Trivial), 5, None).unwrap();
        let b = run_scenario(
            &faulty(ProblemKind::Matching, Algo::TrivialThreaded(4)),
            5,
            None,
        )
        .unwrap();
        assert_eq!(a.metrics, b.metrics, "executors diverged under crashes");
        assert!(a.metrics.faults_crashed > 0, "no crashes injected");
        assert!(a.valid, "{}: invalid after recovery", a.name);
        assert!(
            a.bound_ok,
            "{}: awake {}/{} rounds {}/{}",
            a.name, a.metrics.max_awake, a.awake_bound, a.metrics.rounds, a.round_bound
        );
    }

    #[test]
    fn staged_solvers_take_fault_injection() {
        // smaller graph: the staged pipelines run many stretched stages
        let small = |algo| {
            Scenario::of(GraphFamily::Gnp { n: 36, p: 0.12 }, ProblemKind::Mis, algo)
                .with_faults(rough())
                .build()
        };
        for algo in [Algo::Bm21, Algo::Theorem1] {
            let r = run_scenario(&small(algo), 5, None).unwrap();
            assert!(r.valid, "{}: invalid after recovery", r.name);
            assert!(r.metrics.faults_crashed > 0, "{}: no crashes", r.name);
            assert!(
                r.bound_ok,
                "{}: awake {}/{} rounds {}/{}",
                r.name, r.metrics.max_awake, r.awake_bound, r.metrics.rounds, r.round_bound
            );
        }
    }

    #[test]
    fn torn_progress_rows_are_typed_and_only_they_rerun() {
        // a complete ledger parses cleanly
        let suite = vec![tiny(Algo::Trivial), tiny(Algo::Bm21)];
        let report = Runner::serial().run("t", &suite, 9).unwrap();
        let (rows, errors) = parse_progress(&report.canonical_json());
        assert_eq!(rows.len(), 2);
        assert!(errors.is_empty(), "clean ledger: {errors:?}");
        // tear one row mid-write: drop a required field from row 1
        let torn = report
            .canonical_json()
            .replacen("\"max_awake\"", "\"mangled\"", 2)
            .replacen("\"mangled\"", "\"max_awake\"", 1);
        let (rows, errors) = parse_progress(&torn);
        assert_eq!(rows.len(), 1, "the intact row survives");
        assert_eq!(rows[0].name, suite[0].name);
        assert_eq!(errors, vec![ProgressError::TornRow(1)]);
        // a foreign document is a typed whole-ledger miss
        let (rows, errors) = parse_progress("{\"schema\": \"other/v1\"}");
        assert!(rows.is_empty());
        assert_eq!(errors, vec![ProgressError::Document]);
        // run_recoverable on the torn ledger reloads row 0, re-runs row 1,
        // and converges to the same canonical report
        let dir = scratch_dir("torn");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("progress.json"), &torn).unwrap();
        let recovered = Runner::serial()
            .run_recoverable("t", &suite, 9, &dir, None)
            .unwrap();
        assert_eq!(report.canonical_json(), recovered.canonical_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("awake-lab-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A mixed suite covering every recoverable-run path: snapshot-capable
    /// vertex executors (serial + threaded, one fault-injected), an edge
    /// scenario (re-runs deterministically), and a staged pipeline.
    fn mixed_suite() -> Vec<Scenario> {
        vec![
            tiny(Algo::Trivial),
            tiny(Algo::TrivialThreaded(2)),
            faulty(ProblemKind::Mis, Algo::Trivial),
            tiny_edge(ProblemKind::Matching, Algo::Trivial),
            tiny(Algo::Bm21),
        ]
    }

    #[test]
    fn recoverable_run_matches_the_plain_run_byte_for_byte() {
        let dir = scratch_dir("fresh");
        let suite = mixed_suite();
        let plain = Runner::serial().run("t", &suite, 9).unwrap();
        let recoverable = Runner::serial()
            .run_recoverable("t", &suite, 9, &dir, Some(2))
            .unwrap();
        assert_eq!(plain.canonical_json(), recoverable.canonical_json());
        assert!(dir.join("progress.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_consumes_progress_rows_and_mid_run_snapshots() {
        let dir = scratch_dir("resume");
        let suite = mixed_suite();
        let plain = Runner::serial().run("t", &suite, 9).unwrap();
        // checkpointed first pass: leaves progress.json and .ckpt files
        Runner::serial()
            .run_recoverable("t", &suite, 9, &dir, Some(2))
            .unwrap();
        let ckpts: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
            .collect();
        assert!(!ckpts.is_empty(), "no snapshot files were written");
        // resume with complete progress: every row reloads, nothing re-runs
        let resumed = Runner::serial()
            .run_recoverable("t", &suite, 9, &dir, None)
            .unwrap();
        assert_eq!(plain.canonical_json(), resumed.canonical_json());
        // drop the progress ledger but keep the snapshots: scenarios
        // restore from their mid-run state and finish to the same report
        std::fs::remove_file(dir.join("progress.json")).unwrap();
        // a torn temp file from a simulated kill must be invisible
        std::fs::write(dir.join("progress.json.tmp"), b"{\"torn\":").unwrap();
        let restored = Runner::serial()
            .run_recoverable("t", &suite, 9, &dir, None)
            .unwrap();
        assert_eq!(plain.canonical_json(), restored.canonical_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_progress_is_ignored_and_garbage_snapshots_are_reported() {
        let dir = scratch_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let suite = vec![tiny(Algo::Trivial)];
        // unparseable progress: treated as "nothing done yet"
        std::fs::write(dir.join("progress.json"), b"not json at all").unwrap();
        let plain = Runner::serial().run("t", &suite, 9).unwrap();
        let r = Runner::serial()
            .run_recoverable("t", &suite, 9, &dir, None)
            .unwrap();
        assert_eq!(plain.canonical_json(), r.canonical_json());
        // a corrupt snapshot file is a hard, named error — silently
        // restarting would hide data loss
        std::fs::remove_file(dir.join("progress.json")).unwrap();
        std::fs::write(dir.join(ckpt_file_name(&suite[0].name)), b"BADSNAP!").unwrap();
        let e = Runner::serial()
            .run_recoverable("t", &suite, 9, &dir, None)
            .unwrap_err();
        assert!(matches!(e.error, RunError::Checkpoint(_)), "got {e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
