//! Executing scenarios: serially, or sharded across worker threads.
//!
//! The runner guarantees that the *deterministic* part of a
//! [`Report`] — everything in
//! [`ScenarioMetrics`] plus the graph
//! shape and validation verdict — is identical regardless of shard count:
//! each scenario derives its RNG seed from the suite seed and its
//! graph-family key ([`Scenario::seed`]), runs independently, and results
//! are merged in suite order. The determinism test in `tests/golden.rs`
//! asserts this.

use crate::report::{Report, ScenarioMetrics, ScenarioReport, Timing};
use crate::scenario::{Algo, ProblemKind, Scenario};
use awake_core::bounds::{self, BoundAlgo, ProblemClass};
use awake_core::params::Params;
use awake_core::trivial::TrivialGreedy;
use awake_core::{bm21, linegraph, theorem1};
use awake_graphs::Graph;
use awake_olocal::edge::{EdgeColoring, MaximalMatching};
use awake_olocal::problems::{
    DegreePlusOneListColoring, DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover,
};
use awake_olocal::{EdgeProblem, OLocalProblem};
use awake_sleeping::{threaded, Config, Engine, SimError};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Why a scenario could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The simulator aborted.
    Sim(SimError),
    /// The scenario paired a problem with a solver that cannot run it
    /// (edge problems ride the line-graph adapter, which exists for the
    /// `trivial` / `trivial-t*` executors only).
    UnsupportedAlgo {
        /// The problem's label.
        problem: &'static str,
        /// The solver's label.
        algo: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => e.fmt(f),
            RunError::UnsupportedAlgo { problem, algo } => {
                write!(f, "problem `{problem}` cannot run on solver `{algo}`")
            }
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// A scenario run failure: which scenario, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabError {
    /// The failing scenario's name.
    pub scenario: String,
    /// The underlying failure.
    pub error: RunError,
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario {}: {}", self.scenario, self.error)
    }
}

impl std::error::Error for LabError {}

/// Reads a process-wide allocation counter (installed by the host binary's
/// `#[global_allocator]`); the runner records deltas around each scenario.
pub type AllocProbe = fn() -> u64;

/// Runs suites of [`Scenario`]s and produces [`Report`]s.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    shards: usize,
    alloc_probe: Option<AllocProbe>,
}

impl Runner {
    /// A serial runner: scenarios execute one by one, in suite order.
    pub fn serial() -> Self {
        Runner {
            shards: 1,
            alloc_probe: None,
        }
    }

    /// A sharded runner: up to `shards` scenarios execute concurrently on
    /// worker threads (results are still reported in suite order, and the
    /// deterministic fields are identical to a serial run).
    pub fn sharded(shards: usize) -> Self {
        Runner {
            shards: shards.max(1),
            alloc_probe: None,
        }
    }

    /// Record per-scenario heap-allocation deltas through `probe`.
    ///
    /// Attribution is exact only on a serial runner — sharded scenarios
    /// share the process-wide counter, so their deltas overlap. The field
    /// is excluded from the canonical report either way.
    pub fn with_alloc_probe(mut self, probe: AllocProbe) -> Self {
        self.alloc_probe = Some(probe);
        self
    }

    /// Run every scenario and collect a [`Report`].
    ///
    /// # Errors
    /// Returns the first failing scenario's [`LabError`] (in suite order).
    pub fn run(&self, suite: &str, scenarios: &[Scenario], seed: u64) -> Result<Report, LabError> {
        let results: Vec<Result<ScenarioReport, LabError>> = if self.shards == 1 {
            scenarios
                .iter()
                .map(|sc| run_scenario(sc, seed, self.alloc_probe))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<Result<ScenarioReport, LabError>>>> =
                scenarios.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.shards.min(scenarios.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(sc) = scenarios.get(i) else { break };
                        let r = run_scenario(sc, seed, self.alloc_probe);
                        *slots[i].lock().unwrap() = Some(r);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
                .collect()
        };
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        Ok(Report {
            suite: suite.to_string(),
            seed,
            scenarios: out,
        })
    }
}

/// Run one scenario with the given suite seed.
///
/// # Errors
/// Propagates simulator errors, tagged with the scenario name.
pub fn run_scenario(
    sc: &Scenario,
    suite_seed: u64,
    probe: Option<AllocProbe>,
) -> Result<ScenarioReport, LabError> {
    let seed = sc.seed(suite_seed);
    let a0 = probe.map(|p| p()).unwrap_or(0);
    let t0 = Instant::now();
    let g = sc.family.build(seed);
    let (metrics, valid) = match sc.problem {
        ProblemKind::Coloring => solve(&DeltaPlusOneColoring, sc, &g),
        ProblemKind::ListColoring => solve(&DegreePlusOneListColoring, sc, &g),
        ProblemKind::Mis => solve(&MaximalIndependentSet, sc, &g),
        ProblemKind::VertexCover => solve(&MinimalVertexCover, sc, &g),
        ProblemKind::Matching => solve_edge(&MaximalMatching, sc, &g),
        ProblemKind::EdgeColoring => solve_edge(&EdgeColoring, sc, &g),
    }
    .map_err(|error| LabError {
        scenario: sc.name.clone(),
        error,
    })?;
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let allocations = probe.map(|p| p() - a0).unwrap_or(0);
    let budget = budget_of(sc, &g);
    let bound_ok = metrics.max_awake <= budget.awake && metrics.rounds <= budget.rounds;
    Ok(ScenarioReport {
        name: sc.name.clone(),
        problem: sc.problem.key(),
        family: sc.family.key(),
        algo: sc.algo.key(),
        seed,
        n: g.n(),
        m: g.m(),
        valid,
        awake_bound: budget.awake,
        round_bound: budget.rounds,
        bound_ok,
        metrics,
        timing: Timing {
            wall_ns,
            allocations,
        },
    })
}

/// The closed-form budget of a scenario on its built graph — the
/// [`bounds::budget_for`] entry point with the harness's axis mapping.
/// The worker-pool executor is bit-for-bit identical to the serial one,
/// so both trivial executors share [`BoundAlgo::Trivial`]; the staged
/// pipelines use the same [`Params`] derivation the solvers themselves
/// apply ([`Params::for_graph`]).
///
/// # Panics
/// Panics on an unsupported (algo × problem) pairing — those fail the
/// scenario with [`RunError::UnsupportedAlgo`] before budgets are
/// consulted, so reaching this with one is a harness bug.
pub fn budget_of(sc: &Scenario, g: &Graph) -> bounds::Budget {
    let algo = match sc.algo {
        Algo::Trivial | Algo::TrivialThreaded(_) => BoundAlgo::Trivial,
        Algo::Bm21 => BoundAlgo::Bm21,
        Algo::Theorem1 => BoundAlgo::Theorem1,
    };
    let class = if sc.problem.is_edge() {
        ProblemClass::Edge
    } else {
        ProblemClass::Vertex
    };
    let params = Params::for_graph(g);
    bounds::budget_for(algo, class, g, &params)
        .expect("supported (algo × problem) pairings have budgets")
}

/// Solve the scenario's problem on `g` with the scenario's algorithm and
/// validate the outputs.
fn solve<P>(problem: &P, sc: &Scenario, g: &Graph) -> Result<(ScenarioMetrics, bool), RunError>
where
    P: OLocalProblem + Clone + Send + Sync,
    P::Input: Clone,
{
    let inputs = problem.trivial_inputs(g);
    match sc.algo {
        Algo::Trivial => {
            let programs: Vec<TrivialGreedy<P>> = g
                .nodes()
                .map(|v| TrivialGreedy::new(problem.clone(), inputs[v.index()].clone()))
                .collect();
            let run = Engine::new(g, Config::default()).run(programs)?;
            let valid = problem.validate(g, &inputs, &run.outputs).is_ok();
            Ok((ScenarioMetrics::from_metrics(&run.metrics), valid))
        }
        Algo::TrivialThreaded(workers) => {
            let programs: Vec<TrivialGreedy<P>> = g
                .nodes()
                .map(|v| TrivialGreedy::new(problem.clone(), inputs[v.index()].clone()))
                .collect();
            let run = threaded::run_threaded(g, programs, Config::default(), workers)?;
            let valid = problem.validate(g, &inputs, &run.outputs).is_ok();
            Ok((ScenarioMetrics::from_metrics(&run.metrics), valid))
        }
        Algo::Bm21 => {
            let r = bm21::solve(g, problem, &inputs, None)?;
            let valid = problem.validate(g, &inputs, &r.outputs).is_ok();
            Ok((ScenarioMetrics::from_composition(&r.composition), valid))
        }
        Algo::Theorem1 => {
            let r = theorem1::solve_with_inputs(g, problem, &inputs, Default::default())?;
            let valid = problem.validate(g, &inputs, &r.outputs).is_ok();
            Ok((ScenarioMetrics::from_composition(&r.composition), valid))
        }
    }
}

/// Solve an edge-problem scenario through the line-graph virtualization
/// adapter and validate the per-edge outputs.
fn solve_edge<P>(problem: &P, sc: &Scenario, g: &Graph) -> Result<(ScenarioMetrics, bool), RunError>
where
    P: EdgeProblem + Clone + Send + Sync,
    P::Input: Clone,
{
    let inputs = problem.trivial_inputs(g);
    let run = match sc.algo {
        Algo::Trivial => linegraph::solve_edges(g, problem, &inputs, Config::default())?,
        Algo::TrivialThreaded(workers) => {
            linegraph::solve_edges_threaded(g, problem, &inputs, Config::default(), workers)?
        }
        Algo::Bm21 | Algo::Theorem1 => {
            return Err(RunError::UnsupportedAlgo {
                problem: problem.name(),
                algo: sc.algo.key(),
            })
        }
    };
    let valid = problem.validate(g, &inputs, &run.outputs).is_ok();
    Ok((ScenarioMetrics::from_metrics(&run.metrics), valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GraphFamily;

    fn tiny(algo: Algo) -> Scenario {
        Scenario::of(GraphFamily::Gnp { n: 24, p: 0.15 }, ProblemKind::Mis, algo).build()
    }

    #[test]
    fn all_algorithms_run_and_validate_within_budget() {
        for algo in [
            Algo::Trivial,
            Algo::TrivialThreaded(2),
            Algo::Bm21,
            Algo::Theorem1,
        ] {
            let r = run_scenario(&tiny(algo), 3, None).unwrap();
            assert!(r.valid, "{} invalid", r.name);
            assert!(r.metrics.max_awake > 0);
            assert_eq!(r.n, 24);
            // the measured-vs-stated audit `bounds.rs` promises
            assert!(
                r.bound_ok,
                "{}: awake {}/{} rounds {}/{}",
                r.name, r.metrics.max_awake, r.awake_bound, r.metrics.rounds, r.round_bound
            );
            assert!(r.metrics.awake_p50 <= r.metrics.awake_p99);
            assert!(r.metrics.awake_p99 <= r.metrics.max_awake);
        }
    }

    #[test]
    fn serial_and_threaded_trivial_agree_exactly() {
        // same family ⇒ same seed ⇒ same graph instance
        let a = run_scenario(&tiny(Algo::Trivial), 3, None).unwrap();
        let b = run_scenario(&tiny(Algo::TrivialThreaded(4)), 3, None).unwrap();
        assert_eq!(a.metrics, b.metrics, "executors must agree bit for bit");
    }

    #[test]
    fn sharded_runner_matches_serial() {
        let scenarios: Vec<Scenario> = [
            ProblemKind::Coloring,
            ProblemKind::ListColoring,
            ProblemKind::Mis,
            ProblemKind::VertexCover,
        ]
        .into_iter()
        .map(|p| Scenario::of(GraphFamily::RandomTree { n: 32 }, p, Algo::Bm21).build())
        .collect();
        let serial = Runner::serial().run("t", &scenarios, 11).unwrap();
        let sharded = Runner::sharded(3).run("t", &scenarios, 11).unwrap();
        assert_eq!(serial.canonical_json(), sharded.canonical_json());
    }

    #[test]
    fn errors_carry_the_scenario_name() {
        let e = LabError {
            scenario: "x".into(),
            error: RunError::Sim(SimError::RoundBudgetExceeded { limit: 1 }),
        };
        assert!(e.to_string().contains("scenario x"));
        assert!(e.to_string().contains("budget 1"));
    }

    fn tiny_edge(problem: ProblemKind, algo: Algo) -> Scenario {
        Scenario::of(GraphFamily::Gnp { n: 24, p: 0.15 }, problem, algo).build()
    }

    #[test]
    fn edge_problems_run_and_validate_on_both_executors() {
        for problem in ProblemKind::EDGE {
            let a = run_scenario(&tiny_edge(problem, Algo::Trivial), 3, None).unwrap();
            assert!(a.valid, "{} invalid", a.name);
            assert!(a.metrics.max_awake > 0);
            assert!(
                a.bound_ok,
                "{}: awake {}/{} rounds {}/{}",
                a.name, a.metrics.max_awake, a.awake_bound, a.metrics.rounds, a.round_bound
            );
            // serial/threaded share the graph instance and must agree
            let b = run_scenario(&tiny_edge(problem, Algo::TrivialThreaded(4)), 3, None).unwrap();
            assert_eq!(a.metrics, b.metrics, "executors must agree bit for bit");
        }
    }

    #[test]
    fn edge_problems_reject_staged_solvers() {
        let e =
            run_scenario(&tiny_edge(ProblemKind::Matching, Algo::Theorem1), 3, None).unwrap_err();
        assert!(
            matches!(e.error, RunError::UnsupportedAlgo { .. }),
            "got {e}"
        );
        assert!(e.to_string().contains("theorem1"));
    }
}
