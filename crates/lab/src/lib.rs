//! **awake-lab** — the scenario harness: declarative batch experiments
//! over the Sleeping-model stack.
//!
//! The paper's headline claim is a *trade-off surface* — awake complexity
//! vs. round complexity across problems, graph families, and solvers.
//! This crate turns one point of that surface into a value you can build,
//! run, batch, and diff:
//!
//! * [`scenario`] — a [`Scenario`](scenario::Scenario) names a
//!   (graph family × problem × algorithm/executor) tuple over the four
//!   vertex problems and the two edge problems (maximal matching,
//!   (2Δ−1)-edge coloring, via the line-graph adapter). Build one with
//!   [`Scenario::of`](scenario::Scenario::of), or take a curated suite
//!   from [`scenario::presets`] (`quick`, `full`, `algos`, `executors`,
//!   `huge`, `edges`).
//! * [`runner`] — a [`Runner`](runner::Runner) executes a suite serially
//!   or sharded across worker threads. Every scenario derives its RNG
//!   seed from the suite seed and its graph-family key, so results are
//!   deterministic, independent of shard count, and same-family rows
//!   share one graph instance.
//! * [`report`] — a [`Report`](report::Report) captures rounds, awake
//!   complexity, messages, wall time, and allocations per scenario, and
//!   renders as an aligned text table or JSON. The *canonical* JSON form
//!   is byte-stable at a fixed seed (golden-tested); the same module's
//!   [`PerfStats`](report::PerfStats)/[`BenchReport`](report::BenchReport)
//!   are the schema of `BENCH_engine.json`, so micro benches and suites
//!   share one format.
//! * [`baselines`] — diffs a fresh bench report against the committed
//!   `BENCH_baseline.json` with per-metric tolerance rules (the CI
//!   regression gate).
//! * [`json`] — the minimal std-only JSON reader backing the differ.
//!
//! # Defining and running a scenario
//!
//! ```
//! use awake_lab::runner::Runner;
//! use awake_lab::scenario::{Algo, GraphFamily, ProblemKind, Scenario};
//!
//! let scenario = Scenario::of(
//!     GraphFamily::RandomTree { n: 48 },
//!     ProblemKind::Mis,
//!     Algo::Theorem1,
//! )
//! .build();
//!
//! let report = Runner::serial().run("demo", &[scenario], 7).unwrap();
//! let row = &report.scenarios[0];
//! assert!(row.valid); // the MIS validator accepted the outputs
//! println!("{}", report.text_table());
//! println!("{}", report.canonical_json());
//! ```
//!
//! # Running a preset suite
//!
//! ```no_run
//! use awake_lab::{runner::Runner, scenario::presets};
//!
//! let suite = presets::by_name("quick").unwrap();
//! let report = Runner::sharded(4).run("quick", &suite, 1).unwrap();
//! std::fs::write("suite_report.json", report.to_json()).unwrap();
//! ```
//!
//! or from the command line:
//!
//! ```sh
//! cargo run --release -p awake-lab --bin suite -- --preset quick
//! cargo run --release -p awake-lab --bin baseline-diff -- \
//!     BENCH_baseline.json BENCH_engine.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod fsio;
pub mod json;
pub mod report;
pub mod runner;
pub mod scenario;
