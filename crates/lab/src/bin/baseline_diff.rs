//! Diff a fresh `BENCH_engine.json` against the committed baseline — the
//! CI bench-regression gate.
//!
//! ```sh
//! cargo run --release -p awake-lab --bin baseline-diff -- \
//!     BENCH_baseline.json BENCH_engine.json [--tolerance 0.15]
//! ```
//!
//! Prints the per-metric diff table and exits non-zero on a gated
//! regression: a throughput drop beyond the tolerance, or any increase in
//! allocations per node-round (see `awake_lab::baselines` for the rules).
//!
//! With `--energy` the inputs are `BENCH_energy.json` documents instead
//! and the gate is the compression-cost ratio `wall_ms / awake_events`
//! per sweep point (fails on a rise beyond the tolerance).
//!
//! Exit codes: `0` gate passed, `1` gate failed (a metric regressed),
//! `2` usage or malformed JSON, `3` an input file is missing or
//! unreadable (the error names the file and how to produce it).

use awake_lab::baselines::{self, GateMode, Tolerances};
use awake_lab::json;
use std::process::ExitCode;

/// Exit code for a missing/unreadable input file, distinct from parse
/// and usage errors (`2`) so CI can tell "you forgot to run the bench"
/// from "the bench emitted garbage".
const EXIT_NO_INPUT: u8 = 3;

fn usage() -> ! {
    eprintln!(
        "usage: baseline-diff <baseline.json> <current.json> [--tolerance FRACTION] [--portable] [--energy]\n\
         \n  --portable  gate only machine-portable metrics (vs-legacy throughput\n\
         \x20             ratios and allocations per node-round); use when the\n\
         \x20             baseline was recorded on different hardware, e.g. in CI\n\
         \x20 --energy    inputs are BENCH_energy.json documents; gate the\n\
         \x20             wall_ms / awake_events compression-cost ratio per point"
    );
    std::process::exit(2);
}

/// Read and parse one input report. I/O failures (missing or unreadable
/// file) come back as `(EXIT_NO_INPUT, message-with-production-hint)`;
/// malformed JSON keeps the generic error code `2`.
fn load(path: &str, role: &str, hint: &str) -> Result<json::Value, (u8, String)> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        (
            EXIT_NO_INPUT,
            format!("cannot read the {role} report `{path}`: {e}\n  produce it with: {hint}"),
        )
    })?;
    json::parse(&text).map_err(|e| (2, format!("{path}: {e}")))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol = Tolerances::default();
    let mut mode = GateMode::Absolute;
    let mut energy = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(v) = argv.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    usage()
                };
                tol.throughput_drop = v;
            }
            "--portable" => mode = GateMode::Portable,
            "--energy" => energy = true,
            p if !p.starts_with("--") => paths.push(p.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage()
    };

    let result = (|| {
        if energy {
            let baseline = load(
                baseline_path,
                "baseline",
                "git restore the committed BENCH_energy.json, or bless a fresh sweep as the new baseline",
            )?;
            let current = load(
                current_path,
                "current",
                "cargo run --release -p awake-lab --bin suite -- --preset scaling  (writes BENCH_energy.json)",
            )?;
            return baselines::diff_energy(&baseline, &current, &tol).map_err(|e| (2u8, e));
        }
        let baseline = load(
            baseline_path,
            "baseline",
            "git restore the committed BENCH_baseline.json, or bless a fresh BENCH_engine.json as the new baseline",
        )?;
        let current = load(
            current_path,
            "current",
            "cargo bench -p awake-bench --bench micro  (writes BENCH_engine.json; BENCH_OUT=PATH overrides)",
        )?;
        baselines::diff_bench(&baseline, &current, &tol, mode).map_err(|e| (2u8, e))
    })();
    let rows = match result {
        Ok(rows) => rows,
        Err((code, e)) => {
            eprintln!("baseline-diff: {e}");
            return ExitCode::from(code);
        }
    };

    println!(
        "{} regression gate: {} vs {} (throughput tolerance {:.0}%, alloc epsilon {}{})\n",
        if energy { "compression" } else { "bench" },
        baseline_path,
        current_path,
        tol.throughput_drop * 100.0,
        tol.alloc_epsilon,
        if mode == GateMode::Portable {
            ", portable metrics only"
        } else {
            ""
        }
    );
    print!("{}", baselines::render_table(&rows));

    let failed = baselines::failures(&rows);
    if failed.is_empty() {
        println!("\ngate PASSED");
        ExitCode::SUCCESS
    } else {
        println!("\ngate FAILED ({} metric(s) regressed):", failed.len());
        for r in &failed {
            println!(
                "  {}: {:.4} -> {:.4} ({:+.1}%)",
                r.metric, r.baseline, r.current, r.change_pct
            );
        }
        ExitCode::FAILURE
    }
}
