//! Run a named scenario suite and write its JSON report.
//!
//! ```sh
//! cargo run --release -p awake-lab --bin suite -- --preset quick --audit
//! suite [--preset NAME] [--seed N] [--shards K] [--out PATH] [--audit]
//!       [--energy-out PATH] [--filter SUBSTR] [--list]
//! ```
//!
//! Exits non-zero if any scenario fails to run or fails validation; with
//! `--audit`, also if any scenario's measured awake/round complexity
//! exceeds its closed-form budget (`bound_ok = false` in the report).
//! The `scaling` preset additionally writes `BENCH_energy.json` — the
//! measured-vs-bound-vs-log₂ n trajectory (`--energy-out` overrides the
//! path, or forces the document for any preset).

use awake_lab::report::energy_json;
use awake_lab::runner::Runner;
use awake_lab::scenario::presets;
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the suite can report per-scenario deltas.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct Args {
    preset: String,
    seed: u64,
    shards: usize,
    out: String,
    list: bool,
    filter: Option<String>,
    audit: bool,
    energy_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: suite [--preset NAME] [--seed N] [--shards K] [--out PATH] [--audit] [--energy-out PATH] [--filter SUBSTR] [--list]\n\
         \n  --preset NAME     suite preset to run (default: quick)\
         \n  --seed N          suite seed; scenario seeds derive from it (default: 1)\
         \n  --shards K        run up to K scenarios concurrently (default: 1)\
         \n  --out PATH        where to write the JSON report (default: suite_report.json)\
         \n  --audit           fail if any measured awake/round complexity exceeds its closed-form budget\
         \n  --energy-out PATH where to write the energy trajectory (default: BENCH_energy.json, written automatically for the scaling preset)\
         \n  --filter SUBSTR   run only scenarios whose name contains SUBSTR\
         \n  --list            list presets and exit"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        preset: "quick".into(),
        seed: 1,
        shards: 1,
        out: "suite_report.json".into(),
        list: false,
        filter: None,
        audit: false,
        energy_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--preset" => args.preset = value("--preset"),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = value("--out"),
            "--filter" => args.filter = Some(value("--filter")),
            "--audit" => args.audit = true,
            "--energy-out" => args.energy_out = Some(value("--energy-out")),
            "--list" => args.list = true,
            _ => usage(),
        }
    }
    args
}

fn usage_missing(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage()
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        println!("available presets:");
        for (name, desc, scenarios) in presets::registry() {
            println!("  {name:<10} {desc} [{} scenarios]", scenarios.len());
        }
        return ExitCode::SUCCESS;
    }

    let Some(mut scenarios) = presets::by_name(&args.preset) else {
        eprintln!(
            "unknown preset `{}` — try --list for the registry",
            args.preset
        );
        return ExitCode::from(2);
    };
    if let Some(filter) = &args.filter {
        scenarios.retain(|s| s.name.contains(filter.as_str()));
        if scenarios.is_empty() {
            eprintln!(
                "filter `{filter}` matches no scenario of preset `{}`",
                args.preset
            );
            return ExitCode::from(2);
        }
    }

    println!(
        "suite `{}`: {} scenarios, seed {}, {} shard(s)\n",
        args.preset,
        scenarios.len(),
        args.seed,
        args.shards
    );
    let runner = if args.shards > 1 {
        Runner::sharded(args.shards)
    } else {
        Runner::serial()
    }
    .with_alloc_probe(alloc_count);

    let t0 = Instant::now();
    let report = match runner.run(&args.preset, &scenarios, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.text_table());
    println!("\nsuite wall time: {:.2?}", t0.elapsed());

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    // The scaling preset's whole point is the energy trajectory, so it
    // always writes the document; --energy-out forces it for any preset.
    if args.energy_out.is_some() || args.preset == "scaling" {
        let path = args.energy_out.as_deref().unwrap_or("BENCH_energy.json");
        if let Err(e) = std::fs::write(path, energy_json(&report)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    let invalid: Vec<&str> = report
        .scenarios
        .iter()
        .filter(|s| !s.valid)
        .map(|s| s.name.as_str())
        .collect();
    if !invalid.is_empty() {
        eprintln!("validation FAILED for: {}", invalid.join(", "));
        return ExitCode::FAILURE;
    }

    if args.audit {
        let violations: Vec<String> = report
            .scenarios
            .iter()
            .filter(|s| !s.bound_ok)
            .map(|s| {
                format!(
                    "{}: awake {}/{}, rounds {}/{}",
                    s.name, s.metrics.max_awake, s.awake_bound, s.metrics.rounds, s.round_bound
                )
            })
            .collect();
        if !violations.is_empty() {
            eprintln!("budget audit FAILED (measured > bound) for:");
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "budget audit passed: {} scenario(s) within their closed-form bounds",
            report.scenarios.len()
        );
    }
    ExitCode::SUCCESS
}
