//! Run a named scenario suite and write its JSON report.
//!
//! ```sh
//! cargo run --release -p awake-lab --bin suite -- --preset quick --audit
//! suite [--preset NAME] [--seed N] [--shards K] [--out PATH] [--audit]
//!       [--canonical] [--energy-out PATH] [--filter SUBSTR] [--list]
//!       [--budget-secs N]
//!       [--checkpoint-dir DIR] [--checkpoint-every N] [--resume DIR]
//! ```
//!
//! Exits non-zero if any scenario fails to run or fails validation; with
//! `--audit`, also if any scenario's measured awake/round complexity
//! exceeds its closed-form budget (`bound_ok = false` in the report).
//! Fault-injected scenarios are **not** exempt from either gate: they must
//! recover to a valid output and stay within the closed-form *degraded*
//! budget (`awake_core::bounds::degraded_budget_for`) their fault plan
//! implies.
//! The `scaling` and `deep` presets additionally write
//! `BENCH_energy.json` — the measured-vs-bound-vs-log₂ n trajectory
//! (`--energy-out` overrides the path, or forces the document for any
//! preset). The energy document **streams**: it is atomically rewritten
//! with the completed prefix each time a sweep point finishes, so a
//! killed sweep still leaves every finished point behind.
//!
//! `--budget-secs N` is CI's hard wall-clock gate: if the whole suite
//! takes longer than `N` seconds, the run fails *after completing*,
//! naming the slowest scenario (the first candidate to shrink or move to
//! the weekly deep sweep).
//!
//! All report files are written atomically (same-directory temp file +
//! rename), so a killed run never leaves a torn document under a final
//! name. With `--checkpoint-dir DIR` the run is *recoverable*: completed
//! scenarios persist to `DIR/progress.json` and in-flight engine state
//! snapshots to `DIR/<scenario>.ckpt` every `--checkpoint-every` rounds;
//! after a kill, `--resume DIR` continues from the persisted state to a
//! report that is byte-for-byte identical (in `--canonical` form) to the
//! uninterrupted run's.

use awake_lab::fsio::write_atomic;
use awake_lab::report::energy_json;
use awake_lab::runner::Runner;
use awake_lab::scenario::presets;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the suite can report per-scenario deltas.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct Args {
    preset: String,
    seed: u64,
    shards: usize,
    out: String,
    list: bool,
    filter: Option<String>,
    audit: bool,
    energy_out: Option<String>,
    canonical: bool,
    budget_secs: Option<u64>,
    checkpoint_dir: Option<String>,
    checkpoint_every: Option<u64>,
    resume: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: suite [--preset NAME] [--seed N] [--shards K] [--out PATH] [--audit] [--canonical] [--energy-out PATH] [--filter SUBSTR] [--list] [--budget-secs N] [--checkpoint-dir DIR] [--checkpoint-every N] [--resume DIR]\n\
         \n  --preset NAME        suite preset to run (default: quick)\
         \n  --seed N             suite seed; scenario seeds derive from it (default: 1)\
         \n  --shards K           run up to K scenarios concurrently (default: 1)\
         \n  --out PATH           where to write the JSON report (default: suite_report.json)\
         \n  --audit              fail if any measured awake/round complexity exceeds its closed-form budget\
         \n  --canonical          write the byte-stable canonical JSON form (no timing/alloc noise)\
         \n  --energy-out PATH    where to write the energy trajectory (default: BENCH_energy.json, written automatically for the scaling/deep presets; streamed point by point)\
         \n  --filter SUBSTR      run only scenarios whose name contains SUBSTR\
         \n  --list               list presets with scenario counts and gate flags, then exit\
         \n  --budget-secs N      fail if the suite's wall time exceeds N seconds, naming the slowest scenario\
         \n  --checkpoint-dir DIR make the run recoverable: persist progress and engine snapshots under DIR\
         \n  --checkpoint-every N snapshot in-flight engine state every N rounds (default: 100000; needs --checkpoint-dir)\
         \n  --resume DIR         continue a killed recoverable run from DIR's progress and snapshots"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        preset: "quick".into(),
        seed: 1,
        shards: 1,
        out: "suite_report.json".into(),
        list: false,
        filter: None,
        audit: false,
        energy_out: None,
        canonical: false,
        budget_secs: None,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--preset" => args.preset = value("--preset"),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = value("--out"),
            "--filter" => args.filter = Some(value("--filter")),
            "--audit" => args.audit = true,
            "--canonical" => args.canonical = true,
            "--energy-out" => args.energy_out = Some(value("--energy-out")),
            "--budget-secs" => {
                args.budget_secs = Some(value("--budget-secs").parse().unwrap_or_else(|_| usage()))
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    value("--checkpoint-every")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--resume" => args.resume = Some(value("--resume")),
            "--list" => args.list = true,
            _ => usage(),
        }
    }
    args
}

fn usage_missing(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage()
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        println!("available presets:");
        for p in presets::registry() {
            let flags = if p.flags.is_empty() {
                String::new()
            } else {
                format!(" ({})", p.flags.join(", "))
            };
            println!(
                "  {:<10} {} [{} scenarios]{flags}",
                p.name,
                p.desc,
                p.scenarios.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    let Some(mut scenarios) = presets::by_name(&args.preset) else {
        eprintln!(
            "unknown preset `{}` — try --list for the registry",
            args.preset
        );
        return ExitCode::from(2);
    };
    if let Some(filter) = &args.filter {
        scenarios.retain(|s| s.name.contains(filter.as_str()));
        if scenarios.is_empty() {
            eprintln!(
                "filter `{filter}` matches no scenario of preset `{}`",
                args.preset
            );
            return ExitCode::from(2);
        }
    }

    // --checkpoint-dir starts (or continues) a recoverable run under DIR;
    // --resume is the same mode but defaults to consuming snapshots only.
    // Either way scenarios run serially, so the shard count is ignored.
    let recovery: Option<(&str, Option<u64>)> = match (&args.checkpoint_dir, &args.resume) {
        (Some(_), Some(_)) => {
            eprintln!("--checkpoint-dir and --resume are mutually exclusive (both name DIR)");
            return ExitCode::from(2);
        }
        (Some(dir), None) => Some((dir, Some(args.checkpoint_every.unwrap_or(100_000)))),
        (None, Some(dir)) => Some((dir, args.checkpoint_every)),
        (None, None) => {
            if args.checkpoint_every.is_some() {
                eprintln!("--checkpoint-every needs --checkpoint-dir (or --resume)");
                return ExitCode::from(2);
            }
            None
        }
    };

    println!(
        "suite `{}`: {} scenarios, seed {}, {} shard(s)\n",
        args.preset,
        scenarios.len(),
        args.seed,
        args.shards
    );
    let runner = if args.shards > 1 {
        Runner::sharded(args.shards)
    } else {
        Runner::serial()
    }
    .with_alloc_probe(alloc_count);

    // The scaling/deep presets' whole point is the energy trajectory, so
    // they always write the document; --energy-out forces it for any
    // preset. The document streams: each finished point atomically
    // rewrites it with the completed prefix.
    let energy_path: Option<String> =
        if args.energy_out.is_some() || args.preset == "scaling" || args.preset == "deep" {
            Some(
                args.energy_out
                    .clone()
                    .unwrap_or_else(|| "BENCH_energy.json".into()),
            )
        } else {
            None
        };

    let t0 = Instant::now();
    let run = match recovery {
        Some((dir, every)) => {
            runner.run_recoverable(&args.preset, &scenarios, args.seed, Path::new(dir), every)
        }
        None => runner.run_observed(&args.preset, &scenarios, args.seed, |partial| {
            if let Some(path) = &energy_path {
                // best-effort streaming — the final write after the run
                // reports any persistent I/O failure
                let _ = write_atomic(Path::new(path), energy_json(partial).as_bytes());
            }
        }),
    };
    let report = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.text_table());
    let elapsed = t0.elapsed();
    println!("\nsuite wall time: {elapsed:.2?}");

    let body = if args.canonical {
        report.canonical_json()
    } else {
        report.to_json()
    };
    if let Err(e) = write_atomic(Path::new(&args.out), body.as_bytes()) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(path) = &energy_path {
        if let Err(e) = write_atomic(Path::new(path), energy_json(&report).as_bytes()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    // The hard wall-clock budget gate (CI's per-PR sweep guard). Checked
    // after the artifacts are written so a budget failure still leaves
    // the full report and energy document behind for inspection.
    if let Some(budget) = args.budget_secs {
        if elapsed.as_secs_f64() > budget as f64 {
            let slowest = report
                .scenarios
                .iter()
                .max_by(|a, b| a.timing.wall_ns.total_cmp(&b.timing.wall_ns))
                .expect("non-empty suite");
            eprintln!(
                "budget FAILED: suite took {:.1}s > {budget}s; slowest scenario: {} ({:.1}s)",
                elapsed.as_secs_f64(),
                slowest.name,
                slowest.timing.wall_ns / 1e9
            );
            return ExitCode::FAILURE;
        }
        println!("budget ok: {:.1}s of {budget}s", elapsed.as_secs_f64());
    }

    // Every row faces both exit gates — there is no fault exemption.
    // Fault-injected scenarios recover through the time-redundancy
    // contract, must still validate, and their budget columns carry the
    // closed-form *degraded* budgets, so `bound_ok` is contractual there
    // too (graceful degradation is audited, not waived).
    let faulted = scenarios.iter().filter(|sc| sc.faults.is_some()).count();
    if faulted > 0 {
        println!("note: {faulted} fault-injected scenario(s) gate against their degraded budgets");
    }
    let invalid: Vec<&str> = report
        .scenarios
        .iter()
        .filter(|s| !s.valid)
        .map(|s| s.name.as_str())
        .collect();
    if !invalid.is_empty() {
        eprintln!("validation FAILED for: {}", invalid.join(", "));
        return ExitCode::FAILURE;
    }

    if args.audit {
        let violations: Vec<String> = report
            .scenarios
            .iter()
            .filter(|s| !s.bound_ok)
            .map(|s| {
                format!(
                    "{}: awake {}/{}, rounds {}/{}",
                    s.name, s.metrics.max_awake, s.awake_bound, s.metrics.rounds, s.round_bound
                )
            })
            .collect();
        if !violations.is_empty() {
            eprintln!("budget audit FAILED (measured > bound) for:");
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "budget audit passed: {} scenario(s) within their closed-form bounds",
            report.scenarios.len()
        );
    }
    ExitCode::SUCCESS
}
