//! Diffing a fresh bench report against the committed baseline.
//!
//! The CI regression gate: after `cargo bench -p awake-bench --bench micro`
//! writes a fresh `BENCH_engine.json`, [`diff_bench`] compares it to the
//! committed `BENCH_baseline.json` and flags
//!
//! * **throughput** (`node_rounds_per_sec` of the serial and worker-pool
//!   executors, and the machine-portable `speedup_vs_legacy` ratio):
//!   a relative drop beyond [`Tolerances::throughput_drop`] fails;
//! * **allocations** (`allocations_per_node_round`): *any* increase beyond
//!   a small absolute epsilon fails — a new steady-state allocation shows
//!   up here as ≈ +1.0, and the whole point of the zero-allocation hot
//!   path is that this number never creeps.
//!
//! Everything else in the report (`ns_per_node_round`, `messages_per_sec`,
//! the legacy section) is shown in the diff table as context but never
//! gates, to keep the gate's flake surface minimal.
//!
//! Absolute throughput numbers are only comparable on the machine that
//! recorded the baseline. [`GateMode::Portable`] (CI's mode, `--portable`
//! on the binary) instead gates the current-vs-legacy throughput *ratios* —
//! the legacy reconstruction runs in the same process, so hardware speed
//! cancels out — and downgrades the absolute rows to context. On a runner
//! with ≥ 4 detected cores, portable mode also holds the
//! `threaded_scaling.w4_vs_serial` ratio to the absolute
//! [`Tolerances::w4_floor`] (default 1.5×); on a 1–3-core runner every
//! parallel-speedup row is demoted to an informational row whose label
//! names the detected core count. The `phase_times` per-stage timings are
//! always informational.

use crate::json::Value;
use std::fmt::Write as _;

/// Which rows gate: absolute throughput (same-machine diffs) or only the
/// machine-portable ratios and allocation rates (cross-machine CI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateMode {
    /// Gate absolute `node_rounds_per_sec` — valid when baseline and
    /// current ran on the same hardware.
    #[default]
    Absolute,
    /// Gate only `*_vs_legacy` ratios and allocations per node-round;
    /// absolute throughput becomes informational.
    Portable,
}

/// Gate thresholds for [`diff_bench`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Maximum tolerated relative throughput drop (0.15 = 15%).
    pub throughput_drop: f64,
    /// Absolute slack on `allocations_per_node_round` (absorbs the 4-decimal
    /// formatting granularity and first-touch jitter, nothing more).
    pub alloc_epsilon: f64,
    /// Absolute floor on `threaded_scaling.w4_vs_serial` in portable mode
    /// on a runner with ≥ 4 detected cores: the 4-worker pipeline must
    /// beat serial by at least this factor, independent of what the
    /// baseline recorded — a relative gate alone would let the speedup
    /// decay 15% per PR forever.
    pub w4_floor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            throughput_drop: 0.15,
            alloc_epsilon: 0.002,
            w4_floor: 1.5,
        }
    }
}

/// How one metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Higher is better; gate on relative drop.
    Throughput,
    /// Lower is better; gate on any absolute increase.
    Allocations,
    /// Lower is better; gate on relative increase (the energy sweep's
    /// `wall_ms / awake_events` compression-cost ratio).
    CostRatio,
    /// Higher is better; gate on an absolute minimum rather than the
    /// baseline — the row's `baseline` column shows the floor itself
    /// ([`Tolerances::w4_floor`]), not a measured value.
    Floor,
    /// Shown for context, never gates.
    Info,
}

/// One row of the diff table.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Dotted metric path (e.g. `engine.node_rounds_per_sec`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub current: f64,
    /// Relative change, in percent (positive = current larger).
    pub change_pct: f64,
    /// The rule applied.
    pub rule: Rule,
    /// Whether the row passes its rule.
    pub ok: bool,
}

/// Compare a fresh bench report against the baseline.
///
/// Both values must be parsed `BENCH_engine.json` documents
/// (see [`crate::report::BenchReport`]).
///
/// # Errors
/// Returns a message naming the first metric missing from either document.
pub fn diff_bench(
    baseline: &Value,
    current: &Value,
    tol: &Tolerances,
    mode: GateMode,
) -> Result<Vec<MetricDiff>, String> {
    let absolute_rule = match mode {
        GateMode::Absolute => Rule::Throughput,
        GateMode::Portable => Rule::Info,
    };
    // A runner with fewer than 4 cores cannot exhibit the 4-worker
    // speedup the parallel gates check, so those rows would fail for a
    // hardware reason, not a code one. Portable mode (CI's) demotes them
    // to labeled informational context — the label names the detected
    // core count — when the *current* document (the runner that just
    // produced the numbers) detected 1–3 cores. A recorded 0 means
    // detection failed and keeps the gates armed rather than silently
    // disarming them; so does a baseline old enough to predate the
    // `cores` field.
    let few_cores = if mode == GateMode::Portable {
        current
            .get("cores")
            .and_then(Value::as_f64)
            .filter(|c| (1.0..4.0).contains(c))
            .map(|c| c as u64)
    } else {
        None
    };
    let demote_few_cores = |mut d: MetricDiff| {
        if let Some(c) = few_cores {
            let _ = write!(d.metric, " ({c}-core runner)");
            d.rule = Rule::Info;
            d.ok = true;
        }
        d
    };
    let mut rows = Vec::new();
    for section in ["engine", "threaded_4_workers"] {
        rows.push(row(
            baseline,
            current,
            &[section, "node_rounds_per_sec"],
            absolute_rule,
            tol,
        )?);
        rows.push(row(
            baseline,
            current,
            &[section, "allocations_per_node_round"],
            Rule::Allocations,
            tol,
        )?);
        rows.push(row(
            baseline,
            current,
            &[section, "ns_per_node_round"],
            Rule::Info,
            tol,
        )?);
        rows.push(row(
            baseline,
            current,
            &[section, "messages_per_sec"],
            Rule::Info,
            tol,
        )?);
    }
    rows.push(row(
        baseline,
        current,
        &["speedup_vs_legacy"],
        Rule::Throughput,
        tol,
    )?);
    if mode == GateMode::Portable {
        rows.push(demote_few_cores(ratio_row(
            baseline,
            current,
            &["threaded_4_workers", "node_rounds_per_sec"],
            &["legacy_baseline", "node_rounds_per_sec"],
            "threaded_4_workers_vs_legacy",
            tol,
        )?));
    }
    // Delivery-pipeline health: the threaded-scaling sweep. The 4-worker
    // vs serial ratio is measured in one process, so it gates in both
    // modes; absolute per-worker-count throughput only gates same-machine,
    // and a runner with fewer than 4 cores demotes the ratio to context
    // in portable mode.
    rows.push(demote_few_cores(row(
        baseline,
        current,
        &["threaded_scaling", "w4_vs_serial"],
        Rule::Throughput,
        tol,
    )?));
    // On a runner that physically has the cores (≥ 4 detected), portable
    // mode additionally holds the ratio to an absolute floor: the steal
    // pipeline must actually be *faster* than serial, not merely no worse
    // than a baseline that may itself have decayed.
    if mode == GateMode::Portable {
        let cur = current
            .path(&["threaded_scaling", "w4_vs_serial"])
            .and_then(Value::as_f64)
            .ok_or("current report is missing numeric metric `threaded_scaling.w4_vs_serial`")?;
        rows.push(demote_few_cores(MetricDiff {
            metric: "threaded_scaling.w4_vs_serial_floor".into(),
            baseline: tol.w4_floor,
            current: cur,
            change_pct: (cur - tol.w4_floor) / tol.w4_floor * 100.0,
            rule: Rule::Floor,
            ok: cur >= tol.w4_floor,
        }));
    }
    rows.push(row(
        baseline,
        current,
        &["threaded_scaling", "w4", "allocations_per_node_round"],
        Rule::Allocations,
        tol,
    )?);
    for section in ["serial", "w1", "w2", "w4", "w8"] {
        rows.push(row(
            baseline,
            current,
            &["threaded_scaling", section, "node_rounds_per_sec"],
            if section == "serial" || section == "w4" {
                absolute_rule
            } else {
                Rule::Info
            },
            tol,
        )?);
    }
    rows.push(row(
        baseline,
        current,
        &["legacy_baseline", "node_rounds_per_sec"],
        Rule::Info,
        tol,
    )?);
    // Edge problems through the line-graph adapter. Sections newer than
    // the committed baseline may be missing from it entirely — that is a
    // baseline too old to have recorded them, not a regression, so such
    // rows degrade to informational instead of failing the gate. (Missing
    // from the *current* report still errors: dropping a gated section is
    // a regression.)
    for problem in ["matching", "edge_coloring"] {
        rows.push(row_tolerating_missing_baseline(
            baseline,
            current,
            &["edge_problems", problem, "node_rounds_per_sec"],
            absolute_rule,
            tol,
        )?);
        rows.push(row_tolerating_missing_baseline(
            baseline,
            current,
            &["edge_problems", problem, "allocations_per_node_round"],
            Rule::Allocations,
            tol,
        )?);
    }
    // Per-phase timing of the worker-pool pipeline. Phase splits move
    // with hardware and load, so these rows never gate — they are the
    // forensic context for a w4 regression: which stage ate the time.
    for phase in [
        "partition_ns_per_round",
        "route_ns_per_round",
        "deliver_ns_per_round",
        "merge_ns_per_round",
        "inline_ns_per_round",
    ] {
        rows.push(row_tolerating_missing_baseline(
            baseline,
            current,
            &["phase_times", phase],
            Rule::Info,
            tol,
        )?);
    }
    Ok(rows)
}

/// Compare a fresh `BENCH_energy.json` against the committed baseline.
///
/// The compression-regression gate: each sweep point's cost ratio
/// `wall_ms / awake_events` — wall time per awake event, the quantity the
/// event-compressed executors keep flat no matter how many idle virtual
/// rounds the wheel jumps — must not rise more than
/// [`Tolerances::throughput_drop`] relative to the committed baseline.
/// Points the baseline has never seen (a sweep extended to larger `n`)
/// degrade to informational `(new)` rows; a point *dropped* from the
/// current sweep is an error, since shrinking the sweep would silently
/// un-gate it.
///
/// # Errors
/// Returns a message naming the first malformed or missing point.
pub fn diff_energy(
    baseline: &Value,
    current: &Value,
    tol: &Tolerances,
) -> Result<Vec<MetricDiff>, String> {
    let base_pts = energy_points(baseline, "baseline")?;
    let cur_pts = energy_points(current, "current")?;
    let mut rows = Vec::new();
    for (name, cost) in &cur_pts {
        match base_pts.iter().find(|(b, _)| b == name) {
            Some((_, base_cost)) => rows.push(judge(
                format!("{name}.ms_per_awake_event"),
                *base_cost,
                *cost,
                Rule::CostRatio,
                tol,
            )),
            None => rows.push(MetricDiff {
                metric: format!("{name}.ms_per_awake_event (new)"),
                baseline: 0.0,
                current: *cost,
                change_pct: 0.0,
                rule: Rule::Info,
                ok: true,
            }),
        }
    }
    for (name, _) in &base_pts {
        if !cur_pts.iter().any(|(c, _)| c == name) {
            return Err(format!(
                "current energy report dropped point `{name}` present in the baseline"
            ));
        }
    }
    Ok(rows)
}

/// Extract `(point-name, wall_ms / awake_events)` pairs from an
/// `awake-lab/energy/v2` document, naming points `energy.<algo>.n<n>`.
fn energy_points(doc: &Value, which: &str) -> Result<Vec<(String, f64)>, String> {
    let Some(Value::Arr(pts)) = doc.get("points") else {
        return Err(format!("{which} energy report has no `points` array"));
    };
    let mut out = Vec::new();
    for (i, p) in pts.iter().enumerate() {
        let algo = p
            .get("algo")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{which} energy point #{i} is missing string `algo`"))?;
        let num = |key: &str| {
            p.get(key).and_then(Value::as_f64).ok_or_else(|| {
                format!(
                    "{which} energy point #{i} ({algo}) is missing numeric `{key}` — \
                         is the document schema awake-lab/energy/v2?"
                )
            })
        };
        let n = num("n")?;
        let events = num("awake_events")?;
        let wall = num("wall_ms")?;
        if events <= 0.0 {
            return Err(format!(
                "{which} energy point {algo}/n={n} has awake_events = 0"
            ));
        }
        out.push((format!("energy.{algo}.n{}", n as u64), wall / events));
    }
    Ok(out)
}

/// Like [`row`], but a metric absent from the **baseline** document is
/// reported as an informational row (baseline 0, ok) rather than an
/// error — the tolerance that lets a gate with new sections run against
/// an older committed baseline. Absence from the *current* document is
/// still an error.
fn row_tolerating_missing_baseline(
    baseline: &Value,
    current: &Value,
    path: &[&str],
    rule: Rule,
    tol: &Tolerances,
) -> Result<MetricDiff, String> {
    let name = path.join(".");
    let cur = current
        .path(path)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("current report is missing numeric metric `{name}`"))?;
    match baseline.path(path) {
        // Present in the baseline: judge normally — including the error
        // for a present-but-non-numeric value, which is a corrupted
        // baseline, not a section newer than it.
        Some(_) => row(baseline, current, path, rule, tol),
        None => Ok(MetricDiff {
            metric: format!("{name} (new)"),
            baseline: 0.0,
            current: cur,
            change_pct: 0.0,
            rule: Rule::Info,
            ok: true,
        }),
    }
}

/// A derived row: `num / den` within each document, gated as throughput.
/// The same-process legacy run divides hardware speed out, so the ratio is
/// comparable across machines.
fn ratio_row(
    baseline: &Value,
    current: &Value,
    num: &[&str],
    den: &[&str],
    name: &str,
    tol: &Tolerances,
) -> Result<MetricDiff, String> {
    let get = |doc: &Value, path: &[&str], which: &str| {
        doc.path(path).and_then(Value::as_f64).ok_or_else(|| {
            format!(
                "{which} report is missing numeric metric `{}`",
                path.join(".")
            )
        })
    };
    let base = get(baseline, num, "baseline")? / get(baseline, den, "baseline")?;
    let cur = get(current, num, "current")? / get(current, den, "current")?;
    Ok(judge(name.to_string(), base, cur, Rule::Throughput, tol))
}

/// Judge one `(baseline, current)` pair under `rule` — the shared core of
/// [`row`] and [`ratio_row`].
///
/// A zero baseline makes the relative change undefined: such rows used to
/// print `+0.0%`, so a metric regressing *from* zero (e.g. allocations per
/// node-round leaving the zero-allocation steady state) read as "no
/// change". They are now labeled `(from zero)` explicitly, and a gating
/// rule fails the row whenever the current value exceeds the small
/// absolute epsilon (for throughput — higher is better — a from-zero rise
/// can only be an improvement, so only a *drop to* zero fails there, which
/// the ordinary relative check already handles).
fn judge(name: String, base: f64, cur: f64, rule: Rule, tol: &Tolerances) -> MetricDiff {
    if base == 0.0 && cur != 0.0 {
        let ok = match rule {
            Rule::Throughput | Rule::Info => true,
            Rule::Allocations => cur <= tol.alloc_epsilon,
            // A zero baseline cost ratio only happens when the point ran
            // faster than the wall-clock granularity; any current value is
            // then noise, not a measurable regression.
            Rule::CostRatio => true,
            Rule::Floor => cur >= tol.w4_floor,
        };
        return MetricDiff {
            metric: format!("{name} (from zero)"),
            baseline: base,
            current: cur,
            change_pct: f64::INFINITY,
            rule,
            ok,
        };
    }
    let change_pct = if base != 0.0 {
        (cur - base) / base * 100.0
    } else {
        0.0
    };
    let ok = match rule {
        Rule::Throughput => cur >= base * (1.0 - tol.throughput_drop),
        Rule::Allocations => cur <= base + tol.alloc_epsilon,
        Rule::CostRatio => cur <= base * (1.0 + tol.throughput_drop),
        Rule::Floor => cur >= tol.w4_floor,
        Rule::Info => true,
    };
    MetricDiff {
        metric: name,
        baseline: base,
        current: cur,
        change_pct,
        rule,
        ok,
    }
}

fn row(
    baseline: &Value,
    current: &Value,
    path: &[&str],
    rule: Rule,
    tol: &Tolerances,
) -> Result<MetricDiff, String> {
    let name = path.join(".");
    let get = |doc: &Value, which: &str| {
        doc.path(path)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{which} report is missing numeric metric `{name}`"))
    };
    let base = get(baseline, "baseline")?;
    let cur = get(current, "current")?;
    Ok(judge(name, base, cur, rule, tol))
}

/// Render the diff as an aligned table (the form CI prints into the log).
pub fn render_table(rows: &[MetricDiff]) -> String {
    let mut out = String::new();
    let w = rows
        .iter()
        .map(|r| r.metric.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let _ = writeln!(
        out,
        "{:<w$} {:>16} {:>16} {:>9}  {:<11} status",
        "metric", "baseline", "current", "change", "rule"
    );
    let _ = writeln!(out, "{}", "-".repeat(w + 65));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<w$} {:>16.4} {:>16.4} {:>+8.1}%  {:<11} {}",
            r.metric,
            r.baseline,
            r.current,
            r.change_pct,
            match r.rule {
                Rule::Throughput => "throughput",
                Rule::Allocations => "allocations",
                Rule::CostRatio => "cost-ratio",
                Rule::Floor => "floor",
                Rule::Info => "info",
            },
            if r.ok { "ok" } else { "FAIL" },
        );
    }
    out
}

/// The regressed rows, if any (empty slice = gate passes).
pub fn failures(rows: &[MetricDiff]) -> Vec<&MetricDiff> {
    rows.iter().filter(|r| !r.ok).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::report::{
        BenchReport, EdgeProblemsBench, PerfStats, PhaseTimesBench, ScalingRow, ThreadedScaling,
    };

    fn phase_times() -> PhaseTimesBench {
        PhaseTimesBench {
            workers: 4,
            dispatched_rounds: 25,
            inline_rounds: 5,
            partition_ns_per_round: 1.2e5,
            route_ns_per_round: 3.0e5,
            deliver_ns_per_round: 2.5e5,
            merge_ns_per_round: 1.8e5,
            inline_ns_per_round: 4.0e4,
        }
    }

    /// A scaling sweep derived multiplicatively from `base_ns`, so a
    /// uniform hardware slowdown keeps every within-document ratio fixed.
    fn scaling(base_ns: f64, allocs: u64, w4_factor: f64) -> ThreadedScaling {
        let mk = |wall_ns: f64| PerfStats {
            node_rounds: 2_000_000,
            messages: 16_000_000,
            allocations: allocs,
            wall_ns,
        };
        ThreadedScaling {
            n: 65_536,
            degree: 8,
            rounds: 30,
            serial: mk(base_ns),
            rows: [(1, 1.3), (2, 0.8), (4, w4_factor), (8, 0.6)]
                .into_iter()
                .map(|(workers, f)| ScalingRow {
                    workers,
                    stats: mk(base_ns * f),
                })
                .collect(),
        }
    }

    fn report_with_scaling(engine_ns: f64, allocs: u64, w4_factor: f64) -> Value {
        report_with_cores(engine_ns, allocs, w4_factor, 4)
    }

    fn report_with_cores(engine_ns: f64, allocs: u64, w4_factor: f64, cores: usize) -> Value {
        let mk = |wall_ns: f64, allocations: u64| PerfStats {
            node_rounds: 1_000_000,
            messages: 8_000_000,
            allocations,
            wall_ns,
        };
        let b = BenchReport {
            bench: "engine/flood".into(),
            n: 8192,
            degree: 8,
            rounds: 150,
            cores,
            engine: mk(engine_ns, allocs),
            threaded_4_workers: mk(engine_ns * 1.8, allocs),
            legacy_baseline: mk(engine_ns * 2.2, 1_000_000),
            threaded_scaling: scaling(engine_ns, allocs, w4_factor),
            phase_times: phase_times(),
            edge_problems: edge_problems(engine_ns, allocs),
        };
        json::parse(&b.to_json()).unwrap()
    }

    fn edge_problems(base_ns: f64, allocs: u64) -> EdgeProblemsBench {
        let mk = |wall_ns: f64| PerfStats {
            node_rounds: 250_000,
            messages: 500_000,
            allocations: allocs,
            wall_ns,
        };
        EdgeProblemsBench {
            n: 2048,
            m: 8192,
            matching: mk(base_ns * 0.4),
            edge_coloring: mk(base_ns * 0.5),
        }
    }

    fn report(engine_ns: f64, allocs: u64) -> Value {
        report_with_scaling(engine_ns, allocs, 0.55)
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(6.0e7, 13_000);
        let rows = diff_bench(&base, &base, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
    }

    #[test]
    fn small_regression_within_tolerance_passes() {
        let base = report(6.0e7, 13_000);
        // 10% slower: wall time up by 1/0.9
        let cur = report(6.0e7 / 0.9, 13_000);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
    }

    #[test]
    fn injected_twenty_percent_regression_fails() {
        let base = report(6.0e7, 13_000);
        // 20% throughput drop: wall time divided by 0.8
        let cur = report(6.0e7 / 0.8, 13_000);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        let failed = failures(&rows);
        assert!(
            failed
                .iter()
                .any(|r| r.metric == "engine.node_rounds_per_sec"),
            "{}",
            render_table(&rows)
        );
    }

    #[test]
    fn allocation_increase_fails() {
        let base = report(6.0e7, 13_000);
        // one new allocation per node-round
        let cur = report(6.0e7, 1_013_000);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        let failed = failures(&rows);
        assert!(failed
            .iter()
            .any(|r| r.metric == "engine.allocations_per_node_round"));
        // throughput unchanged ⇒ only allocation rows fail
        assert!(failed.iter().all(|r| r.rule == Rule::Allocations));
    }

    #[test]
    fn regression_from_zero_is_labeled_and_fails() {
        // The zero-allocation steady state is the baseline (0.0 allocations
        // per node-round); the current report allocates once per
        // node-round. The relative change is undefined — this used to
        // print "+0.0%" and read as no change — so the row must carry an
        // explicit "(from zero)" label and fail the allocation rule.
        let base = report(6.0e7, 0);
        let cur = report(6.0e7, 1_000_000);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        let failed = failures(&rows);
        assert!(
            failed.iter().any(
                |r| r.metric == "engine.allocations_per_node_round (from zero)"
                    && r.rule == Rule::Allocations
                    && r.change_pct.is_infinite()
            ),
            "{}",
            render_table(&rows)
        );
        // …and a current value still at (or within epsilon of) zero passes,
        // unlabeled.
        let rows = diff_bench(&base, &base, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        assert!(rows.iter().all(|r| !r.metric.contains("(from zero)")));
    }

    #[test]
    fn throughput_rise_from_zero_baseline_is_labeled_but_passes() {
        let d = judge(
            "x.node_rounds_per_sec".into(),
            0.0,
            5.0e6,
            Rule::Throughput,
            &Tolerances::default(),
        );
        assert!(d.ok, "a from-zero throughput rise is an improvement");
        assert_eq!(d.metric, "x.node_rounds_per_sec (from zero)");
    }

    #[test]
    fn improvements_always_pass() {
        let base = report(6.0e7, 13_000);
        let cur = report(3.0e7, 0); // 2× faster, allocation-free
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(failures(&rows).is_empty());
    }

    #[test]
    fn portable_mode_ignores_uniform_hardware_slowdown() {
        let base = report(6.0e7, 13_000);
        // every section 40% slower — a slower CI runner, not a regression
        let cur = report(6.0e7 * 1.4, 13_000);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        // the same slowdown fails the absolute gate
        let abs = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(!failures(&abs).is_empty());
    }

    #[test]
    fn portable_mode_catches_delivery_pipeline_regression() {
        // Only the scaling sweep's 4-worker leg slows (the serial rows are
        // untouched): the within-document w4_vs_serial ratio must fail.
        let base = report_with_scaling(6.0e7, 13_000, 0.55);
        let cur = report_with_scaling(6.0e7, 13_000, 0.55 / 0.7);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap();
        let failed = failures(&rows);
        assert!(
            failed
                .iter()
                .any(|r| r.metric == "threaded_scaling.w4_vs_serial"),
            "{}",
            render_table(&rows)
        );
        assert!(failed
            .iter()
            .all(|r| r.metric.starts_with("threaded_scaling.w4")));
    }

    #[test]
    fn portable_mode_catches_engine_only_regression() {
        let mk = |wall_ns: f64| PerfStats {
            node_rounds: 1_000_000,
            messages: 8_000_000,
            allocations: 13_000,
            wall_ns,
        };
        let doc = |engine_ns: f64, threaded_ns: f64| {
            json::parse(
                &BenchReport {
                    bench: "engine/flood".into(),
                    n: 8192,
                    degree: 8,
                    rounds: 150,
                    cores: 4,
                    engine: mk(engine_ns),
                    threaded_4_workers: mk(threaded_ns),
                    legacy_baseline: mk(1.3e8),
                    threaded_scaling: scaling(6.0e7, 13_000, 0.55),
                    phase_times: phase_times(),
                    edge_problems: edge_problems(6.0e7, 13_000),
                }
                .to_json(),
            )
            .unwrap()
        };
        let base = doc(6.0e7, 1.1e8);
        // serial engine alone 25% slower; legacy (same hardware) unchanged
        let eng = diff_bench(
            &base,
            &doc(6.0e7 / 0.75, 1.1e8),
            &Tolerances::default(),
            GateMode::Portable,
        )
        .unwrap();
        assert!(failures(&eng)
            .iter()
            .any(|r| r.metric == "speedup_vs_legacy"));
        // worker-pool executor alone 25% slower
        let thr = diff_bench(
            &base,
            &doc(6.0e7, 1.1e8 / 0.75),
            &Tolerances::default(),
            GateMode::Portable,
        )
        .unwrap();
        assert!(failures(&thr)
            .iter()
            .any(|r| r.metric == "threaded_4_workers_vs_legacy"));
    }

    #[test]
    fn single_core_runner_demotes_parallel_ratios_in_portable_mode() {
        // The 4-worker leg "regresses" 30% — on a 1-core runner that is
        // hardware, not code, so portable mode must demote both parallel
        // ratio rows to labeled context and pass the gate.
        let base = report_with_scaling(6.0e7, 13_000, 0.55);
        let cur = report_with_cores(6.0e7, 13_000, 0.55 / 0.7, 1);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        for name in [
            "threaded_scaling.w4_vs_serial (1-core runner)",
            "threaded_scaling.w4_vs_serial_floor (1-core runner)",
            "threaded_4_workers_vs_legacy (1-core runner)",
        ] {
            assert!(
                rows.iter()
                    .any(|r| r.metric == name && r.rule == Rule::Info && r.ok),
                "missing demoted row {name} in\n{}",
                render_table(&rows)
            );
        }
        // The same regression on a multi-core runner still gates…
        let multi = report_with_cores(6.0e7, 13_000, 0.55 / 0.7, 4);
        let rows = diff_bench(&base, &multi, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows)
            .iter()
            .any(|r| r.metric == "threaded_scaling.w4_vs_serial"));
        // …and so does a runner whose core detection failed (cores = 0):
        // unknown hardware must not silently disarm the gate.
        let unknown = report_with_cores(6.0e7, 13_000, 0.55 / 0.7, 0);
        let rows = diff_bench(&base, &unknown, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows)
            .iter()
            .any(|r| r.metric == "threaded_scaling.w4_vs_serial"));
        // Absolute mode (same-machine diffs) never demotes.
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(failures(&rows)
            .iter()
            .any(|r| r.metric == "threaded_scaling.w4_vs_serial"));
    }

    #[test]
    fn few_core_demotion_names_the_detected_core_count() {
        // 2- and 3-core runners cannot validate a 4-worker speedup either:
        // the parallel rows demote like the 1-core case, and the label
        // carries the detected count so the log says why.
        let base = report_with_scaling(6.0e7, 13_000, 0.55);
        for cores in [2usize, 3] {
            let cur = report_with_cores(6.0e7, 13_000, 0.55 / 0.7, cores);
            let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap();
            assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
            for name in [
                format!("threaded_scaling.w4_vs_serial ({cores}-core runner)"),
                format!("threaded_scaling.w4_vs_serial_floor ({cores}-core runner)"),
                format!("threaded_4_workers_vs_legacy ({cores}-core runner)"),
            ] {
                assert!(
                    rows.iter()
                        .any(|r| r.metric == name && r.rule == Rule::Info && r.ok),
                    "missing demoted row {name} in\n{}",
                    render_table(&rows)
                );
            }
        }
    }

    #[test]
    fn portable_mode_enforces_w4_speedup_floor_on_multicore_runners() {
        // Baseline and current agree at w4_vs_serial = 1/0.8 = 1.25: the
        // relative gate sees no drop, but 1.25 < the 1.5 floor — on a
        // 4-core runner the floor row must fail on its own.
        let base = report_with_scaling(6.0e7, 13_000, 0.8);
        let cur = report_with_cores(6.0e7, 13_000, 0.8, 4);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap();
        let failed = failures(&rows);
        assert_eq!(failed.len(), 1, "{}", render_table(&rows));
        assert_eq!(failed[0].metric, "threaded_scaling.w4_vs_serial_floor");
        assert_eq!(failed[0].rule, Rule::Floor);
        assert_eq!(failed[0].baseline, 1.5);
        // A ratio at or above the floor passes it…
        let good = report_with_cores(6.0e7, 13_000, 0.55, 4);
        let fast = report_with_scaling(6.0e7, 13_000, 0.55);
        let rows = diff_bench(&fast, &good, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        // …failed core detection keeps the floor armed…
        let unknown = report_with_cores(6.0e7, 13_000, 0.8, 0);
        let rows = diff_bench(&base, &unknown, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows)
            .iter()
            .any(|r| r.metric == "threaded_scaling.w4_vs_serial_floor"));
        // …and absolute mode (same-machine diffs) has no floor row at all.
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(!rows.iter().any(|r| r.metric.contains("w4_vs_serial_floor")));
    }

    #[test]
    fn phase_times_rows_are_informational_and_tolerate_old_baselines() {
        let base = report(6.0e7, 13_000);
        let cur = report(6.0e7, 13_000);
        let rows = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap();
        let phase_rows: Vec<&MetricDiff> = rows
            .iter()
            .filter(|r| r.metric.starts_with("phase_times"))
            .collect();
        assert_eq!(phase_rows.len(), 5, "{}", render_table(&rows));
        assert!(phase_rows.iter().all(|r| r.rule == Rule::Info && r.ok));
        // A committed baseline that predates the section: info "(new)"
        // rows, gate unaffected.
        let old = {
            let Value::Obj(mut m) = report(6.0e7, 13_000) else {
                panic!()
            };
            m.remove("phase_times").expect("section present");
            Value::Obj(m)
        };
        let rows = diff_bench(&old, &cur, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        assert!(rows.iter().any(|r| {
            r.metric == "phase_times.partition_ns_per_round (new)" && r.rule == Rule::Info
        }));
        // Dropping the section from the current report errors: a report
        // that stops carrying its forensic context is a regression.
        let err = diff_bench(&base, &old, &Tolerances::default(), GateMode::Portable).unwrap_err();
        assert!(err.contains("phase_times"), "{err}");
        assert!(err.contains("current"), "{err}");
    }

    /// Handcraft an `awake-lab/energy/v2` document from
    /// `(algo, n, awake_events, wall_ms)` points.
    fn energy_doc(points: &[(&str, u64, u64, f64)]) -> Value {
        let mut s = String::from("{\"schema\": \"awake-lab/energy/v2\", \"points\": [");
        for (i, (algo, n, events, wall)) in points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"algo\": \"{algo}\", \"n\": {n}, \"awake_events\": {events}, \
                 \"wall_ms\": {wall:.3}}}"
            ));
        }
        s.push_str("]}");
        json::parse(&s).unwrap()
    }

    #[test]
    fn identical_energy_reports_pass() {
        let doc = energy_doc(&[
            ("theorem1", 1024, 5_000, 2.5),
            ("bm21", 1024, 7_000, 3.0),
            ("theorem1", 2048, 11_000, 5.5),
        ]);
        let rows = diff_energy(&doc, &doc, &Tolerances::default()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        assert!(rows.iter().all(|r| r.rule == Rule::CostRatio));
        assert!(rows
            .iter()
            .any(|r| r.metric == "energy.bm21.n1024.ms_per_awake_event"));
    }

    #[test]
    fn energy_cost_ratio_regression_fails_naming_the_point() {
        let base = energy_doc(&[("theorem1", 1024, 5_000, 2.5), ("bm21", 1024, 7_000, 3.0)]);
        // theorem1 does the same events 30% slower: compression regressed.
        let cur = energy_doc(&[("theorem1", 1024, 5_000, 3.25), ("bm21", 1024, 7_000, 3.0)]);
        let rows = diff_energy(&base, &cur, &Tolerances::default()).unwrap();
        let failed = failures(&rows);
        assert_eq!(failed.len(), 1, "{}", render_table(&rows));
        assert_eq!(failed[0].metric, "energy.theorem1.n1024.ms_per_awake_event");
        // A 10% rise stays inside the 15% tolerance.
        let ok = energy_doc(&[("theorem1", 1024, 5_000, 2.75), ("bm21", 1024, 7_000, 3.0)]);
        let rows = diff_energy(&base, &ok, &Tolerances::default()).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
    }

    #[test]
    fn energy_sweep_extension_is_informational_but_shrink_errors() {
        let base = energy_doc(&[("theorem1", 1024, 5_000, 2.5)]);
        let extended = energy_doc(&[
            ("theorem1", 1024, 5_000, 2.5),
            ("theorem1", 2048, 11_000, 5.5),
        ]);
        let rows = diff_energy(&base, &extended, &Tolerances::default()).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        assert!(rows.iter().any(|r| {
            r.metric == "energy.theorem1.n2048.ms_per_awake_event (new)" && r.rule == Rule::Info
        }));
        // Dropping a gated point must error, not silently pass.
        let err = diff_energy(&extended, &base, &Tolerances::default()).unwrap_err();
        assert!(err.contains("energy.theorem1.n2048"), "{err}");
    }

    #[test]
    fn energy_v1_document_without_compression_fields_errors() {
        let v2 = energy_doc(&[("theorem1", 1024, 5_000, 2.5)]);
        let v1 = json::parse(
            "{\"schema\": \"awake-lab/energy/v1\", \
             \"points\": [{\"algo\": \"theorem1\", \"n\": 1024}]}",
        )
        .unwrap();
        let err = diff_energy(&v1, &v2, &Tolerances::default()).unwrap_err();
        assert!(err.contains("awake_events"), "{err}");
        assert!(err.contains("baseline"), "{err}");
    }

    #[test]
    fn missing_metric_is_reported() {
        let base = report(6.0e7, 13_000);
        let cur = json::parse("{\"engine\": {}}").unwrap();
        let err = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Absolute).unwrap_err();
        assert!(err.contains("node_rounds_per_sec"));
        assert!(err.contains("current"));
    }

    /// The committed document shape *before* the edge_problems section
    /// existed: every other metric present, that section absent.
    fn report_without_edge_section(engine_ns: f64, allocs: u64) -> Value {
        let doc = report(engine_ns, allocs);
        let Value::Obj(mut m) = doc else { panic!() };
        m.remove("edge_problems").expect("section present");
        Value::Obj(m)
    }

    #[test]
    fn edge_section_missing_from_old_baseline_is_informational() {
        // An older committed baseline predates the edge_problems section:
        // the gate must pass (rows downgraded to info), in both modes.
        let old_base = report_without_edge_section(6.0e7, 13_000);
        let cur = report(6.0e7, 13_000);
        for mode in [GateMode::Portable, GateMode::Absolute] {
            let rows = diff_bench(&old_base, &cur, &Tolerances::default(), mode).unwrap();
            assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
            let new_rows: Vec<&MetricDiff> = rows
                .iter()
                .filter(|r| r.metric.starts_with("edge_problems"))
                .collect();
            assert_eq!(new_rows.len(), 4);
            assert!(new_rows
                .iter()
                .all(|r| r.rule == Rule::Info && r.ok && r.metric.ends_with("(new)")));
        }
    }

    #[test]
    fn corrupted_baseline_edge_metric_is_an_error_not_a_new_row() {
        // Present-but-non-numeric is a corrupted baseline, not a section
        // newer than it: the gate must error like any other section.
        let mut base = report(6.0e7, 13_000);
        if let Value::Obj(m) = &mut base {
            let Some(Value::Obj(ep)) = m.get_mut("edge_problems") else {
                panic!()
            };
            let Some(Value::Obj(mat)) = ep.get_mut("matching") else {
                panic!()
            };
            mat.insert("node_rounds_per_sec".into(), Value::Str("oops".into()));
        }
        let cur = report(6.0e7, 13_000);
        let err = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap_err();
        assert!(err.contains("edge_problems.matching.node_rounds_per_sec"));
        assert!(err.contains("baseline"));
    }

    #[test]
    fn edge_section_missing_from_current_still_errors() {
        let base = report(6.0e7, 13_000);
        let cur = report_without_edge_section(6.0e7, 13_000);
        let err = diff_bench(&base, &cur, &Tolerances::default(), GateMode::Portable).unwrap_err();
        assert!(err.contains("edge_problems"), "{err}");
        assert!(err.contains("current"), "{err}");
    }

    #[test]
    fn edge_problem_regressions_gate_like_engine_rows() {
        let base = report(6.0e7, 13_000);
        // matching 25% slower in absolute mode fails…
        let mut slow = report(6.0e7, 13_000);
        if let Value::Obj(m) = &mut slow {
            let Some(Value::Obj(ep)) = m.get_mut("edge_problems") else {
                panic!()
            };
            let Some(Value::Obj(mat)) = ep.get_mut("matching") else {
                panic!()
            };
            let v = mat.get("node_rounds_per_sec").unwrap().as_f64().unwrap();
            mat.insert("node_rounds_per_sec".into(), Value::Num(v * 0.75));
        }
        let rows = diff_bench(&base, &slow, &Tolerances::default(), GateMode::Absolute).unwrap();
        assert!(failures(&rows)
            .iter()
            .any(|r| r.metric == "edge_problems.matching.node_rounds_per_sec"));
        // …and is informational in portable mode (absolute throughput is
        // machine-specific), where allocation rates still gate.
        let rows = diff_bench(&base, &slow, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows).is_empty(), "{}", render_table(&rows));
        let mut alloc = report(6.0e7, 13_000);
        if let Value::Obj(m) = &mut alloc {
            let Some(Value::Obj(ep)) = m.get_mut("edge_problems") else {
                panic!()
            };
            let Some(Value::Obj(col)) = ep.get_mut("edge_coloring") else {
                panic!()
            };
            col.insert("allocations_per_node_round".into(), Value::Num(1.5));
        }
        let rows = diff_bench(&base, &alloc, &Tolerances::default(), GateMode::Portable).unwrap();
        assert!(failures(&rows)
            .iter()
            .any(|r| r.metric == "edge_problems.edge_coloring.allocations_per_node_round"));
    }

    #[test]
    fn table_renders_every_row() {
        let base = report(6.0e7, 13_000);
        let rows = diff_bench(&base, &base, &Tolerances::default(), GateMode::Absolute).unwrap();
        let table = render_table(&rows);
        assert_eq!(table.lines().count(), rows.len() + 2);
        assert!(table.contains("speedup_vs_legacy"));
    }
}
