//! A minimal JSON reader for the baseline differ.
//!
//! The workspace builds without external crates, so this module stands in
//! for `serde_json` where the harness must *read* JSON back (diffing a
//! fresh `BENCH_engine.json` against the committed baseline). It parses
//! the full JSON grammar minus exotic escapes (`\uXXXX` surrogate pairs
//! decode to the replacement character), which is far more than the bench
//! schema needs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Path lookup: `value.path(&["engine", "node_rounds_per_sec"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Value> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document.
///
/// # Errors
/// Returns the first syntax error, with its byte offset.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so this is safe
                    // to do bytewise: copy continuation bytes with the lead)
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_schema() {
        let doc = r#"{
          "bench": "engine/flood", "n": 8192, "speedup_vs_legacy": 2.168,
          "engine": {"node_rounds_per_sec": 16530428, "allocations_per_node_round": 0.0134}
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("engine/flood"));
        assert_eq!(
            v.path(&["engine", "node_rounds_per_sec"]).unwrap().as_f64(),
            Some(16530428.0)
        );
        assert_eq!(v.get("speedup_vs_legacy").unwrap().as_f64(), Some(2.168));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_arrays_bools_null_and_escapes() {
        let v = parse(r#"[true, false, null, "a\"bA", [1, -2.5e-3]]"#).unwrap();
        let Value::Arr(items) = &v else { panic!() };
        assert_eq!(items[0], Value::Bool(true));
        assert_eq!(items[2], Value::Null);
        assert_eq!(items[3].as_str(), Some("a\"bA"));
        let Value::Arr(nums) = &items[4] else {
            panic!()
        };
        assert_eq!(nums[1].as_f64(), Some(-2.5e-3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{} extra").is_err());
        let e = parse("  @").unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(e.to_string().contains("byte 2"));
    }

    #[test]
    fn round_trips_a_real_report() {
        // the actual shape written by the micro bench
        let p = crate::report::PerfStats {
            node_rounds: 100,
            messages: 300,
            allocations: 2,
            wall_ns: 5e5,
        };
        let b = crate::report::BenchReport {
            bench: "engine/flood".into(),
            n: 10,
            degree: 3,
            rounds: 5,
            engine: p,
            threaded_4_workers: p,
            legacy_baseline: p,
            threaded_scaling: crate::report::ThreadedScaling {
                n: 20,
                degree: 3,
                rounds: 5,
                serial: p,
                rows: vec![crate::report::ScalingRow {
                    workers: 4,
                    stats: p,
                }],
            },
        };
        let v = parse(&b.to_json()).unwrap();
        assert_eq!(
            v.path(&["engine", "allocations"]).unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            v.path(&["threaded_scaling", "w4_vs_serial"])
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn parses_unicode_strings() {
        let v = parse("\"Δ ≈ 8\"").unwrap();
        assert_eq!(v.as_str(), Some("Δ ≈ 8"));
    }
}
